"""Benchmark: regenerate paper Figure 1 (SLLC line-usage analysis)."""

from conftest import run_experiment


def test_fig1a_live_lines_over_time(benchmark, params, report):
    run_experiment(benchmark, report, "fig1a", params)

def test_fig1b_hit_distribution(benchmark, params, report):
    run_experiment(benchmark, report, "fig1b", params)
