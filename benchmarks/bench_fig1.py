"""Benchmark: regenerate paper Figure 1 (SLLC line-usage analysis)."""

from conftest import run_once

from repro.experiments import format_fig1a, format_fig1b, run_fig1a, run_fig1b


def test_fig1a_live_lines_over_time(benchmark, params, report):
    result = run_once(benchmark, run_fig1a, params)
    report(format_fig1a(result))


def test_fig1b_hit_distribution(benchmark, params, report):
    result = run_once(benchmark, run_fig1b, params)
    report(format_fig1b(result))
