"""Benchmark: regenerate paper Figure 11 (parallel applications)."""

from conftest import run_experiment


def test_fig11_parallel_apps(benchmark, params, report):
    run_experiment(benchmark, report, "fig11", params)
