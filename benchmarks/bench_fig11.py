"""Benchmark: regenerate paper Figure 11 (parallel applications)."""

from conftest import run_once

from repro.experiments import format_fig11, run_fig11


def test_fig11_parallel_apps(benchmark, params, report):
    result = run_once(benchmark, run_fig11, params)
    report(format_fig11(result))
