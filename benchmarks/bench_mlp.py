"""Benchmark: core-model (MLP) sensitivity of the key comparisons."""

from conftest import run_once

from repro.experiments.mlp import format_mlp, run_mlp


def test_mlp_sensitivity(benchmark, params, report):
    result = run_once(benchmark, run_mlp, params)
    report(format_mlp(result))
