"""Benchmark: core-model (MLP) sensitivity of the key comparisons."""

from conftest import run_experiment


def test_mlp_sensitivity(benchmark, params, report):
    run_experiment(benchmark, report, "mlp", params)
