"""Benchmark: regenerate paper Figure 8 (RC vs DRRIP/NRR + storage)."""

from conftest import run_experiment


def test_fig8_vs_state_of_the_art(benchmark, params, report):
    run_experiment(benchmark, report, "fig8", params)
