"""Benchmark: regenerate paper Figure 8 (RC vs DRRIP/NRR + storage)."""

from conftest import run_once

from repro.experiments import format_fig8, run_fig8


def test_fig8_vs_state_of_the_art(benchmark, params, report):
    result = run_once(benchmark, run_fig8, params)
    report(format_fig8(result))
