"""Benchmark: the serving stack under live load (reuse vs always admission).

Replays one synthetic workload through the asyncio server twice — once with
the paper's reuse-based admission, once admit-always — at identical data
capacity, then persists throughput, hit rate and latency quantiles to
``BENCH_service.json`` at the repo root (the serving-side counterpart of
``benchmarks/results.txt``).  Scale with ``REPRO_REFS`` / ``REPRO_SCALE``
like the figure benchmarks.
"""

import json
from pathlib import Path

from conftest import run_once

from repro.service.cli import format_service_benchmark, run_service_benchmark

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def test_service_admission_comparison(benchmark, params, report):
    result = run_once(
        benchmark,
        run_service_benchmark,
        refs=params.n_refs,
        scale=params.scale,
        seed=params.seed,
    )
    # the raw per-server STATS snapshots are a --stats-json concern; the
    # baseline file keeps the summarised comparison only
    result.pop("server_stats", None)
    report(format_service_benchmark(result))
    BENCH_FILE.write_text(json.dumps(result, indent=2) + "\n")
    report(f"wrote {BENCH_FILE}")
    # the acceptance bar: at equal (downsized) data capacity, selective
    # allocation must deliver more hits per byte than admit-always
    assert result["hit_rate_per_mb_gain"] > 0
    assert result["reuse"]["throughput_rps"] > 0
    assert result["reuse"]["p99_ms"] > 0
