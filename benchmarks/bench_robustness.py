"""Benchmark: scale-robustness of the reproduction's conclusions."""

from conftest import run_once

from repro.experiments.robustness import format_robustness, run_robustness


def test_scale_robustness(benchmark, params, report):
    result = run_once(benchmark, run_robustness, params)
    report(format_robustness(result))
