"""Benchmark: scale-robustness of the reproduction's conclusions."""

from conftest import run_experiment


def test_scale_robustness(benchmark, params, report):
    run_experiment(benchmark, report, "robustness", params)
