"""Benchmark: the replacement-policy zoo (extension of paper Fig. 8)."""

from conftest import run_experiment


def test_replacement_zoo(benchmark, params, report):
    run_experiment(benchmark, report, "zoo", params)
