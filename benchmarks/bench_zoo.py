"""Benchmark: the replacement-policy zoo (extension of paper Fig. 8)."""

from conftest import run_once

from repro.experiments.zoo import format_zoo, run_zoo


def test_replacement_zoo(benchmark, params, report):
    result = run_once(benchmark, run_zoo, params)
    report(format_zoo(result))
