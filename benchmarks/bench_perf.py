"""Benchmark: the perf-baseline layer itself (`repro perf record`).

Records the ``micro`` suite end to end — uncached, phase-profiled, every
cell measured in-process — and reports the totals block, so
``results.txt`` carries the same numbers a committed ``BENCH_perf.json``
would.  Doubles as a check that recording overhead stays sane: the wall
total inside the document must account for nearly all of the benchmarked
time (recording is measurement, not extra work).
"""

from conftest import run_once

from repro.perf import get_suite, record_suite


def test_perf_record_micro(benchmark, report):
    doc = run_once(benchmark, record_suite, get_suite("micro"))
    totals = doc["totals"]
    lines = [f"perf record --suite micro   (schema {doc['schema']})"]
    for exp_name, exp in sorted(doc["experiments"].items()):
        lines.append(
            f"  {exp_name}: {exp['wall_s']:.2f}s wall, {exp['cpu_s']:.2f}s cpu, "
            f"{exp['refs_per_s']:,.0f} refs/s, peak rss {exp['peak_rss_kb']} kB"
        )
    lines.append(
        f"  totals: {totals['wall_s']:.2f}s wall, {totals['refs']:,} refs, "
        f"{totals['refs_per_s']:,.0f} refs/s"
    )
    report("\n".join(lines))
    assert doc["experiments"], "suite recorded no experiments"
    assert totals["refs"] > 0
