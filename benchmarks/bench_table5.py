"""Benchmark: regenerate paper Table 5 (baseline per-app MPKIs)."""

from conftest import run_once

from repro.experiments import format_table5, run_table5
from repro.workloads.profiles import TABLE5_TARGETS


def test_table5_baseline_mpki(benchmark, params, report):
    result = run_once(benchmark, run_table5, params)
    lines = [format_table5(result), "", "paper targets (L1/L2/LLC):"]
    for app, d in result.items():
        t = TABLE5_TARGETS[app]
        lines.append(
            f"  {app:<12} measured {d['l1']:6.1f}/{d['l2']:6.1f}/{d['llc']:6.1f}"
            f"   paper {t[0]:6.1f}/{t[1]:6.1f}/{t[2]:6.1f}"
        )
    report("\n".join(lines))
