"""Benchmark: regenerate paper Table 5 (baseline per-app MPKIs)."""

from conftest import run_experiment


def test_table5_baseline_mpki(benchmark, params, report):
    run_experiment(benchmark, report, "table5", params)
