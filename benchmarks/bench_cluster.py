"""Benchmark: aggregate hit capacity of the cache cluster vs node count.

Replays one synthetic workload through live :class:`LocalCluster`
instances of 1, 2 and 3 nodes at **equal per-node RAM** and persists the
sweep to ``BENCH_cluster.json`` at the repo root.  The acceptance bar is
the cluster's reason to exist: with the workload footprint fixed, adding
nodes adds aggregate data capacity, so the client-observed hit rate must
grow monotonically along the sweep.  Scale with ``REPRO_REFS`` /
``REPRO_SCALE`` like the figure benchmarks.
"""

import json
from pathlib import Path

from conftest import run_once

from repro.cluster.cli import format_cluster_benchmark, run_cluster_benchmark

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

NODE_COUNTS = [1, 2, 3]


def test_cluster_scaling_sweep(benchmark, params, report):
    result = run_once(
        benchmark,
        run_cluster_benchmark,
        node_counts=NODE_COUNTS,
        refs=min(params.n_refs, 12_000),  # live servers: bound the wall
        scale=params.scale,
        seed=params.seed,
    )
    report(format_cluster_benchmark(result))
    BENCH_FILE.write_text(json.dumps(result, indent=2) + "\n")
    report(f"wrote {BENCH_FILE}")
    # aggregate effective capacity grows with node count at equal
    # per-node RAM: hit rate monotonic along 1 -> 2 -> 3 nodes
    assert result["node_counts"] == NODE_COUNTS
    assert result["monotonic_hit_rate"], result["hit_rates"]
    rows = result["sweep"]
    assert all(
        b["data_capacity_entries"] > a["data_capacity_entries"]
        for a, b in zip(rows, rows[1:])
    )
    assert all(row["throughput_rps"] > 0 for row in rows)
