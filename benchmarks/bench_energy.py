"""Benchmark: energy study (the paper's Section 1 power motivation)."""

from conftest import run_experiment


def test_energy_study(benchmark, params, report):
    run_experiment(benchmark, report, "energy", params)
