"""Benchmark: energy study (the paper's Section 1 power motivation)."""

from conftest import run_once

from repro.experiments.energy import format_energy, run_energy_study


def test_energy_study(benchmark, params, report):
    result = run_once(benchmark, run_energy_study, params)
    report(format_energy(result))
