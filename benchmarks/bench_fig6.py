"""Benchmark: regenerate paper Figure 6 (per-workload speedups)."""

from conftest import run_experiment


def test_fig6_per_workload_speedups(benchmark, params, report):
    run_experiment(benchmark, report, "fig6", params)
