"""Benchmark: regenerate paper Figure 6 (per-workload speedups)."""

from conftest import run_once

from repro.experiments import format_fig6, run_fig6


def test_fig6_per_workload_speedups(benchmark, params, report):
    result = run_once(benchmark, run_fig6, params)
    lines = [format_fig6(result), "", "sorted speedup curves:"]
    for label, d in result.items():
        curve = " ".join(f"{s:.2f}" for s in d["sorted_speedups"])
        lines.append(f"  {label:<10} {curve}")
    report("\n".join(lines))
