"""Benchmark: the prefetching extension study (paper Section 6 discussion)."""

from conftest import run_once

from repro.experiments.prefetch import format_prefetch, run_prefetch


def test_prefetch_extension(benchmark, params, report):
    result = run_once(benchmark, run_prefetch, params)
    report(format_prefetch(result))
