"""Benchmark: the prefetching extension study (paper Section 6 discussion)."""

from conftest import run_experiment


def test_prefetch_extension(benchmark, params, report):
    run_experiment(benchmark, report, "prefetch", params)
