"""Benchmark: regenerate paper Figure 10 (per-application quartiles)."""

from conftest import run_experiment


def test_fig10_per_application(benchmark, params, report):
    run_experiment(benchmark, report, "fig10", params)
