"""Benchmark: regenerate paper Figure 10 (per-application quartiles)."""

from conftest import run_once

from repro.experiments import format_fig10, run_fig10


def test_fig10_per_application(benchmark, params, report):
    result = run_once(benchmark, run_fig10, params)
    report(format_fig10(result))
