"""Benchmark: Belady OPT bound study (extension beyond the paper)."""

from conftest import run_once

from repro.experiments.opt_bound import format_opt_bound, run_opt_bound


def test_opt_bound(benchmark, params, report):
    result = run_once(benchmark, run_opt_bound, params)
    report(format_opt_bound(result))
