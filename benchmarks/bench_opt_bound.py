"""Benchmark: Belady OPT bound study (extension beyond the paper)."""

from conftest import run_experiment


def test_opt_bound(benchmark, params, report):
    run_experiment(benchmark, report, "opt", params)
