"""Benchmark: regenerate paper Figure 9 (reuse cache vs NCID)."""

from conftest import run_once

from repro.experiments import format_fig9, run_fig9


def test_fig9_vs_ncid(benchmark, params, report):
    result = run_once(benchmark, run_fig9, params)
    report(format_fig9(result))
