"""Benchmark: regenerate paper Figure 9 (reuse cache vs NCID)."""

from conftest import run_experiment


def test_fig9_vs_ncid(benchmark, params, report):
    run_experiment(benchmark, report, "fig9", params)
