"""Benchmark: regenerate paper Section 5.8 (memory-bandwidth sweep)."""

from conftest import run_once

from repro.experiments import format_bandwidth, run_bandwidth


def test_bandwidth_sensitivity(benchmark, params, report):
    result = run_once(benchmark, run_bandwidth, params)
    report(format_bandwidth(result))
