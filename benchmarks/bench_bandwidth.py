"""Benchmark: regenerate paper Section 5.8 (memory-bandwidth sweep)."""

from conftest import run_experiment


def test_bandwidth_sensitivity(benchmark, params, report):
    run_experiment(benchmark, report, "bandwidth", params)
