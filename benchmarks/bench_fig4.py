"""Benchmark: regenerate paper Figure 4 (data size x associativity)."""

from conftest import run_once

from repro.experiments import format_fig4, run_fig4


def test_fig4_data_size_and_associativity(benchmark, params, report):
    result = run_once(benchmark, run_fig4, params)
    report(format_fig4(result))
