"""Benchmark: regenerate paper Figure 4 (data size x associativity)."""

from conftest import run_experiment


def test_fig4_data_size_and_associativity(benchmark, params, report):
    run_experiment(benchmark, report, "fig4", params)
