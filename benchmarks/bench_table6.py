"""Benchmark: regenerate paper Table 6 (data-allocation selectivity)."""

from conftest import run_once

from repro.experiments import format_table6, run_table6


def test_table6_selectivity(benchmark, params, report):
    result = run_once(benchmark, run_table6, params)
    report(format_table6(result))
