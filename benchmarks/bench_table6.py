"""Benchmark: regenerate paper Table 6 (data-allocation selectivity)."""

from conftest import run_experiment


def test_table6_selectivity(benchmark, params, report):
    run_experiment(benchmark, report, "table6", params)
