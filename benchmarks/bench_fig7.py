"""Benchmark: regenerate paper Figure 7 (live-line fractions)."""

from conftest import run_experiment


def test_fig7_live_fractions(benchmark, params, report):
    run_experiment(benchmark, report, "fig7", params)
