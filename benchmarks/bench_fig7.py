"""Benchmark: regenerate paper Figure 7 (live-line fractions)."""

from conftest import run_once

from repro.experiments import format_fig7, run_fig7


def test_fig7_live_fractions(benchmark, params, report):
    result = run_once(benchmark, run_fig7, params)
    report(format_fig7(result))
