"""Benchmark: DRAM traffic study (adjunct to paper Table 6 / Section 5.3)."""

from conftest import run_once

from repro.experiments.traffic import format_traffic, run_traffic


def test_traffic_study(benchmark, params, report):
    result = run_once(benchmark, run_traffic, params)
    report(format_traffic(result))
