"""Benchmark: DRAM traffic study (adjunct to paper Table 6 / Section 5.3)."""

from conftest import run_experiment


def test_traffic_study(benchmark, params, report):
    run_experiment(benchmark, report, "traffic", params)
