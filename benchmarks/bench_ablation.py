"""Benchmark: ablations of the reuse cache's design choices (DESIGN.md).

Not a paper table - quantifies the contribution of NRR tags, Clock data
replacement and selective allocation on the same workload suite."""

from conftest import run_experiment


def test_ablation_tag_policy(benchmark, params, report):
    run_experiment(benchmark, report, "ablation-tag", params)

def test_ablation_data_policy(benchmark, params, report):
    run_experiment(benchmark, report, "ablation-data", params)

def test_ablation_reuse_threshold(benchmark, params, report):
    run_experiment(benchmark, report, "ablation-threshold", params)

def test_ablation_allocation(benchmark, params, report):
    run_experiment(benchmark, report, "ablation-alloc", params)
