"""Benchmark: ablations of the reuse cache's design choices (DESIGN.md).

Not a paper table — quantifies the contribution of NRR tags, Clock data
replacement and selective allocation on the same workload suite.
"""

from conftest import run_once

from repro.experiments.ablation import (
    format_ablation,
    run_allocation_ablation,
    run_data_policy_ablation,
    run_tag_policy_ablation,
    run_threshold_ablation,
)


def test_ablation_tag_policy(benchmark, params, report):
    result = run_once(benchmark, run_tag_policy_ablation, params)
    report(format_ablation(result, "Ablation: RC-4/1 tag-array replacement policy"))


def test_ablation_data_policy(benchmark, params, report):
    result = run_once(benchmark, run_data_policy_ablation, params)
    report(format_ablation(result, "Ablation: RC-4/1 data-array replacement policy"))


def test_ablation_reuse_threshold(benchmark, params, report):
    result = run_once(benchmark, run_threshold_ablation, params)
    report(
        format_ablation(
            result,
            "Ablation: RC-4/1 reuse threshold (0 = allocate-on-miss, "
            "1 = the paper's rule)",
        )
    )


def test_ablation_allocation(benchmark, params, report):
    result = run_once(benchmark, run_allocation_ablation, params)
    report(
        format_ablation(
            result,
            "Ablation: selective allocation vs allocate-on-miss at 1 MB data",
        )
    )
