"""Benchmark: regenerate paper Figure 5 (tag-array size sweep)."""

from conftest import run_once

from repro.experiments import format_fig5, run_fig5


def test_fig5_tag_array_sweep(benchmark, params, report):
    result = run_once(benchmark, run_fig5, params)
    report(format_fig5(result))
