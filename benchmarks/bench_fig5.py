"""Benchmark: regenerate paper Figure 5 (tag-array size sweep)."""

from conftest import run_experiment


def test_fig5_tag_array_sweep(benchmark, params, report):
    run_experiment(benchmark, report, "fig5", params)
