"""Benchmark: regenerate paper Tables 2 (hardware cost, exact) and 3
(access latency, CACTI surrogate) via the experiment registry."""

from conftest import run_experiment


def test_table2_hardware_cost(benchmark, params, report):
    run_experiment(benchmark, report, "table2", params)

def test_table3_latency(benchmark, params, report):
    run_experiment(benchmark, report, "table3", params)
