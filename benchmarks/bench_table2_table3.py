"""Benchmark: regenerate paper Tables 2 (hardware cost, exact) and 3
(access-latency comparison via the CACTI surrogate)."""

from conftest import run_once

from repro.experiments import (
    format_table2,
    format_table3,
    run_table2,
    run_table3,
)


def test_table2_hardware_cost(benchmark, report):
    result = run_once(benchmark, run_table2)
    report(format_table2(result))


def test_table3_latency(benchmark, report):
    result = run_once(benchmark, run_table3)
    report(format_table3(result))
