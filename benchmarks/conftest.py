"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints its
rows (also appended to ``benchmarks/results.txt``).  Scale the runs with the
environment variables ``REPRO_WORKLOADS`` (default 6), ``REPRO_REFS``
(default 25000), ``REPRO_SCALE`` (default 32).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentParams

RESULTS_FILE = Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session")
def params() -> ExperimentParams:
    base = ExperimentParams(
        n_workloads=int(os.environ.get("REPRO_WORKLOADS", 6)),
        n_refs=int(os.environ.get("REPRO_REFS", 25_000)),
        scale=int(os.environ.get("REPRO_SCALE", 32)),
        seed=int(os.environ.get("REPRO_SEED", 2013)),
    )
    return base


@pytest.fixture(scope="session")
def report():
    """Print a result block and persist it to benchmarks/results.txt."""

    def _report(text: str) -> None:
        block = "\n" + text + "\n"
        print(block)
        with RESULTS_FILE.open("a") as fh:
            fh.write(block)

    RESULTS_FILE.write_text("")  # fresh file per session
    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_experiment(benchmark, report, name, params, runner=None):
    """Benchmark one registered experiment end to end.

    Resolves *name* in :mod:`repro.experiments.registry`, executes it once
    through the engine (``Runner.default()`` honours ``REPRO_PARALLEL`` and
    ``REPRO_CACHE_DIR``), prints and persists its formatted rows, and
    returns the raw result.
    """
    from repro.experiments.registry import get
    from repro.runner import Runner

    spec = get(name)
    if runner is None:
        runner = Runner.default()
    result = benchmark.pedantic(
        spec.execute,
        args=(params,),
        kwargs={"runner": runner},
        rounds=1,
        iterations=1,
    )
    report(spec.format(result))
    return result
