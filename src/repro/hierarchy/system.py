"""The eight-core CMP simulator (paper Table 4).

Each core is in-order and blocking: one cycle per instruction plus the full
hierarchy latency of every memory reference.  Cores interleave through a
min-heap over their local clocks, so accesses reach the shared SLLC banks
and the DRAM channel in global time order and contend there.

Per reference the flow is:

1. private L1/L2 lookup (latency per Table 4);
2. on a private miss, crossbar + SLLC bank lookup: the bank resolves the
   access (conventional / reuse / NCID semantics) and reports where the data
   came from — the data array, a peer's private cache, or DRAM;
3. DRAM reads go through the contention-aware DDR3 model; SLLC and private
   writebacks are posted writes (bandwidth, no stall);
4. coherence/inclusion invalidations are applied to the private caches,
   flushing dirty inclusion victims to DRAM.

Statistics are collected over a measurement window that starts when every
core has executed its warm-up references, mirroring the paper's
warm-up-then-measure methodology.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

from ..cache.conventional import ConventionalLLC
from ..cache.ncid import NCIDCache
from ..cache.vway import VWayCache
from ..cache.private_cache import PrivateHierarchy
from ..core.reuse_cache import ReuseCache
from ..dram.ddr3 import DDR3Memory
from ..metrics.generations import GenerationLog, GenerationRecorder
from ..obs import Observability
from ..metrics.perf import aggregate_ipc, mpki
from ..utils import ilog2
from ..workloads.trace import Workload
from .config import LLCSpec, SystemConfig, capacity_lines


def build_llc_banks(config: SystemConfig):
    """Instantiate one SLLC model per bank from an :class:`LLCSpec`."""
    spec = config.llc
    banks = config.llc_banks
    rng = random.Random(config.seed + 17)
    instances = []
    for b in range(banks):
        if spec.kind == "conventional":
            lines = capacity_lines(spec.size_mb, config.scale) // banks
            llc = ConventionalLLC(
                lines,
                config.llc_assoc,
                policy=spec.policy,
                num_cores=config.num_cores,
                rng=random.Random(rng.random()),
            )
        elif spec.kind == "reuse":
            tag_lines = capacity_lines(spec.tag_mbeq, config.scale) // banks
            data_lines = capacity_lines(spec.data_mb, config.scale) // banks
            data_assoc = spec.data_assoc
            if data_assoc != "full":
                data_assoc = min(int(data_assoc), data_lines)
            llc = ReuseCache(
                tag_lines,
                config.llc_assoc,
                data_lines,
                data_assoc=data_assoc,
                num_cores=config.num_cores,
                tag_policy=spec.tag_policy or "nrr",
                data_policy=spec.data_policy,
                reuse_threshold=spec.reuse_threshold,
                rng=random.Random(rng.random()),
            )
        elif spec.kind == "ncid":
            tag_lines = capacity_lines(spec.tag_mbeq, config.scale) // banks
            data_lines = capacity_lines(spec.data_mb, config.scale) // banks
            llc = NCIDCache(
                tag_lines,
                config.llc_assoc,
                data_lines,
                num_cores=config.num_cores,
                rng=random.Random(rng.random()),
            )
        elif spec.kind == "vway":
            data_lines = capacity_lines(spec.size_mb, config.scale) // banks
            llc = VWayCache(
                data_lines,
                base_assoc=config.llc_assoc,
                num_cores=config.num_cores,
                rng=random.Random(rng.random()),
            )
        else:
            raise ValueError(f"unknown LLC kind {spec.kind!r}")
        instances.append(llc)
    return instances


@dataclass
class RunResult:
    """Measured outcome of one (configuration, workload) simulation."""

    config_label: str
    workload_name: str
    app_names: list
    #: per-core committed instructions / elapsed cycles in the window
    instructions: list
    cycles: list
    #: per-core misses per kilo-instruction at each level
    l1_mpki: list
    l2_mpki: list
    llc_mpki: list
    llc_stats: dict
    dram_stats: dict
    generations: GenerationLog | None = None
    extra: dict = field(default_factory=dict)

    @property
    def performance(self) -> float:
        """Aggregate IPC (the speedup numerator/denominator)."""
        return aggregate_ipc(self.instructions, self.cycles)

    @property
    def ipc(self) -> list:
        """Per-core IPC over the measurement window."""
        return [i / c if c else 0.0 for i, c in zip(self.instructions, self.cycles)]


class System:
    """One simulated CMP: private hierarchies, banked SLLC, DRAM."""

    def __init__(
        self,
        config: SystemConfig,
        workload: Workload,
        record_generations: bool = False,
        capture_llc_trace: bool = False,
        obs: Observability | None = None,
    ):
        config.validate()
        if workload.num_cores != config.num_cores:
            raise ValueError(
                f"workload has {workload.num_cores} traces for "
                f"{config.num_cores} cores"
            )
        self.config = config
        self.workload = workload
        n = config.num_cores
        self.private = [
            PrivateHierarchy(
                config.l1_lines(), config.l1_assoc, config.l2_lines(), config.l2_assoc
            )
            for _ in range(n)
        ]
        self.banks = build_llc_banks(config)
        self._bank_mask = config.llc_banks - 1
        self._bank_bits = ilog2(config.llc_banks)
        self.dram = DDR3Memory(config.dram)
        #: observability bundle; disabled by default so simulation speed and
        #: results are untouched unless a caller opts in
        self.obs = obs if obs is not None else Observability.disabled()
        if self.obs.tracer.enabled:
            # each SLLC bank gets its own Chrome-trace process lane
            for b, bank in enumerate(self.banks):
                bank.attach_tracer(self.obs.tracer, pid=b)
        if self.obs.registry.enabled:
            self.obs.registry.register_collector(self._publish_metrics)
        self.recorder = GenerationRecorder() if record_generations else None
        if self.recorder is not None:
            # bank-local addresses collide across banks; the adapter tags
            # each bank's addresses so the recorder sees a single space
            for b, bank in enumerate(self.banks):
                bank.attach_recorder(_BankRecorder(self.recorder, b))
        # per-core counters (running totals)
        self.l1_misses = [0] * n
        self.l2_misses = [0] * n
        self.llc_misses = [0] * n  # demand accesses that went to DRAM
        self.upgrades = [0] * n
        self.prefetch_issued = [0] * n
        #: demand SLLC access stream (global line addresses), captured for
        #: offline analyses such as the Belady OPT bound
        self.llc_trace = [] if capture_llc_trace else None

    # -- address helpers -------------------------------------------------------
    def _bank_of(self, addr: int) -> int:
        return addr & self._bank_mask

    def _local(self, addr: int) -> int:
        return addr >> self._bank_bits

    def _global(self, local_addr: int, bank: int) -> int:
        return (local_addr << self._bank_bits) | bank

    # -- one memory reference ----------------------------------------------------
    def _access(self, core: int, addr: int, is_write: bool, now: int) -> int:
        """Process one reference; returns the stall latency in cycles."""
        cfg = self.config
        level, needs_upgrade, evictions = self.private[core].access(addr, is_write)
        # (the private L1<->L2 path produces no L2 evictions on a lookup)

        if level == "l1":
            if needs_upgrade:
                self._do_upgrade(core, addr, now)
                return cfg.l2_latency + cfg.xbar_latency + cfg.llc_latency
            return 0

        if level == "l2":
            self.l1_misses[core] += 1
            if needs_upgrade:
                self._do_upgrade(core, addr, now)
                return cfg.l2_latency + cfg.xbar_latency + cfg.llc_latency
            return cfg.l2_latency

        # private miss: go to the SLLC bank
        self.l1_misses[core] += 1
        self.l2_misses[core] += 1
        if self.llc_trace is not None:
            self.llc_trace.append(addr)
        bank = addr & self._bank_mask
        llc = self.banks[bank]
        t_at_llc = now + cfg.l2_latency + cfg.xbar_latency + cfg.llc_latency
        res = llc.access(addr >> self._bank_bits, core, is_write, t_at_llc)

        # side effects: SLLC writebacks and invalidations
        for wb_local in res.writebacks:
            self.dram.write(self._global(wb_local, bank), t_at_llc)
        for victim_core in res.coherence_invals:
            self.private[victim_core].invalidate(addr)
            # dirty coherence victims forward their data to the requester
        for victim_core, victim_local in res.inclusion_invals:
            victim_addr = self._global(victim_local, bank)
            present, dirty = self.private[victim_core].invalidate(victim_addr)
            if present and dirty:
                self.dram.write(victim_addr, t_at_llc)

        if res.source == "llc":
            latency = cfg.l2_latency + cfg.xbar_latency + cfg.llc_latency
        elif res.source == "peer":
            latency = (
                cfg.l2_latency + cfg.xbar_latency + cfg.llc_latency + cfg.peer_latency
            )
        else:  # dram
            self.llc_misses[core] += 1
            done = self.dram.read(addr, t_at_llc)
            latency = (done - now) + cfg.xbar_latency

        # refill the private hierarchy and report its L2 victim (PUTS/PUTX)
        for ev_addr, ev_dirty in self.private[core].fill(addr, dirty=is_write):
            ev_bank = ev_addr & self._bank_mask
            wbs = self.banks[ev_bank].notify_private_eviction(
                ev_addr >> self._bank_bits, core, ev_dirty
            )
            for wb_local in wbs:
                self.dram.write(self._global(wb_local, ev_bank), t_at_llc)

        if cfg.prefetch_degree:
            self._issue_prefetches(core, addr, t_at_llc)
        return latency

    def _issue_prefetches(self, core: int, addr: int, now: int) -> None:
        """Sequential prefetch into the core's L2 after a demand miss.

        Prefetches never stall the core; they consume SLLC state and DRAM
        bandwidth and obey inclusion like demand fills.
        """
        private = self.private[core]
        for delta in range(1, self.config.prefetch_degree + 1):
            pf_addr = addr + delta
            if private.contains(pf_addr):
                continue
            bank = pf_addr & self._bank_mask
            res = self.banks[bank].prefetch(pf_addr >> self._bank_bits, core, now)
            self.prefetch_issued[core] += 1
            for wb_local in res.writebacks:
                self.dram.write(self._global(wb_local, bank), now)
            for victim_core, victim_local in res.inclusion_invals:
                victim_addr = self._global(victim_local, bank)
                present, dirty = self.private[victim_core].invalidate(victim_addr)
                if present and dirty:
                    self.dram.write(victim_addr, now)
            if res.source == "dram":
                self.dram.read(pf_addr, now)
            for ev_addr, ev_dirty in private.prefetch_fill(pf_addr):
                ev_bank = ev_addr & self._bank_mask
                wbs = self.banks[ev_bank].notify_private_eviction(
                    ev_addr >> self._bank_bits, core, ev_dirty
                )
                for wb_local in wbs:
                    self.dram.write(self._global(wb_local, ev_bank), now)

    def _activate_recorder(self, now: int) -> None:
        """Start generation recording at the end of warm-up.

        Lines already resident in the data arrays are seeded as open
        generations (fill time = activation), otherwise the long-lived
        lines that good policies protect — exactly the live ones — would be
        invisible to the liveness analysis.
        """
        self.recorder.activate(now)
        for bank in self.banks:
            adapter = bank.recorder
            for addr in bank.resident_data_lines():
                adapter.on_fill(addr, now)

    def _do_upgrade(self, core: int, addr: int, now: int) -> None:
        self.upgrades[core] += 1
        bank = addr & self._bank_mask
        invals = self.banks[bank].upgrade(addr >> self._bank_bits, core)
        for victim_core in invals:
            self.private[victim_core].invalidate(addr)
        self.private[core].mark_written(addr)

    # -- run loop -------------------------------------------------------------------
    def run(self, warmup_frac: float = 0.2) -> RunResult:
        """Simulate the whole workload; measure after the warm-up window."""
        if not 0 <= warmup_frac < 1:
            raise ValueError("warmup_frac must lie in [0, 1)")
        cfg = self.config
        n = cfg.num_cores
        traces = self.workload.traces
        gaps = [t.gaps for t in traces]
        addrs = [t.addrs for t in traces]
        writes = [t.writes for t in traces]
        lengths = [t.n_refs for t in traces]
        warm_refs = [int(warmup_frac * ln) for ln in lengths]

        idx = [0] * n
        instr = [0] * n
        finish = [0] * n
        # 'overlap' core model: misses within an mlp_window-instruction
        # burst overlap; the core serialises at burst boundaries
        overlap = cfg.core_model == "overlap"
        window = max(1, cfg.mlp_window)
        burst_start = [0] * n
        outstanding = [0] * n
        warm_time = [0] * n
        warm_instr = [0] * n
        warm_l1 = [0] * n
        warm_l2 = [0] * n
        warm_llc = [0] * n
        cores_warm = sum(1 for c in range(n) if warm_refs[c] == 0)
        if cores_warm == n and self.recorder is not None:
            self._activate_recorder(0)

        heap = [(0, c) for c in range(n) if lengths[c]]
        heapq.heapify(heap)
        access = self._access

        while heap:
            t, c = heapq.heappop(heap)
            i = idx[c]
            g = gaps[c][i]
            t += g  # non-memory instructions, one cycle each
            if overlap:
                if instr[c] + g - burst_start[c] >= window:
                    # burst boundary: drain outstanding misses
                    if outstanding[c] > t:
                        t = outstanding[c]
                    burst_start[c] = instr[c] + g
                stall = access(c, addrs[c][i], bool(writes[c][i]), t)
                done = t + 1 + stall
                if done > outstanding[c]:
                    outstanding[c] = done
                t += 1  # the access issues; its latency overlaps
            else:
                stall = access(c, addrs[c][i], bool(writes[c][i]), t)
                t += 1 + stall  # the memory instruction itself
            instr[c] += g + 1
            i += 1
            idx[c] = i
            if i == warm_refs[c]:
                warm_time[c] = t
                warm_instr[c] = instr[c]
                warm_l1[c] = self.l1_misses[c]
                warm_l2[c] = self.l2_misses[c]
                warm_llc[c] = self.llc_misses[c]
                cores_warm += 1
                if cores_warm == n and self.recorder is not None:
                    self._activate_recorder(t)
            if i < lengths[c]:
                heapq.heappush(heap, (t, c))
            else:
                finish[c] = max(t, outstanding[c]) if overlap else t

        end_time = max(finish)
        measured_instr = [instr[c] - warm_instr[c] for c in range(n)]
        measured_cycles = [finish[c] - warm_time[c] for c in range(n)]
        m_l1 = [self.l1_misses[c] - warm_l1[c] for c in range(n)]
        m_l2 = [self.l2_misses[c] - warm_l2[c] for c in range(n)]
        m_llc = [self.llc_misses[c] - warm_llc[c] for c in range(n)]

        generations = None
        if self.recorder is not None:
            generations = self.recorder.finalize(end_time)

        return RunResult(
            config_label=cfg.llc.label,
            workload_name=self.workload.name,
            app_names=self.workload.app_names,
            instructions=measured_instr,
            cycles=measured_cycles,
            l1_mpki=[mpki(m, i) for m, i in zip(m_l1, measured_instr)],
            l2_mpki=[mpki(m, i) for m, i in zip(m_l2, measured_instr)],
            llc_mpki=[mpki(m, i) for m, i in zip(m_llc, measured_instr)],
            llc_stats=self._llc_stats(),
            dram_stats=self.dram.stats(),
            generations=generations,
        )

    def _llc_stats(self) -> dict:
        totals = {}
        for bank in self.banks:
            for key, value in bank.stats().items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        # fraction_not_entered must be recomputed from the summed counters
        if totals.get("tag_fills"):
            totals["fraction_not_entered"] = 1.0 - totals.get("data_fills", 0) / totals["tag_fills"]
        return totals

    def _publish_metrics(self, registry) -> None:
        """Collector mirroring bank/DRAM counters into the obs registry.

        Registered via ``registry.register_collector`` so the simulator's
        hot path keeps plain int counters; the registry pulls them only when
        a snapshot is taken.
        """
        label = self.config.llc.label
        for key, value in self._llc_stats().items():
            registry.gauge(
                f"repro_sim_llc_{key}",
                help="summed SLLC bank counter (see BaseLLC.stats)",
                config=label,
            ).set(float(value))
        for key, value in self.dram.stats().items():
            if isinstance(value, (int, float)):
                registry.gauge(
                    f"repro_sim_dram_{key}",
                    help="DDR3 channel counter (see DDR3Memory.stats)",
                    config=label,
                ).set(float(value))


class _BankRecorder:
    """Adapter giving each bank a disjoint address space in one recorder."""

    __slots__ = ("recorder", "bank_id")

    def __init__(self, recorder: GenerationRecorder, bank_id):
        self.recorder = recorder
        self.bank_id = bank_id

    def _key(self, addr: int) -> int:
        return (addr << 3) | self.bank_id

    def on_fill(self, addr, now):
        self.recorder.on_fill(self._key(addr), now)

    def on_hit(self, addr, now):
        self.recorder.on_hit(self._key(addr), now)

    def on_evict(self, addr, now):
        self.recorder.on_evict(self._key(addr), now)


def run_workload(
    config: SystemConfig,
    workload: Workload,
    record_generations: bool = False,
    warmup_frac: float = 0.2,
    obs: Observability | None = None,
) -> RunResult:
    """Convenience wrapper: build a :class:`System` and run it."""
    return System(config, workload, record_generations=record_generations, obs=obs).run(
        warmup_frac=warmup_frac
    )
