"""CMP hierarchy: system configuration and the multi-core timing simulator."""

from .config import LLCSpec, SystemConfig, capacity_lines
from .system import RunResult, System, build_llc_banks, run_workload

__all__ = [
    "LLCSpec",
    "SystemConfig",
    "capacity_lines",
    "System",
    "RunResult",
    "run_workload",
    "build_llc_banks",
]
