"""System and SLLC configuration (paper Table 4 and Section 5 naming).

Capacities are expressed in the paper's full-size units (KB/MB, 64 B lines)
and divided by ``SystemConfig.scale`` to obtain tractable simulated
structures with identical associativities and size *ratios*.  The default
``scale=32`` maps the 8 MB baseline onto 4096 lines, the 256 KB private L2
onto 128 lines and the 32 KB L1 onto 16 lines per core.

Reuse-cache configurations use the paper's ``RC-x/y`` naming: a tag array
equivalent to an ``x`` MB conventional cache ("x MBeq") with a ``y`` MB data
array, e.g. ``LLCSpec.reuse(4, 1)`` is RC-4/1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..dram.ddr3 import DDR3Config
from ..utils import is_power_of_two

LINE_BYTES = 64


def capacity_lines(size_mb: float, scale: int = 1) -> int:
    """Number of 64 B lines of a ``size_mb`` structure after scaling."""
    lines = size_mb * (1 << 20) / LINE_BYTES / scale
    result = int(round(lines))
    if result <= 0 or abs(lines - result) > 1e-9:
        raise ValueError(
            f"{size_mb} MB does not scale to a whole number of lines at 1/{scale}"
        )
    if not is_power_of_two(result):
        raise ValueError(f"{size_mb} MB at 1/{scale} gives {result} lines (not a power of two)")
    return result


@dataclass(frozen=True)
class LLCSpec:
    """What kind of SLLC to build, in paper-level units."""

    kind: str  # 'conventional' | 'reuse' | 'ncid'
    #: conventional: total capacity; decoupled kinds: unused
    size_mb: float = 8.0
    #: conventional replacement policy ('lru', 'drrip', 'nrr', ...)
    policy: str = "lru"
    #: decoupled kinds: tag array equivalent (MBeq) and data capacity (MB)
    tag_mbeq: float = 8.0
    data_mb: float = 4.0
    #: reuse cache data-array organisation: 'full' or a way count
    data_assoc: object = "full"
    #: reuse cache replacement overrides (None = the paper's NRR tags and
    #: Clock/NRU data); accepts any name registered in repro.replacement
    tag_policy: str | None = None
    data_policy: str | None = None
    #: reuses required before a data entry is allocated (1 = the paper)
    reuse_threshold: int = 1

    # -- constructors ----------------------------------------------------------
    @staticmethod
    def conventional(size_mb: float, policy: str = "lru") -> "LLCSpec":
        """A conventional inclusive SLLC of ``size_mb`` megabytes."""
        return LLCSpec(kind="conventional", size_mb=size_mb, policy=policy)

    @staticmethod
    def reuse(
        tag_mbeq: float,
        data_mb: float,
        data_assoc="full",
        tag_policy: str | None = None,
        data_policy: str | None = None,
        reuse_threshold: int = 1,
    ) -> "LLCSpec":
        """A reuse cache RC-``tag_mbeq``/``data_mb`` (paper naming)."""
        return LLCSpec(
            kind="reuse",
            tag_mbeq=tag_mbeq,
            data_mb=data_mb,
            data_assoc=data_assoc,
            tag_policy=tag_policy,
            data_policy=data_policy,
            reuse_threshold=reuse_threshold,
        )

    @staticmethod
    def ncid(tag_mbeq: float, data_mb: float) -> "LLCSpec":
        """An NCID SLLC with ``tag_mbeq`` tags over ``data_mb`` of data."""
        return LLCSpec(kind="ncid", tag_mbeq=tag_mbeq, data_mb=data_mb)

    @staticmethod
    def vway(size_mb: float) -> "LLCSpec":
        """V-way cache: ``size_mb`` of data, double the tags (Section 6)."""
        return LLCSpec(kind="vway", size_mb=size_mb, data_mb=size_mb,
                       tag_mbeq=2 * size_mb)

    @property
    def label(self) -> str:
        """Paper-style name: 'conv-8MB-lru', 'RC-8/4', 'NCID-8/1'."""

        def _fmt(x: float) -> str:
            return f"{x:g}"

        if self.kind == "conventional":
            return f"conv-{_fmt(self.size_mb)}MB-{self.policy}"
        if self.kind == "vway":
            return f"VW-{_fmt(self.size_mb)}MB"
        prefix = "RC" if self.kind == "reuse" else "NCID"
        return f"{prefix}-{_fmt(self.tag_mbeq)}/{_fmt(self.data_mb)}"

    def storage_mb(self) -> float:
        """Data-holding capacity (used for quick sanity reporting only; the
        exact bit accounting lives in :mod:`repro.core.cost_model`)."""
        return self.size_mb if self.kind == "conventional" else self.data_mb


@dataclass(frozen=True)
class SystemConfig:
    """The eight-core CMP of paper Table 4 (scaled)."""

    llc: LLCSpec = field(default_factory=lambda: LLCSpec.conventional(8.0, "lru"))
    num_cores: int = 8
    scale: int = 32

    # private caches (full-size units)
    l1_kb: int = 32
    l1_assoc: int = 4
    l2_kb: int = 256
    l2_assoc: int = 8

    # SLLC organisation
    llc_banks: int = 4
    llc_assoc: int = 16

    # latencies (processor cycles)
    l2_latency: int = 7
    llc_latency: int = 10
    xbar_latency: int = 4
    #: extra cycles of a cache-to-cache (peer) transfer beyond the SLLC visit
    peer_latency: int = 11

    #: sequential-prefetch degree: on each private (L2) demand miss, the
    #: next ``prefetch_degree`` lines are prefetched into the L2 (0 = off).
    #: The reuse cache handles prefetched lines at low priority by
    #: construction (paper Section 6).
    prefetch_degree: int = 0

    #: core model: 'inorder' (the paper's blocking cores) or 'overlap' —
    #: a miss whose predecessor completed within ``mlp_window`` committed
    #: instructions overlaps with it (a simple MLP approximation standing
    #: in for out-of-order cores; extension study, not in the paper)
    core_model: str = "inorder"
    mlp_window: int = 32

    dram: DDR3Config = field(default_factory=DDR3Config)
    seed: int = 0

    # -- derived geometry ----------------------------------------------------------
    def l1_lines(self) -> int:
        """Scaled per-core L1 capacity in lines."""
        return capacity_lines(self.l1_kb / 1024, self.scale)

    def l2_lines(self) -> int:
        """Scaled per-core L2 capacity in lines."""
        return capacity_lines(self.l2_kb / 1024, self.scale)

    def with_llc(self, llc: LLCSpec) -> "SystemConfig":
        """A copy of this config with a different SLLC."""
        return replace(self, llc=llc)

    def with_dram(self, dram: DDR3Config) -> "SystemConfig":
        """A copy of this config with a different memory system."""
        return replace(self, dram=dram)

    def validate(self) -> "SystemConfig":
        """Sanity-check the geometry; returns self."""
        if self.core_model not in ("inorder", "overlap"):
            raise ValueError(f"unknown core_model {self.core_model!r}")
        if self.num_cores <= 0 or not is_power_of_two(self.llc_banks):
            raise ValueError("bad core/bank counts")
        if self.l1_lines() < self.l1_assoc or self.l2_lines() < self.l2_assoc:
            raise ValueError(
                f"scale {self.scale} shrinks the private caches below one set"
            )
        return self
