"""Conventional inclusive SLLC (the paper's baseline).

Tags and data are coupled 1:1.  Every miss allocates tag *and* data
(non-selective allocation); evictions back-invalidate private copies to
preserve inclusion.  Replacement is pluggable: the baseline uses LRU, the
state-of-the-art comparisons use TA-DRRIP and NRR (Figs. 7 and 8).

When the policy is NRR the cache follows the paper and filters eviction
candidates through the full-map directory so lines resident in private
caches are protected; other policies evict purely by their own order (the
baseline LRU therefore suffers inclusion victims, as in the paper).
"""

from __future__ import annotations

import random

from ..coherence.directory import Directory
from ..obs.tracing import EVICTION, FILL
from ..replacement import make_policy
from ..utils import require_power_of_two
from .llc_base import BaseLLC, LLCAccess
from .set_assoc import TagStore


class ConventionalLLC(BaseLLC):
    """Inclusive, non-selective SLLC with a full-map directory."""

    kind = "conventional"

    def __init__(
        self,
        num_lines: int,
        assoc: int,
        policy: str = "lru",
        num_cores: int = 8,
        rng: random.Random | None = None,
        protect_private: bool | None = None,
    ):
        super().__init__(num_cores, rng)
        require_power_of_two(num_lines, "num_lines")
        if num_lines % assoc:
            raise ValueError(f"{num_lines} lines not divisible into {assoc} ways")
        self.num_lines = num_lines
        self.assoc = assoc
        num_sets = num_lines // assoc
        self.tags = TagStore(num_sets, assoc)
        self.policy_name = policy
        policy_kwargs = {"num_threads": num_cores} if policy == "drrip" else {}
        self.repl = make_policy(policy, num_sets, assoc, rng=self.rng, **policy_kwargs)
        self.directory = Directory(num_sets, assoc, num_cores)
        # NRR is defined over the directory; other policies replicate the
        # paper's baselines, which do not protect private-resident lines.
        self.protect_private = (policy == "nrr") if protect_private is None else protect_private
        self._dirty = [[False] * assoc for _ in range(num_sets)]

    # -- demand access ------------------------------------------------------------
    def access(self, addr: int, core: int, is_write: bool, now: int) -> LLCAccess:
        """Demand GETS/GETX from ``core``; see :class:`BaseLLC`."""
        self.accesses += 1
        self.core_accesses[core] += 1
        set_idx, way = self.tags.lookup(addr)
        if way is not None:
            return self._hit(addr, set_idx, way, core, is_write, now)
        return self._miss(addr, set_idx, core, is_write, now)

    def _hit(self, addr, set_idx, way, core, is_write, now) -> LLCAccess:
        self.data_hits += 1
        self.repl.on_hit(set_idx, way, core)
        self.recorder.on_hit(addr, now)
        directory = self.directory
        if is_write:
            invals = tuple(directory.others(set_idx, way, core))
            directory.set_only(set_idx, way, core)
            return LLCAccess("llc", coherence_invals=invals)
        directory.add(set_idx, way, core)
        return LLCAccess("llc")

    def _miss(self, addr, set_idx, core, is_write, now) -> LLCAccess:
        self.tag_misses += 1
        self.core_dram_fetches[core] += 1
        self.repl.on_miss(set_idx, core)
        writebacks = ()
        inclusion_invals = ()
        way = self.tags.free_way(set_idx)
        if way is None:
            way, writebacks, inclusion_invals = self._evict(set_idx, now)
        self.tags.install(set_idx, way, addr)
        self._dirty[set_idx][way] = False
        self.directory.set_only(set_idx, way, core)
        self.repl.on_fill(set_idx, way, core)
        self.recorder.on_fill(addr, now)
        self.tag_fills += 1
        self.data_fills += 1  # non-selective: every fill allocates data
        tr = self.tracer
        if tr.enabled:
            tr.emit(FILL, ts=now, pid=self.trace_pid, tid=core, args={"addr": addr})
        return LLCAccess(
            "dram",
            dram_reads=1,
            writebacks=writebacks,
            inclusion_invals=inclusion_invals,
        )

    def _evict(self, set_idx, now):
        """Pick and remove a victim; returns (way, writebacks, inclusion_invals)."""
        candidates = self.tags.valid_ways(set_idx)
        if self.protect_private:
            directory = self.directory
            unshared = [w for w in candidates if not directory.in_private_caches(set_idx, w)]
            if unshared:
                candidates = unshared
        way = self.repl.victim(set_idx, candidates)
        victim_addr = self.tags.evict(set_idx, way)
        self.recorder.on_evict(victim_addr, now)
        writebacks = (victim_addr,) if self._dirty[set_idx][way] else ()
        sharers = self.directory.sharers(set_idx, way)
        inclusion_invals = tuple((c, victim_addr) for c in sharers)
        self.directory.clear(set_idx, way)
        self.repl.on_invalidate(set_idx, way)
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                EVICTION, ts=now, pid=self.trace_pid,
                args={
                    "addr": victim_addr,
                    "dirty": bool(writebacks),
                    "inclusion_invals": len(inclusion_invals),
                },
            )
        return way, writebacks, inclusion_invals

    # -- prefetch --------------------------------------------------------------------
    def prefetch(self, addr: int, core: int, now: int) -> LLCAccess:
        """Prefetch GETS: fill (or just record presence) without promoting.

        The conventional baseline is not prefetch-aware: a prefetched miss
        allocates tag+data with the policy's normal insertion, so useless
        prefetches pollute exactly as the paper's related work describes.
        """
        self.prefetches += 1
        set_idx, way = self.tags.lookup(addr)
        if way is not None:
            self.directory.add(set_idx, way, core)
            return LLCAccess("llc")
        dram_writes = ()
        inclusion_invals = ()
        free = self.tags.free_way(set_idx)
        if free is None:
            free, dram_writes, inclusion_invals = self._evict(set_idx, now)
        self.tags.install(set_idx, free, addr)
        self._dirty[set_idx][free] = False
        self.directory.set_only(set_idx, free, core)
        self.repl.on_fill(set_idx, free, core)
        self.recorder.on_fill(addr, now)
        self.tag_fills += 1
        self.data_fills += 1
        return LLCAccess(
            "dram",
            dram_reads=1,
            writebacks=dram_writes,
            inclusion_invals=inclusion_invals,
        )

    # -- coherence upcalls ----------------------------------------------------------
    def upgrade(self, addr: int, core: int) -> tuple:
        """UPG: invalidate other sharers; returns their core ids."""
        set_idx, way = self.tags.lookup(addr)
        if way is None:
            raise KeyError(f"UPG for line {addr:#x} absent from inclusive SLLC")
        self.upgrades += 1
        self.repl.on_hit(set_idx, way, core)
        invals = tuple(self.directory.others(set_idx, way, core))
        self.directory.set_only(set_idx, way, core)
        return invals

    def notify_private_eviction(self, addr: int, core: int, dirty: bool):
        """PUTS/PUTX: clear presence; dirty data is absorbed by the array."""
        set_idx, way = self.tags.lookup(addr)
        if way is None:
            raise KeyError(f"PUT for line {addr:#x} absent from inclusive SLLC")
        self.directory.remove(set_idx, way, core)
        if dirty:
            # Writeback is absorbed by the SLLC data array.
            self._dirty[set_idx][way] = True
        return ()

    # -- introspection ------------------------------------------------------------------
    def resident_data_lines(self):
        """All resident line addresses (tags and data are coupled 1:1)."""
        return self.tags.resident_addrs()

    def check_directory_consistent(self, private_hierarchies) -> bool:
        """Invariant (tests): directory bits match actual private contents."""
        for set_idx in range(self.tags.num_sets):
            for way in self.tags.valid_ways(set_idx):
                addr = self.tags.addrs[set_idx][way]
                for c, ph in enumerate(private_hierarchies):
                    if self.directory.is_present(set_idx, way, c) != ph.contains(addr):
                        return False
        return True
