"""A minimal set-associative tag store.

:class:`TagStore` keeps, per set, the resident line addresses and an
address → way map for O(1) lookup.  It stores *placement* only; replacement
metadata, dirty bits, coherence state etc. live in the owning cache, indexed
by ``(set_idx, way)``.  Addresses are *line* addresses (byte address divided
by the line size) represented as plain ints.
"""

from __future__ import annotations

from ..utils import require_power_of_two


class TagStore:
    """Placement bookkeeping for a ``num_sets`` x ``assoc`` array."""

    __slots__ = ("num_sets", "assoc", "addrs", "maps", "_set_mask")

    def __init__(self, num_sets: int, assoc: int):
        require_power_of_two(num_sets, "num_sets")
        if assoc <= 0:
            raise ValueError(f"assoc must be positive, got {assoc}")
        self.num_sets = num_sets
        self.assoc = assoc
        self._set_mask = num_sets - 1
        self.addrs: list = [[None] * assoc for _ in range(num_sets)]
        self.maps: list = [dict() for _ in range(num_sets)]

    def set_of(self, line_addr: int) -> int:
        """Set index of ``line_addr`` (least-significant index bits)."""
        return line_addr & self._set_mask

    def find(self, set_idx: int, line_addr: int):
        """Way holding ``line_addr`` in ``set_idx``, or None."""
        return self.maps[set_idx].get(line_addr)

    def lookup(self, line_addr: int):
        """``(set_idx, way_or_None)`` for ``line_addr``."""
        set_idx = line_addr & self._set_mask
        return set_idx, self.maps[set_idx].get(line_addr)

    def free_way(self, set_idx: int):
        """An invalid way in ``set_idx``, or None when the set is full."""
        ways = self.addrs[set_idx]
        for w in range(self.assoc):
            if ways[w] is None:
                return w
        return None

    def install(self, set_idx: int, way: int, line_addr: int) -> None:
        """Place ``line_addr`` into ``(set_idx, way)``; the way must be free."""
        ways = self.addrs[set_idx]
        if ways[way] is not None:
            raise ValueError(
                f"install into occupied way {way} of set {set_idx} "
                f"(holds {ways[way]:#x})"
            )
        ways[way] = line_addr
        self.maps[set_idx][line_addr] = way

    def evict(self, set_idx: int, way: int) -> int:
        """Remove and return the line address stored in ``(set_idx, way)``."""
        ways = self.addrs[set_idx]
        addr = ways[way]
        if addr is None:
            raise ValueError(f"evict from empty way {way} of set {set_idx}")
        ways[way] = None
        del self.maps[set_idx][addr]
        return addr

    def valid_ways(self, set_idx: int) -> list:
        """Ways of ``set_idx`` currently holding a line."""
        ways = self.addrs[set_idx]
        return [w for w in range(self.assoc) if ways[w] is not None]

    def occupancy(self) -> int:
        """Total number of resident lines."""
        return sum(len(m) for m in self.maps)

    def resident_addrs(self):
        """Iterate over all resident line addresses."""
        for m in self.maps:
            yield from m
