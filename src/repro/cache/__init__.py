"""Cache substrate: set-associative stores, private caches, SLLC models."""

from .conventional import ConventionalLLC
from .llc_base import BaseLLC, LLCAccess
from .ncid import NCIDCache
from .private_cache import PrivateCache, PrivateHierarchy
from .vway import VWayCache
from .set_assoc import TagStore

__all__ = [
    "TagStore",
    "PrivateCache",
    "PrivateHierarchy",
    "BaseLLC",
    "LLCAccess",
    "ConventionalLLC",
    "NCIDCache",
    "VWayCache",
]
