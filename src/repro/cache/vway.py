"""The V-way cache [Qureshi, Thompson, Patt — ISCA 2005].

The other decoupled tag/data design the paper discusses (Section 6): the
tag array holds **twice** the entries of the data array (doubling each
set's ways), breaking the rigid set-to-data binding so a hot set can hold
more lines than its share of the data array — "demand-based associativity
via global replacement".

Contrast with the reuse cache:

* **allocation is non-selective** — every miss allocates tag *and* data, so
  the data array must equal the conventional capacity to avoid losses;
* a tag without data is simply *invalid*: reclaiming a data entry for
  another set invalidates the previous holder's tag entirely (no TO state,
  no reuse memory);
* data replacement is global Reuse Replacement (2-bit counters).

Structurally it reuses the decoupled fwd/rev pointer machinery of
:class:`repro.core.reuse_cache.ReuseCache` with a fully associative data
array, overriding allocation so data is assigned on every fill.
"""

from __future__ import annotations

import random

from ..cache.llc_base import LLCAccess
from ..core.reuse_cache import ReuseCache, _INV, _M, _S
from ..utils import require_power_of_two


class VWayCache(ReuseCache):
    """V-way SLLC: doubled tags, global data replacement, demand allocation."""

    kind = "vway"

    #: tag entries per data entry (the original evaluates 2x)
    tag_ratio = 2

    def __init__(
        self,
        data_lines: int,
        base_assoc: int = 16,
        num_cores: int = 8,
        rng: random.Random | None = None,
    ):
        require_power_of_two(data_lines, "data_lines")
        super().__init__(
            tag_lines=self.tag_ratio * data_lines,
            tag_assoc=self.tag_ratio * base_assoc,  # same sets as conventional
            data_lines=data_lines,
            data_assoc="full",
            num_cores=num_cores,
            tag_policy="nru",
            data_policy="reuse_repl",
            rng=rng,
        )

    # -- allocation: every miss gets tag AND data ------------------------------------
    def _tag_miss(self, addr, set_idx, core, now) -> LLCAccess:
        self.tag_misses += 1
        self.core_dram_fetches[core] += 1
        writebacks = ()
        inclusion_invals = ()
        way = self.tags.free_way(set_idx)
        if way is None:
            # Set full: evict a tag from this set (frees its data too).
            way, writebacks, inclusion_invals = self._evict_tag(set_idx, now)
        self.tags.install(set_idx, way, addr)
        self._state[set_idx][way] = _S
        self._fwd[set_idx][way] = -1
        self._to_count[set_idx][way] = 0
        self.directory.set_only(set_idx, way, core)
        self.tag_repl.on_fill(set_idx, way, core)
        self.tag_fills += 1
        wb2, invals2 = self._allocate_data_globally(addr, set_idx, way, now)
        return LLCAccess(
            "dram",
            dram_reads=1,
            writebacks=writebacks + wb2,
            inclusion_invals=inclusion_invals + invals2,
        )

    def _allocate_data_globally(self, addr, tag_set, tag_way, now):
        """Assign a data entry; a global victim's *tag* is invalidated."""
        dset = addr & self._dmask  # 0: fully associative
        rev = self._rev[dset]
        writebacks = ()
        inclusion_invals = ()
        dway = None
        for w in range(self.data_assoc):
            if rev[w] is None:
                dway = w
                break
        if dway is None:
            dway = self.data_repl.victim(dset, list(range(self.data_assoc)))
            writebacks, inclusion_invals = self._invalidate_data_holder(dset, dway, now)
        rev[dway] = (tag_set, tag_way)
        self._d_addr[dset][dway] = addr
        self._d_dirty[dset][dway] = False
        self._fwd[tag_set][tag_way] = dway
        self.data_repl.on_fill(dset, dway)
        self.data_fills += 1
        self.recorder.on_fill(addr, now)
        return writebacks, inclusion_invals

    def _invalidate_data_holder(self, dset, dway, now):
        """Reclaim a data entry: the owning tag becomes fully invalid."""
        tag_set, tag_way = self._rev[dset][dway]
        victim_addr = self._d_addr[dset][dway]
        self.recorder.on_evict(victim_addr, now)
        writebacks = (victim_addr,) if self._d_dirty[dset][dway] else ()
        self._rev[dset][dway] = None
        self._d_addr[dset][dway] = None
        self._d_dirty[dset][dway] = False
        self.data_repl.on_invalidate(dset, dway)
        # invalidate the tag (V-way has no tag-only residency)
        self.tags.evict(tag_set, tag_way)
        sharers = self.directory.sharers(tag_set, tag_way)
        inclusion_invals = tuple((c, victim_addr) for c in sharers)
        self.directory.clear(tag_set, tag_way)
        self._state[tag_set][tag_way] = _INV
        self._fwd[tag_set][tag_way] = -1
        self.tag_repl.on_invalidate(tag_set, tag_way)
        return writebacks, inclusion_invals

    def _evict_tag(self, set_idx, now):
        """In-set tag eviction (set ran out of virtual ways)."""
        directory = self.directory
        candidates = self.tags.valid_ways(set_idx)
        unshared = [w for w in candidates if not directory.in_private_caches(set_idx, w)]
        way = self.tag_repl.victim(set_idx, unshared if unshared else candidates)
        victim_addr = self.tags.evict(set_idx, way)
        writebacks = ()
        if self._fwd[set_idx][way] >= 0:
            dset = victim_addr & self._dmask
            dway = self._fwd[set_idx][way]
            writebacks = (victim_addr,) if self._d_dirty[dset][dway] else ()
            self.recorder.on_evict(victim_addr, now)
            self._rev[dset][dway] = None
            self._d_addr[dset][dway] = None
            self._d_dirty[dset][dway] = False
            self.data_repl.on_invalidate(dset, dway)
        sharers = directory.sharers(set_idx, way)
        inclusion_invals = tuple((c, victim_addr) for c in sharers)
        directory.clear(set_idx, way)
        self._state[set_idx][way] = _INV
        self._fwd[set_idx][way] = -1
        self.tag_repl.on_invalidate(set_idx, way)
        return way, writebacks, inclusion_invals

    def prefetch(self, addr: int, core: int, now: int) -> LLCAccess:
        """V-way prefetch: a non-selective design allocates on prefetch too
        (no tag-only residency exists), without promoting replacement state."""
        self.prefetches += 1
        set_idx, way = self.tags.lookup(addr)
        if way is not None:
            self.directory.add(set_idx, way, core)
            return LLCAccess("llc")
        res = self._tag_miss(addr, set_idx, core, now)
        self.tag_misses -= 1  # not a demand miss
        self.core_dram_fetches[core] -= 1
        return res

    def check_no_tag_only_states(self) -> bool:
        """V-way invariant: every valid tag has a data entry."""
        for tset in range(self.tags.num_sets):
            for tway in range(self.tag_assoc):
                if self.tags.addrs[tset][tway] is not None:
                    if self._fwd[tset][tway] < 0:
                        return False
                    if self._state[tset][tway] not in (_S, _M):
                        return False
        return True
