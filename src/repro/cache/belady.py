"""Belady's OPT: offline optimal replacement for bound studies.

OPT evicts the resident line whose next use lies furthest in the future.
It is not implementable in hardware (it needs the future) but bounds what
any replacement policy — including the reuse cache's selective allocation —
could achieve at a given capacity.  The bound here is *fully associative*
OPT, which is an upper bound for any set-associative organisation of the
same capacity.

The implementation is the standard two-pass algorithm: a reverse scan
precomputes each access's next-use index, then a forward scan keeps the
resident set in a lazy max-heap keyed by next use.  Complexity is
O(N log C) for N accesses and capacity C.
"""

from __future__ import annotations

import heapq


def next_use_indices(trace) -> list:
    """For each access, the index of the next access to the same line
    (``len(trace)`` when there is none)."""
    n = len(trace)
    next_use = [n] * n
    last_seen = {}
    for i in range(n - 1, -1, -1):
        addr = trace[i]
        next_use[i] = last_seen.get(addr, n)
        last_seen[addr] = i
    return next_use


def belady_hits(trace, capacity: int) -> int:
    """Number of hits OPT achieves on ``trace`` with ``capacity`` lines."""
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    n = len(trace)
    next_use = next_use_indices(trace)
    resident = {}  # addr -> current next-use index
    heap = []  # (-next_use, addr), lazily invalidated
    hits = 0
    for i, addr in enumerate(trace):
        nu = next_use[i]
        if addr in resident:
            hits += 1
            resident[addr] = nu
            heapq.heappush(heap, (-nu, addr))
            continue
        if len(resident) >= capacity:
            # A line never used again (next use == n) is always the top of
            # the heap if one exists; otherwise the furthest-future line.
            while True:
                neg_nu, victim = heapq.heappop(heap)
                if resident.get(victim) == -neg_nu:
                    break  # a live heap entry
            # Bypass optimisation: if the incoming line's next use is even
            # further than the chosen victim's, keeping the victim is at
            # least as good (classic OPT admits bypass at the LLC).
            if -neg_nu < nu:
                resident[victim] = -neg_nu
                heapq.heappush(heap, (neg_nu, victim))
                continue
            del resident[victim]
        resident[addr] = nu
        heapq.heappush(heap, (-nu, addr))
    return hits


def belady_hit_ratio(trace, capacity: int) -> float:
    """OPT hit ratio on ``trace`` (0.0 for an empty trace)."""
    if not len(trace):
        return 0.0
    return belady_hits(trace, capacity) / len(trace)
