"""Private per-core caches: a write-back L1/L2 pair with L1 ⊆ L2 inclusion.

The paper's cores each have a 32 KB 4-way L1 (data side modelled; the
instruction side is not simulated because the traces carry data references
only) and a 256 KB 8-way unified L2, both LRU.  :class:`PrivateHierarchy`
bundles the two levels and reports the events the SLLC directory needs:

* L2 evictions (the paper's PUTS/PUTX eviction notifications), and
* whether a store needs a coherence upgrade (the line was held clean).

Dirty data never silently disappears: L1 victims mark the (inclusive) L2
copy dirty, L2 victims surface as ``(addr, dirty)`` pairs, and invalidations
return the merged dirty state of both levels.
"""

from __future__ import annotations

from ..utils import require_power_of_two
from .set_assoc import TagStore


class PrivateCache:
    """One write-back, write-allocate, LRU set-associative cache level."""

    def __init__(self, num_lines: int, assoc: int, name: str = "L?"):
        require_power_of_two(num_lines, f"{name} num_lines")
        if num_lines % assoc:
            raise ValueError(f"{name}: {num_lines} lines not divisible by {assoc} ways")
        self.name = name
        self.num_lines = num_lines
        self.assoc = assoc
        self.store = TagStore(num_lines // assoc, assoc)
        ns = self.store.num_sets
        self._dirty = [[False] * assoc for _ in range(ns)]
        self._stamp = [[0] * assoc for _ in range(ns)]
        self._clock = 0

    # -- fast paths -----------------------------------------------------------
    def lookup(self, addr: int):
        """Touch and return the way of ``addr``; None on miss."""
        set_idx, way = self.store.lookup(addr)
        if way is not None:
            self._clock += 1
            self._stamp[set_idx][way] = self._clock
        return way

    def probe(self, addr: int):
        """Non-touching presence check; returns the way or None."""
        return self.store.lookup(addr)[1]

    def is_dirty(self, addr: int) -> bool:
        """True when ``addr`` is resident and dirty."""
        set_idx, way = self.store.lookup(addr)
        return way is not None and self._dirty[set_idx][way]

    def set_dirty(self, addr: int) -> None:
        """Mark a resident line dirty; raises KeyError when absent."""
        set_idx, way = self.store.lookup(addr)
        if way is None:
            raise KeyError(f"{self.name}: set_dirty on absent line {addr:#x}")
        self._dirty[set_idx][way] = True

    def fill(self, addr: int, dirty: bool):
        """Install ``addr``; returns the evicted ``(addr, dirty)`` or None."""
        set_idx = self.store.set_of(addr)
        if self.store.find(set_idx, addr) is not None:
            raise ValueError(f"{self.name}: fill of already-present line {addr:#x}")
        way = self.store.free_way(set_idx)
        evicted = None
        if way is None:
            stamps = self._stamp[set_idx]
            way = min(range(self.assoc), key=lambda w: stamps[w])
            evicted = (self.store.evict(set_idx, way), self._dirty[set_idx][way])
        self.store.install(set_idx, way, addr)
        self._dirty[set_idx][way] = dirty
        self._clock += 1
        self._stamp[set_idx][way] = self._clock
        return evicted

    def invalidate(self, addr: int):
        """Remove ``addr`` if present; returns ``(was_present, was_dirty)``."""
        set_idx, way = self.store.lookup(addr)
        if way is None:
            return False, False
        dirty = self._dirty[set_idx][way]
        self.store.evict(set_idx, way)
        self._dirty[set_idx][way] = False
        self._stamp[set_idx][way] = 0
        return True, dirty

    def resident_addrs(self):
        """Iterate over resident line addresses."""
        return self.store.resident_addrs()


class PrivateHierarchy:
    """The private L1+L2 stack of one core (L1 inclusive in L2)."""

    def __init__(self, l1_lines: int, l1_assoc: int, l2_lines: int, l2_assoc: int):
        if l2_lines < l1_lines:
            raise ValueError("L2 must be at least as large as L1 for inclusion")
        self.l1 = PrivateCache(l1_lines, l1_assoc, "L1")
        self.l2 = PrivateCache(l2_lines, l2_assoc, "L2")

    def access(self, addr: int, is_write: bool):
        """Look up ``addr``.

        Returns ``(level, needs_upgrade, evictions)`` where ``level`` is
        ``"l1"``, ``"l2"`` or ``"miss"``; ``needs_upgrade`` is True when a
        store hit a line held clean (an UPG must be sent to the SLLC before
        the write proceeds — the caller marks the line dirty afterwards via
        :meth:`mark_written`); ``evictions`` lists ``(addr, dirty)`` L2
        victims created by an L2→L1 refill, which the caller must report to
        the SLLC directory.
        """
        l1 = self.l1
        way = l1.lookup(addr)
        if way is not None:
            set_idx = l1.store.set_of(addr)
            if is_write and not l1._dirty[set_idx][way]:
                return "l1", True, ()
            return "l1", False, ()

        l2_way = self.l2.lookup(addr)
        if l2_way is not None:
            set_idx = self.l2.store.set_of(addr)
            dirty = self.l2._dirty[set_idx][l2_way]
            needs_upgrade = is_write and not dirty
            self._refill_l1(addr, dirty=dirty or (is_write and not needs_upgrade))
            return "l2", needs_upgrade, ()
        # A write miss is a GETX at the SLLC, not an upgrade.
        return "miss", False, ()

    def _refill_l1(self, addr: int, dirty: bool) -> None:
        victim = self.l1.fill(addr, dirty)
        if victim is not None:
            v_addr, v_dirty = victim
            if v_dirty:
                # Inclusion guarantees the L2 copy exists.
                self.l2.set_dirty(v_addr)

    def _fill_l2(self, addr: int):
        """Install into L2, returning PUTS/PUTX-style evictions."""
        evictions = []
        victim = self.l2.fill(addr, dirty=False)
        if victim is not None:
            v_addr, v_dirty = victim
            present, l1_dirty = self.l1.invalidate(v_addr)
            evictions.append((v_addr, v_dirty or (present and l1_dirty)))
        return evictions

    def fill(self, addr: int, dirty: bool):
        """Install a line arriving from the SLLC/memory into L2 then L1.

        Returns the list of L2 evictions ``(addr, dirty)`` to report to the
        SLLC (PUTS/PUTX).
        """
        evictions = self._fill_l2(addr)
        self._refill_l1(addr, dirty)
        return evictions

    def prefetch_fill(self, addr: int):
        """Install a prefetched line into L2 only (not L1).

        No-op when the line is already present.  Returns L2 evictions to
        report to the SLLC.
        """
        if self.l2.probe(addr) is not None:
            return []
        return self._fill_l2(addr)

    def mark_written(self, addr: int) -> None:
        """Record a completed store (after any upgrade): L1 copy goes dirty."""
        self.l1.set_dirty(addr)

    def invalidate(self, addr: int):
        """Back-invalidate ``addr`` from both levels.

        Returns ``(was_present, was_dirty)`` with dirtiness merged across
        levels, so the caller can write the line back if needed.
        """
        p1, d1 = self.l1.invalidate(addr)
        p2, d2 = self.l2.invalidate(addr)
        return (p1 or p2), (d1 or d2)

    def contains(self, addr: int) -> bool:
        """Presence check across both levels (no LRU update)."""
        return self.l2.probe(addr) is not None or self.l1.probe(addr) is not None

    def check_inclusion(self) -> bool:
        """Invariant check (used by tests): every L1 line is in L2."""
        l2_resident = set(self.l2.resident_addrs())
        return all(a in l2_resident for a in self.l1.resident_addrs())
