"""NCID: non-inclusive cache, inclusive directory [Zhao et al., CF 2010].

The comparison architecture of paper Section 5.5.  Like the reuse cache,
NCID decouples tags from data to keep an inclusive directory over a smaller
data array, but it differs in three ways that the paper's Figure 9 exposes:

* **geometry** — tag and data arrays have the *same number of sets*; a
  smaller data array therefore means fewer data ways per set (e.g. an
  8 MBeq, 16-way tag array with a 1 MB data array has only 2 data ways per
  set), so data conflicts rise as the data array shrinks;
* **allocation** — fills use *set dueling per thread* between a normal mode
  (always allocate tag+data, MRU insertion) and a selective mode that
  allocates tag+data for a random 5 % of fills and tag-only (inserted at the
  LRU position) for the rest — reuse is not consulted;
* **replacement** — plain LRU for both arrays, with no protection of
  private-resident or reused lines.

A re-reference to a tag-only line allocates a data entry (fetching from
memory or a peer), which is what lets NCID operate with a downsized data
array at all.  Structurally this class reuses the decoupled tag/data
machinery of :class:`repro.core.reuse_cache.ReuseCache` and overrides the
allocation and tag-victim policies.
"""

from __future__ import annotations

import random

from ..cache.llc_base import LLCAccess
from ..core.reuse_cache import ReuseCache, _INV, _S, _TO
from ..obs.tracing import FILL, TAG_ONLY_ALLOC, TAG_REPL
from ..utils import require_power_of_two


class NCIDCache(ReuseCache):
    """NCID SLLC with per-thread set dueling between normal/selective fill."""

    kind = "ncid"

    #: fraction of fills allocated tag+data in selective mode
    selective_fill_rate = 0.05
    psel_bits = 10

    def __init__(
        self,
        tag_lines: int,
        tag_assoc: int,
        data_lines: int,
        num_cores: int = 8,
        rng: random.Random | None = None,
    ):
        require_power_of_two(tag_lines, "tag_lines")
        tag_sets = tag_lines // tag_assoc
        if data_lines % tag_sets:
            raise ValueError(
                f"NCID needs equal set counts: {data_lines} data lines do not "
                f"spread over {tag_sets} sets"
            )
        data_assoc = data_lines // tag_sets
        super().__init__(
            tag_lines,
            tag_assoc,
            data_lines,
            data_assoc=data_assoc,
            num_cores=num_cores,
            tag_policy="lru",
            data_policy="lru",
            rng=rng,
        )
        if self.data_sets != tag_sets:
            raise AssertionError("NCID geometry must share the tag set count")
        self._psel_max = (1 << self.psel_bits) - 1
        self._psel = [self._psel_max // 2] * num_cores
        self._period = max(2 * num_cores, 4)
        # mode statistics
        self.normal_fills = 0
        self.selective_fills = 0

    # -- set dueling -----------------------------------------------------------
    def _leader_role(self, set_idx: int, thread: int) -> str:
        slot = set_idx % self._period
        if slot == 2 * thread:
            return "normal"
        if slot == 2 * thread + 1:
            return "selective"
        return "follower"

    def _uses_selective(self, set_idx: int, thread: int) -> bool:
        role = self._leader_role(set_idx, thread)
        if role == "normal":
            return False
        if role == "selective":
            return True
        # High PSEL = normal mode missed more, so selective wins.
        return self._psel[thread] > self._psel_max // 2

    def _duel_on_miss(self, set_idx: int, thread: int) -> None:
        role = self._leader_role(set_idx, thread)
        if role == "normal" and self._psel[thread] < self._psel_max:
            self._psel[thread] += 1
        elif role == "selective" and self._psel[thread] > 0:
            self._psel[thread] -= 1

    # -- allocation --------------------------------------------------------------
    def _tag_miss(self, addr, set_idx, core, now) -> LLCAccess:
        self.tag_misses += 1
        self.core_dram_fetches[core] += 1
        self._duel_on_miss(set_idx, core)

        selective = self._uses_selective(set_idx, core)
        allocate_data = (not selective) or (self.rng.random() < self.selective_fill_rate)

        writebacks = ()
        inclusion_invals = ()
        way = self.tags.free_way(set_idx)
        if way is None:
            way, writebacks, inclusion_invals = self._evict_tag(set_idx, now)
        self.tags.install(set_idx, way, addr)
        self._fwd[set_idx][way] = -1
        self._to_count[set_idx][way] = 0
        self.directory.set_only(set_idx, way, core)
        self.tag_fills += 1

        if allocate_data:
            self.normal_fills += 1
            self._state[set_idx][way] = _S
            self.tag_repl.on_fill(set_idx, way, core)  # MRU insert
            writebacks = writebacks + tuple(self._allocate_data(addr, set_idx, way, now))
        else:
            self.selective_fills += 1
            self._state[set_idx][way] = _TO
            self.tag_repl.fill_at_lru(set_idx, way)  # LRU-position insert
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                FILL if allocate_data else TAG_ONLY_ALLOC,
                ts=now, pid=self.trace_pid, tid=core,
                args={"addr": addr, "selective_mode": selective},
            )
        return LLCAccess(
            "dram",
            dram_reads=1,
            writebacks=writebacks,
            inclusion_invals=inclusion_invals,
        )

    def _evict_tag(self, set_idx, now):
        """Plain-LRU tag eviction: no protection of private-resident lines."""
        directory = self.directory
        candidates = self.tags.valid_ways(set_idx)
        way = self.tag_repl.victim(set_idx, candidates)
        victim_addr = self.tags.evict(set_idx, way)
        writebacks = ()
        had_data = self._fwd[set_idx][way] >= 0
        if had_data:
            dset = victim_addr & self._dmask
            writebacks = self._evict_data(dset, self._fwd[set_idx][way], now)
        sharers = directory.sharers(set_idx, way)
        inclusion_invals = tuple((c, victim_addr) for c in sharers)
        directory.clear(set_idx, way)
        self._state[set_idx][way] = _INV
        self._fwd[set_idx][way] = -1
        self._to_count[set_idx][way] = 0
        self.tag_repl.on_invalidate(set_idx, way)
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                TAG_REPL, ts=now, pid=self.trace_pid,
                args={"addr": victim_addr, "had_data": had_data},
            )
        return way, writebacks, inclusion_invals

    def stats(self) -> dict:
        """Counters plus NCID's per-mode fill counts."""
        base = super().stats()
        base.update(
            {"normal_fills": self.normal_fills, "selective_fills": self.selective_fills}
        )
        return base
