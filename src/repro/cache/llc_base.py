"""Common interface of all shared last-level cache models.

The CMP system drives every SLLC variant (conventional, reuse cache, NCID)
through three entry points:

* :meth:`BaseLLC.access` — a demand GETS/GETX from a core whose private
  caches missed;
* :meth:`BaseLLC.upgrade` — an UPG from a core writing a clean private copy;
* :meth:`BaseLLC.notify_private_eviction` — a PUTS/PUTX when a private L2
  evicts a line.

``access`` returns an :class:`LLCAccess` describing where the data came from
and which side effects the system must apply (DRAM traffic, coherence
invalidations of the same line in other cores, and inclusion-driven
back-invalidations of SLLC victim lines).

Addresses given to an LLC are *bank-local* line addresses: the system strips
the bank-interleaving bits before calling in, so each bank instance is an
independent cache over its own address space.
"""

from __future__ import annotations

import random

from ..obs.tracing import NULL_TRACER


class LLCAccess:
    """Outcome of one SLLC access (see module docstring)."""

    __slots__ = ("source", "dram_reads", "writebacks", "coherence_invals", "inclusion_invals")

    def __init__(
        self,
        source: str,
        dram_reads: int = 0,
        writebacks=(),
        coherence_invals=(),
        inclusion_invals=(),
    ):
        #: 'llc' (served by the data array), 'peer' (cache-to-cache from
        #: another core's private cache) or 'dram'
        self.source = source
        self.dram_reads = dram_reads
        #: line addresses of writebacks the SLLC itself issues (dirty victims)
        self.writebacks = writebacks
        #: core ids that must invalidate their private copy of the
        #: *requested* line (GETX/UPG)
        self.coherence_invals = coherence_invals
        #: (core, line_addr) private copies of SLLC *victim* lines that must
        #: be back-invalidated to preserve inclusion
        self.inclusion_invals = inclusion_invals

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"LLCAccess({self.source}, rd={self.dram_reads}, wb={self.writebacks}, "
            f"coh={self.coherence_invals}, incl={self.inclusion_invals})"
        )


class _NullRecorder:
    """Recorder stub used when no generation tracking is requested."""

    __slots__ = ()

    def on_fill(self, addr, now):
        pass

    def on_hit(self, addr, now):
        pass

    def on_evict(self, addr, now):
        pass


NULL_RECORDER = _NullRecorder()


class BaseLLC:
    """Base class holding the statistics shared by all SLLC models."""

    kind = "base"

    def __init__(self, num_cores: int, rng: random.Random | None = None):
        self.num_cores = num_cores
        self.rng = rng if rng is not None else random.Random(0)
        #: generation recorder for liveness / hit-distribution metrics;
        #: replaced via :meth:`attach_recorder`
        self.recorder = NULL_RECORDER
        #: event tracer (:mod:`repro.obs.tracing`); disabled by default so
        #: hot paths only pay an ``if tr.enabled`` branch
        self.tracer = NULL_TRACER
        #: Chrome-trace process lane for this cache's events (the bank index)
        self.trace_pid = 0
        # aggregate counters
        self.accesses = 0
        self.data_hits = 0  # served by the SLLC data array
        self.tag_misses = 0  # line absent even from the tag array
        self.upgrades = 0
        self.prefetches = 0
        self.tag_fills = 0
        self.data_fills = 0
        # per-core demand misses (accesses that had to touch DRAM)
        self.core_accesses = [0] * num_cores
        self.core_dram_fetches = [0] * num_cores

    def attach_recorder(self, recorder) -> None:
        """Install a generation recorder (see :mod:`repro.metrics`)."""
        self.recorder = recorder

    def attach_tracer(self, tracer, pid: int = 0) -> None:
        """Install an event tracer; ``pid`` becomes the trace process lane."""
        self.tracer = tracer
        self.trace_pid = pid

    # -- interface -------------------------------------------------------------
    def access(self, addr: int, core: int, is_write: bool, now: int) -> LLCAccess:
        """Demand GETS/GETX; subclasses implement the organisation."""
        raise NotImplementedError

    def upgrade(self, addr: int, core: int) -> tuple:
        """Handle an UPG; returns core ids to invalidate."""
        raise NotImplementedError

    def prefetch(self, addr: int, core: int, now: int) -> LLCAccess:
        """Handle a prefetch GETS on behalf of ``core``.

        Unlike a demand access, a prefetch must not *promote* replacement
        state: the paper (Section 6) assigns prefetched lines a priority as
        low as non-reused data.  Subclasses override; the default treats it
        as unsupported.
        """
        raise NotImplementedError

    def notify_private_eviction(self, addr: int, core: int, dirty: bool):
        """Handle a PUTS/PUTX; returns line addresses to write back to DRAM."""
        raise NotImplementedError

    # -- introspection -----------------------------------------------------------
    def resident_data_lines(self):
        """Iterable of line addresses currently held in the data array."""
        raise NotImplementedError

    def stats(self) -> dict:
        """Aggregate counters of this SLLC instance."""
        return {
            "accesses": self.accesses,
            "data_hits": self.data_hits,
            "tag_misses": self.tag_misses,
            "upgrades": self.upgrades,
            "tag_fills": self.tag_fills,
            "data_fills": self.data_fills,
        }
