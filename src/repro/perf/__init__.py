"""repro.perf — the performance observatory's front door.

The paper's claim is quantitative, so the reproduction needs a performance
record as trustworthy as its correctness record.  This package turns the
raw measurements the rest of the repo produces — per-cell wall/CPU/RSS
accounting from :mod:`repro.runner`, phase timings and collapsed stacks
from :mod:`repro.obs.prof` — into *baselines*: schema-versioned
``BENCH_perf.json`` documents that are recorded on one commit, committed
next to the code, and machine-checked against later commits.

* :mod:`repro.perf.suites` — named suites of registry experiments with
  pinned :class:`~repro.experiments.common.ExperimentParams`, so every
  recording of ``smoke`` measures exactly the same cells;
* :mod:`repro.perf.baseline` — record a suite into a baseline document
  (machine fingerprint, code fingerprint, per-cell resources, per-phase
  timings) and compare two documents with noise-aware thresholds;
* :mod:`repro.perf.cli` — ``repro perf record | compare | trend``; compare
  exits nonzero on regression, which is what the CI ``perf-smoke`` job
  gates on.

Recordings never use the result cache: a replayed cell costs milliseconds
and would report the *cache's* performance, not the simulator's.
"""

from __future__ import annotations

from .baseline import (
    PERF_SCHEMA,
    compare_baselines,
    format_comparison,
    load_baseline,
    machine_fingerprint,
    record_suite,
    write_baseline,
)
from .suites import PerfSuite, get_suite, suite_names

__all__ = [
    "PERF_SCHEMA",
    "PerfSuite",
    "get_suite",
    "suite_names",
    "machine_fingerprint",
    "record_suite",
    "write_baseline",
    "load_baseline",
    "compare_baselines",
    "format_comparison",
]
