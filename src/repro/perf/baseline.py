"""Record and compare schema-versioned performance baselines.

A baseline (``BENCH_perf.json``) is one recording of a
:class:`~repro.perf.suites.PerfSuite`: for every experiment, the per-cell
resource accounts the runner measured (wall/CPU seconds, peak RSS,
refs/sec) plus the merged phase table, stamped with the machine and code
fingerprints that make the numbers interpretable later.

Comparison is **noise-aware**: a cell only regresses when its wall time
exceeds the baseline by *both* a relative factor and an absolute floor.
The relative threshold absorbs proportional host noise (frequency scaling,
co-tenancy); the absolute floor keeps microsecond-scale cells — where a
single scheduler hiccup is a huge relative change — from crying wolf.
Cross-machine comparisons are explicitly supported with generous
thresholds (the CI gate), and flagged in the report via the machine
fingerprint.

Recording never touches the result cache: replayed cells would measure the
cache, not the simulator.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import asdict

from ..obs.logging import get_logger
from ..obs.prof import clock, merge_phase_tables
from ..runner import Runner, code_fingerprint
from .suites import PerfSuite

log = get_logger(__name__)

#: bump on incompatible changes to the baseline document layout
PERF_SCHEMA = 1

#: default noise thresholds (local same-machine comparisons)
REL_THRESHOLD = 0.5
ABS_FLOOR_S = 0.05


def machine_fingerprint() -> dict:
    """Identity of the recording host, embedded in every baseline."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def record_suite(suite: PerfSuite, parallel: int = 0,
                 progress=None) -> dict:
    """Run every experiment of ``suite`` uncached and account each cell.

    ``parallel`` fans cells out over worker processes (resources are still
    measured inside the executing process); ``progress`` is forwarded to
    each :class:`~repro.runner.Runner`.
    """
    experiments = {}
    total_wall = total_cpu = 0.0
    total_refs = 0
    peak_rss = 0
    for spec in suite.specs():
        runner = Runner(parallel=parallel, cache=None,
                        profile_phases=True, progress=progress)
        start = clock()
        spec.execute(suite.params, runner=runner)
        wall_s = clock() - start
        stats = runner.stats
        phases = merge_phase_tables(
            cell.get("phases", {}) for cell in stats.cells
        )
        experiments[spec.name] = {
            "wall_s": wall_s,
            "compute_s": stats.seconds,
            "cpu_s": stats.cpu_seconds,
            "peak_rss_kb": stats.peak_rss_kb,
            "refs": stats.refs,
            "refs_per_s": stats.refs_per_s,
            "cells": [
                {k: v for k, v in cell.items() if k != "phases"}
                for cell in stats.cells
            ],
            "phases": phases,
        }
        total_wall += wall_s
        total_cpu += stats.cpu_seconds
        total_refs += stats.refs
        peak_rss = max(peak_rss, stats.peak_rss_kb)
        log.info("recorded %s: %.2fs wall, %d cell(s)",
                 spec.name, wall_s, len(stats.cells))
    return {
        "schema": PERF_SCHEMA,
        "suite": suite.name,
        "machine": machine_fingerprint(),
        "code_fingerprint": code_fingerprint(),
        "params": asdict(suite.params),
        "experiments": experiments,
        "totals": {
            "wall_s": total_wall,
            "cpu_s": total_cpu,
            "peak_rss_kb": peak_rss,
            "refs": total_refs,
            "refs_per_s": total_refs / total_wall if total_wall > 0 else 0.0,
        },
    }


# -- persistence ---------------------------------------------------------------


def write_baseline(path, baseline: dict) -> None:
    """Write ``baseline`` as an indented JSON document."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_baseline(path) -> dict:
    """Load and schema-check a baseline; ``ValueError`` on a bad document."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: baseline must be a JSON object")
    schema = doc.get("schema")
    if schema != PERF_SCHEMA:
        raise ValueError(
            f"{path}: unsupported baseline schema {schema!r} "
            f"(this build reads schema {PERF_SCHEMA})"
        )
    for key in ("suite", "machine", "code_fingerprint", "experiments",
                "totals"):
        if key not in doc:
            raise ValueError(f"{path}: baseline missing key {key!r}")
    return doc


# -- comparison ---------------------------------------------------------------


def _cell_walls(experiment: dict) -> dict:
    """label -> summed wall seconds for one experiment's cell list.

    Labels repeat when one experiment runs a configuration twice (or a
    parallel recording reorders completion), so walls aggregate by label —
    comparisons are order-independent.
    """
    walls: dict = {}
    for cell in experiment.get("cells", []):
        wall = cell.get("wall_s", cell.get("cached_wall_s", 0.0))
        walls[cell["label"]] = walls.get(cell["label"], 0.0) + wall
    return walls


def _regressed(base_s: float, cur_s: float, rel: float, floor: float) -> bool:
    return cur_s > base_s * (1.0 + rel) and cur_s - base_s > floor


def compare_baselines(
    base: dict,
    current: dict,
    rel_threshold: float = REL_THRESHOLD,
    abs_floor_s: float = ABS_FLOOR_S,
) -> dict:
    """Compare two baseline documents cell by cell.

    Returns a report dict whose ``"ok"`` is False when any cell (or an
    experiment's total compute) slowed past *both* thresholds.  Errors —
    different suites or parameters, i.e. documents that measure different
    work — land in ``"errors"`` and also clear ``"ok"``.
    """
    report = {
        "ok": True,
        "suite": current.get("suite"),
        "same_machine": base.get("machine") == current.get("machine"),
        "same_code": base.get("code_fingerprint")
        == current.get("code_fingerprint"),
        "thresholds": {"rel": rel_threshold, "abs_floor_s": abs_floor_s},
        "errors": [],
        "regressions": [],
        "improvements": [],
        "added": [],
        "removed": [],
        "checked": 0,
    }
    if base.get("suite") != current.get("suite"):
        report["errors"].append(
            f"suite mismatch: baseline {base.get('suite')!r} vs "
            f"current {current.get('suite')!r}"
        )
    if base.get("params") != current.get("params"):
        report["errors"].append(
            "parameter mismatch: the documents measure different work"
        )
    if report["errors"]:
        report["ok"] = False
        return report

    base_exps = base["experiments"]
    cur_exps = current["experiments"]
    for name in cur_exps:
        if name not in base_exps:
            report["added"].append(name)
    for name, base_exp in base_exps.items():
        if name not in cur_exps:
            report["removed"].append(name)
            continue
        cur_exp = cur_exps[name]
        base_walls = _cell_walls(base_exp)
        cur_walls = _cell_walls(cur_exp)
        for label in cur_walls:
            if label not in base_walls:
                report["added"].append(f"{name}:{label}")
        for label, base_s in base_walls.items():
            if label not in cur_walls:
                report["removed"].append(f"{name}:{label}")
                continue
            cur_s = cur_walls[label]
            report["checked"] += 1
            entry = {
                "experiment": name,
                "cell": label,
                "baseline_s": base_s,
                "current_s": cur_s,
                "ratio": cur_s / base_s if base_s > 0 else float("inf"),
            }
            if _regressed(base_s, cur_s, rel_threshold, abs_floor_s):
                report["regressions"].append(entry)
            elif _regressed(cur_s, base_s, rel_threshold, abs_floor_s):
                report["improvements"].append(entry)
        # the experiment's total compute catches distributed slowdowns
        # (every cell a little worse, none past its own threshold)
        base_total = base_exp.get("compute_s", 0.0)
        cur_total = cur_exp.get("compute_s", 0.0)
        report["checked"] += 1
        if _regressed(base_total, cur_total, rel_threshold, abs_floor_s):
            report["regressions"].append(
                {
                    "experiment": name,
                    "cell": "(total compute)",
                    "baseline_s": base_total,
                    "current_s": cur_total,
                    "ratio": cur_total / base_total
                    if base_total > 0 else float("inf"),
                }
            )
    if report["regressions"]:
        report["ok"] = False
    return report


def format_comparison(report: dict) -> str:
    """Human-readable comparison report (what ``repro perf compare`` prints)."""
    lines = []
    thresholds = report["thresholds"]
    lines.append(
        f"perf compare [{report.get('suite')}] — "
        f"threshold +{thresholds['rel'] * 100:.0f}% "
        f"and >{thresholds['abs_floor_s'] * 1e3:.0f}ms"
    )
    if not report["same_machine"]:
        lines.append("note: baseline recorded on a different machine")
    if report["same_code"]:
        lines.append("note: identical code fingerprints (same source tree)")
    for error in report["errors"]:
        lines.append(f"ERROR: {error}")
    for kind, rows in (("REGRESSION", report["regressions"]),
                       ("improvement", report["improvements"])):
        for row in rows:
            lines.append(
                f"{kind}: {row['experiment']}:{row['cell']} "
                f"{row['baseline_s']:.3f}s -> {row['current_s']:.3f}s "
                f"({row['ratio']:.2f}x)"
            )
    for name in report["added"]:
        lines.append(f"added (no baseline): {name}")
    for name in report["removed"]:
        lines.append(f"removed (stale baseline entry): {name}")
    verdict = "OK" if report["ok"] else "FAIL"
    lines.append(
        f"{verdict}: {report['checked']} comparison(s), "
        f"{len(report['regressions'])} regression(s), "
        f"{len(report['improvements'])} improvement(s)"
    )
    return "\n".join(lines)
