"""``repro perf`` — record, compare and trend performance baselines.

Three subcommands::

    repro perf record  --suite smoke --out BENCH_perf.json
    repro perf compare --baseline BENCH_perf.json      # exit 1 on regression
    repro perf trend   --history-dir .repro-perf

``record`` runs a named suite (see :mod:`repro.perf.suites`) uncached and
writes the baseline document; ``--flame`` adds a separate, untimed pass
under the deterministic sampler and ``--cprofile`` one under cProfile, so
the profilers never pollute the recorded numbers.  ``compare`` records the
current checkout (or takes ``--current FILE``) and diffs it against the
committed baseline with noise-aware thresholds — its exit code is the CI
gate.  ``trend`` tabulates a history directory of recordings over time.
"""

from __future__ import annotations

import argparse
import glob
import os
import sys

from ..obs.prof import DeterministicSampler, ProfileSession
from .baseline import (
    ABS_FLOOR_S,
    REL_THRESHOLD,
    compare_baselines,
    format_comparison,
    load_baseline,
    record_suite,
    write_baseline,
)
from .suites import get_suite, suite_names

#: first-word spellings dispatched here by ``repro.__main__``
PERF_COMMANDS = ("perf",)

DEFAULT_BASELINE = "BENCH_perf.json"
DEFAULT_HISTORY_DIR = ".repro-perf"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="Performance baselines: record, compare, trend.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="record a suite into a baseline")
    rec.add_argument("--suite", default="smoke", choices=suite_names(),
                     help="named suite to record (default: smoke)")
    rec.add_argument("--out", default=DEFAULT_BASELINE, metavar="FILE",
                     help=f"baseline file to write (default: "
                          f"{DEFAULT_BASELINE})")
    rec.add_argument("--parallel", type=int, default=0, metavar="N",
                     help="worker processes for the recording run")
    rec.add_argument("--flame", metavar="FILE",
                     help="also write collapsed stacks from a separate "
                          "deterministic-sampler pass")
    rec.add_argument("--sample-period", type=int, default=997,
                     help="sampler trigger: one sample per N call events")
    rec.add_argument("--cprofile", metavar="FILE",
                     help="also write pstats rows (JSON) from a separate "
                          "cProfile pass")
    rec.add_argument("--history-dir", metavar="DIR", default=None,
                     help="also append the recording to DIR as "
                          "perf-NNNN.json (for 'repro perf trend')")

    cmp_ = sub.add_parser("compare",
                          help="compare current performance to a baseline")
    cmp_.add_argument("--baseline", default=DEFAULT_BASELINE, metavar="FILE",
                      help=f"committed baseline (default: {DEFAULT_BASELINE})")
    cmp_.add_argument("--current", metavar="FILE", default=None,
                      help="compare this recording instead of recording "
                           "the current checkout now")
    cmp_.add_argument("--parallel", type=int, default=0, metavar="N",
                      help="worker processes for the fresh recording")
    cmp_.add_argument("--rel-threshold", type=float, default=REL_THRESHOLD,
                      metavar="FRAC",
                      help="relative slowdown tolerated before a cell "
                           "regresses (default: %(default)s)")
    cmp_.add_argument("--abs-floor-s", type=float, default=ABS_FLOOR_S,
                      metavar="SECONDS",
                      help="absolute slowdown a regression must also exceed "
                           "(default: %(default)s)")

    trend = sub.add_parser("trend",
                           help="tabulate recordings in a history directory")
    trend.add_argument("--history-dir", default=DEFAULT_HISTORY_DIR,
                       metavar="DIR",
                       help=f"directory of perf-NNNN.json recordings "
                            f"(default: {DEFAULT_HISTORY_DIR})")
    return parser


# -- record -------------------------------------------------------------------


def _next_history_path(history_dir: str) -> str:
    existing = glob.glob(os.path.join(history_dir, "perf-*.json"))
    return os.path.join(history_dir, f"perf-{len(existing):04d}.json")


def _progress(done, total, cell, status, seconds):
    print(f"  [{done}/{total}] {cell.label} ({status}, {seconds:.2f}s)",
          file=sys.stderr)


def cmd_record(args) -> int:
    suite = get_suite(args.suite)
    print(f"recording suite {suite.name!r}: {suite.title}", file=sys.stderr)
    baseline = record_suite(suite, parallel=args.parallel,
                            progress=_progress)
    write_baseline(args.out, baseline)
    totals = baseline["totals"]
    print(f"wrote {args.out}: {len(baseline['experiments'])} experiment(s), "
          f"{totals['wall_s']:.2f}s wall, "
          f"{totals['refs_per_s']:.0f} refs/s")
    if args.history_dir:
        os.makedirs(args.history_dir, exist_ok=True)
        history_path = _next_history_path(args.history_dir)
        write_baseline(history_path, baseline)
        print(f"wrote {history_path}")
    if args.flame:
        _write_flame(suite, args.flame, args.sample_period)
    if args.cprofile:
        _write_cprofile(suite, args.cprofile)
    return 0


def _run_suite_inline(suite) -> None:
    """One serial, uncached, unmeasured pass over the suite (profiler food)."""
    from ..runner import Runner

    for spec in suite.specs():
        spec.execute(suite.params, runner=Runner(parallel=0, cache=None))


def _write_flame(suite, path: str, period: int) -> None:
    """Separate sampler pass: the hook must not taint the recorded numbers."""
    sampler = DeterministicSampler(period=period)
    with sampler:
        _run_suite_inline(suite)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(sampler.collapsed())
    print(f"wrote {path}: {sampler.samples} sample(s) "
          f"({sampler.calls} call events, period {period})")


def _write_cprofile(suite, path: str) -> None:
    session = ProfileSession()
    session.run(_run_suite_inline, suite)
    session.write_json(path)
    print(f"wrote {path}")


# -- compare ------------------------------------------------------------------


def cmd_compare(args) -> int:
    try:
        base = load_baseline(args.baseline)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline!r}; record one with "
              f"'repro perf record --out {args.baseline}'", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"bad baseline: {exc}", file=sys.stderr)
        return 2
    if args.current:
        try:
            current = load_baseline(args.current)
        except (FileNotFoundError, ValueError) as exc:
            print(f"bad --current recording: {exc}", file=sys.stderr)
            return 2
    else:
        suite = get_suite(base["suite"])
        print(f"recording current checkout (suite {suite.name!r})...",
              file=sys.stderr)
        current = record_suite(suite, parallel=args.parallel,
                               progress=_progress)
    report = compare_baselines(
        base, current,
        rel_threshold=args.rel_threshold,
        abs_floor_s=args.abs_floor_s,
    )
    print(format_comparison(report))
    return 0 if report["ok"] else 1


# -- trend --------------------------------------------------------------------


def cmd_trend(args) -> int:
    paths = sorted(glob.glob(os.path.join(args.history_dir, "perf-*.json")))
    if not paths:
        print(f"no recordings under {args.history_dir!r}; record some with "
              f"'repro perf record --history-dir {args.history_dir}'",
              file=sys.stderr)
        return 2
    print(f"{'recording':<16} {'suite':<8} {'code':<10} "
          f"{'wall_s':>8} {'cpu_s':>8} {'refs/s':>10} {'rss_kb':>9}")
    for path in paths:
        try:
            doc = load_baseline(path)
        except ValueError as exc:
            print(f"{os.path.basename(path):<16} skipped: {exc}")
            continue
        totals = doc["totals"]
        print(f"{os.path.basename(path):<16} {doc['suite']:<8} "
              f"{doc['code_fingerprint'][:10]:<10} "
              f"{totals['wall_s']:>8.2f} {totals['cpu_s']:>8.2f} "
              f"{totals['refs_per_s']:>10.0f} {totals['peak_rss_kb']:>9d}")
    return 0


def main(argv) -> int:
    """Entry point for the ``perf`` subcommand family."""
    args = build_parser().parse_args(argv[1:])
    if args.command == "record":
        return cmd_record(args)
    if args.command == "compare":
        return cmd_compare(args)
    return cmd_trend(args)
