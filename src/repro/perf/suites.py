"""Named perf suites: pinned experiment sets with pinned parameters.

A baseline is only comparable to another recording of *the same work*, so
a suite froze both the experiment list and the
:class:`~repro.experiments.common.ExperimentParams` — unlike ``repro run``,
where the environment may scale workloads up or down.  Two recordings of
one suite on one machine therefore simulate identical cells (same configs,
same seeds, same trace lengths) and differ only by host noise and code
changes, which is exactly what ``repro perf compare`` wants to isolate.

``smoke`` is sized for CI (a couple of minutes on a cold runner); ``sweep``
covers the headline figures at working scale for local regression hunting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..experiments import registry
from ..experiments.common import ExperimentParams


@dataclass(frozen=True)
class PerfSuite:
    """One named, frozen set of (experiment, params) to record."""

    name: str
    title: str
    #: registry experiment names, recorded in order
    experiments: tuple
    params: ExperimentParams

    def specs(self):
        """The resolved :class:`ExperimentSpec` objects of the suite."""
        return [registry.get(name) for name in self.experiments]


_SUITES = {}


def _add(suite: PerfSuite) -> None:
    if suite.name in _SUITES:
        raise ValueError(f"perf suite {suite.name!r} registered twice")
    for name in suite.experiments:
        registry.get(name)  # fail fast on typos at import time
    _SUITES[suite.name] = suite


_add(PerfSuite(
    name="smoke",
    title="CI-sized regression gate (fig5 at 2 mixes x 4000 refs)",
    experiments=("fig5",),
    params=ExperimentParams(n_workloads=2, n_refs=4000, scale=32, seed=2013),
))

_add(PerfSuite(
    name="sweep",
    title="headline figures at working scale (fig5/fig6/fig7 + table6)",
    experiments=("fig5", "fig6", "fig7", "table6"),
    params=ExperimentParams(n_workloads=4, n_refs=15_000, scale=32, seed=2013),
))

_add(PerfSuite(
    name="service",
    title="serving-layer wire cost (v1 vs v2 framing, live sockets)",
    experiments=("service-wire",),
    params=ExperimentParams(n_workloads=2, n_refs=4000, scale=32, seed=2013),
))

_add(PerfSuite(
    name="micro",
    title="smallest measurable suite (fig1a, seconds of compute)",
    experiments=("fig1a",),
    params=ExperimentParams(n_workloads=1, n_refs=3000, scale=32, seed=2013),
))


def get_suite(name: str) -> PerfSuite:
    """Look up a suite; ``KeyError`` lists the valid names."""
    try:
        return _SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown perf suite {name!r}; valid suites: "
            f"{', '.join(suite_names())}"
        ) from None


def suite_names() -> tuple:
    """Registered suite names, in registration order."""
    return tuple(_SUITES)
