"""Small shared helpers used across the repro package."""

from __future__ import annotations


def is_power_of_two(n: int) -> bool:
    """Return True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Exact integer log2 of a power of two.

    Raises ``ValueError`` when ``n`` is not a positive power of two, because
    every caller in this package uses it to size index/pointer fields where a
    silent rounding would corrupt the layout.
    """
    if not is_power_of_two(n):
        raise ValueError(f"expected a positive power of two, got {n!r}")
    return n.bit_length() - 1


def require_power_of_two(n: int, what: str) -> int:
    """Validate that ``n`` is a power of two, returning it unchanged."""
    if not is_power_of_two(n):
        raise ValueError(f"{what} must be a positive power of two, got {n!r}")
    return n


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b!r}")
    return -(-a // b)
