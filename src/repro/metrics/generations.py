"""Per-generation data-array bookkeeping for the paper's content analyses.

A *generation* [Kaxiras et al.] is one stay of a line in the (data array of
the) SLLC: fill → zero or more hits → eviction.  The recorder captures, per
generation, the fill time, eviction time, number of hits and time of the
last hit — enough to reconstruct both of the paper's content metrics:

* **live-line fraction over time** (Figs. 1a and 7): a resident line is
  *live* at time ``t`` if it will still receive a hit before eviction,
  i.e. ``fill <= t < evict`` and ``last_hit > t``;
* **hit distribution across loaded lines** (Fig. 1b): the sorted hit counts
  of all generations, split into equal-population groups.

The recorder activates at the end of the warm-up window; events before
activation (and events for lines filled before activation) are ignored, so
all statistics cover the measurement window only, as in the paper.
"""

from __future__ import annotations

import numpy as np


class GenerationRecorder:
    """Collects (fill, evict, hits, last_hit) tuples for SLLC data lines."""

    def __init__(self):
        self.active = False
        self.start_time = 0
        self._open = {}  # addr -> [fill_time, hit_count, last_hit_time]
        self._fills = []
        self._evicts = []
        self._hits = []
        self._last_hits = []
        self._finalized = False

    # -- events (called by the SLLC) ------------------------------------------
    def activate(self, now: int) -> None:
        """Start recording: called at the end of warm-up."""
        self.active = True
        self.start_time = now

    def on_fill(self, addr: int, now: int) -> None:
        """A line entered the (data array of the) SLLC."""
        if self.active:
            self._open[addr] = [now, 0, now]

    def on_hit(self, addr: int, now: int) -> None:
        """A resident line was re-referenced."""
        if self.active:
            gen = self._open.get(addr)
            if gen is not None:
                gen[1] += 1
                gen[2] = now

    def on_evict(self, addr: int, now: int) -> None:
        """A resident line was evicted; closes its generation."""
        if self.active:
            gen = self._open.pop(addr, None)
            if gen is not None:
                self._close(gen, now)

    def _close(self, gen, evict_time: int) -> None:
        self._fills.append(gen[0])
        self._evicts.append(evict_time)
        self._hits.append(gen[1])
        self._last_hits.append(gen[2] if gen[1] else gen[0])

    # -- finalisation ------------------------------------------------------------
    def finalize(self, end_time: int) -> "GenerationLog":
        """Close still-open generations at ``end_time`` and freeze the log.

        Open generations are treated as resident until the end of the run
        (their eviction time is ``end_time``), matching the paper's
        end-of-simulation snapshot.
        """
        if self._finalized:
            raise RuntimeError("recorder already finalized")
        self._finalized = True
        for gen in self._open.values():
            self._close(gen, end_time)
        self._open.clear()
        return GenerationLog(
            start_time=self.start_time,
            end_time=end_time,
            fills=np.asarray(self._fills, dtype=np.int64),
            evicts=np.asarray(self._evicts, dtype=np.int64),
            hits=np.asarray(self._hits, dtype=np.int64),
            last_hits=np.asarray(self._last_hits, dtype=np.int64),
        )


class GenerationLog:
    """Frozen generation data with the paper's two content analyses."""

    def __init__(self, start_time, end_time, fills, evicts, hits, last_hits):
        self.start_time = start_time
        self.end_time = end_time
        self.fills = fills
        self.evicts = evicts
        self.hits = hits
        self.last_hits = last_hits
        # Liveness ends at the last hit; a generation with no hits is dead
        # from its fill onwards.
        self._live_ends = np.where(hits > 0, last_hits, fills)
        self._sorted_fills = np.sort(fills)
        self._sorted_evicts = np.sort(evicts)
        self._sorted_live_ends = np.sort(self._live_ends)

    @property
    def n_generations(self) -> int:
        """Number of recorded generations."""
        return len(self.fills)

    # -- Fig. 1a / Fig. 7 --------------------------------------------------------
    def live_fraction_at(self, t: int) -> float:
        """Fraction of lines resident at ``t`` that will still be hit."""
        resident = int(
            np.searchsorted(self._sorted_fills, t, "right")
            - np.searchsorted(self._sorted_evicts, t, "right")
        )
        if resident <= 0:
            return 0.0
        live = int(
            np.searchsorted(self._sorted_fills, t, "right")
            - np.searchsorted(self._sorted_live_ends, t, "right")
        )
        return live / resident

    def live_fraction_series(self, sample_interval: int):
        """(times, fractions) sampled every ``sample_interval`` cycles.

        Samples are drawn over the measurement window, skipping the leading
        edge where the recorder has not yet seen a full population.
        """
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        times = np.arange(self.start_time + sample_interval, self.end_time, sample_interval)
        return times, np.array([self.live_fraction_at(int(t)) for t in times])

    def mean_live_fraction(
        self, sample_interval: int | None = None, trim_tail: float = 0.15
    ) -> float:
        """Average live fraction over the window (paper's 'alive fraction').

        The last ``trim_tail`` fraction of the window is excluded: near the
        end of a finite measurement window, lines whose next hit falls
        beyond the horizon look dead (right-censoring), which would bias the
        average low for every configuration.
        """
        if self.n_generations == 0:
            return 0.0
        span = max(1, self.end_time - self.start_time)
        if sample_interval is None:
            sample_interval = max(1, span // 64)
        times, fracs = self.live_fraction_series(sample_interval)
        if not len(fracs):
            return 0.0
        cutoff = self.end_time - trim_tail * span
        kept = fracs[times <= cutoff]
        return float(kept.mean()) if len(kept) else float(fracs.mean())

    # -- Fig. 1b -----------------------------------------------------------------
    def hit_distribution(self, n_groups: int = 200):
        """Sorted-group hit shares (Fig. 1b).

        Returns ``(share, avg_hits)``: for each of ``n_groups`` equal-size
        groups of generations ordered by descending hit count, the fraction
        of all hits the group received and its mean hits per line.
        """
        if n_groups <= 0:
            raise ValueError("n_groups must be positive")
        counts = np.sort(self.hits)[::-1]
        total = counts.sum()
        groups_share = np.zeros(n_groups)
        groups_avg = np.zeros(n_groups)
        if len(counts) == 0:
            return groups_share, groups_avg
        bounds = np.linspace(0, len(counts), n_groups + 1).astype(int)
        for g in range(n_groups):
            chunk = counts[bounds[g]:bounds[g + 1]]
            if len(chunk):
                groups_avg[g] = chunk.mean()
                if total:
                    groups_share[g] = chunk.sum() / total
        return groups_share, groups_avg

    def useful_fraction(self) -> float:
        """Fraction of loaded lines that received at least one hit."""
        if self.n_generations == 0:
            return 0.0
        return float((self.hits > 0).mean())
