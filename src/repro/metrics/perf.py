"""Performance metrics: IPC, MPKI and speedups over a baseline.

The paper reports configuration performance as speedup relative to the 8 MB
LRU baseline running the same workload.  With fixed per-core reference
traces, a configuration's performance is the aggregate committed-IPC over
the measurement window (instructions after warm-up divided by the cycles
each core needed for them, summed over cores); speedup is the ratio of
aggregate IPCs.
"""

from __future__ import annotations

import math


def aggregate_ipc(core_instructions, core_cycles) -> float:
    """System throughput: sum over cores of per-core IPC."""
    if len(core_instructions) != len(core_cycles):
        raise ValueError("per-core arrays disagree in length")
    total = 0.0
    for instr, cycles in zip(core_instructions, core_cycles):
        if cycles > 0:
            total += instr / cycles
    return total


def speedup(perf: float, baseline_perf: float) -> float:
    """Relative performance; raises on a degenerate baseline."""
    if baseline_perf <= 0:
        raise ValueError(f"baseline performance must be positive, got {baseline_perf}")
    return perf / baseline_perf


def mpki(misses: int, instructions: int) -> float:
    """Misses per kilo-instruction."""
    if instructions <= 0:
        return 0.0
    return 1000.0 * misses / instructions


def geomean(values) -> float:
    """Geometric mean (used for cross-workload summaries)."""
    vals = [v for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def quartiles(values):
    """(min, q1, median, q3, max) — the five numbers of paper Fig. 10."""
    vals = sorted(values)
    if not vals:
        raise ValueError("quartiles of empty sequence")

    def _quantile(q: float) -> float:
        pos = q * (len(vals) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(vals) - 1)
        frac = pos - lo
        return vals[lo] * (1 - frac) + vals[hi] * frac

    return vals[0], _quantile(0.25), _quantile(0.5), _quantile(0.75), vals[-1]
