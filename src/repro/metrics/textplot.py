"""Terminal plotting for the reproduced figures.

The paper's figures are bar charts and line plots; a text-only reproduction
renders them as ASCII so benchmark output and examples can show *shape*
(orderings, crossovers, knees) and not just tables.

Two primitives cover every figure in the paper:

* :func:`bar_chart` — labelled horizontal bars (Figs. 4, 7, 8, 9, 11);
* :func:`line_plot` — multi-series scatter/line over a numeric x-axis
  (Figs. 1a, 5, 6).
"""

from __future__ import annotations


def bar_chart(
    items,
    width: int = 48,
    baseline: float | None = None,
    fmt: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Horizontal bar chart.

    ``items`` is a sequence of ``(label, value)``.  When ``baseline`` is
    given, a marker column is drawn at that value (e.g. speedup = 1.0), so
    wins and losses are visible at a glance.
    """
    items = list(items)
    if not items:
        return title or ""
    values = [v for _, v in items]
    lo = min(0.0, min(values))
    hi = max(values)
    if baseline is not None:
        hi = max(hi, baseline)
        lo = min(lo, baseline)
    span = (hi - lo) or 1.0
    label_w = max(len(str(label)) for label, _ in items)

    def _col(value: float) -> int:
        return int(round((value - lo) / span * (width - 1)))

    base_col = _col(baseline) if baseline is not None else None
    lines = [title] if title else []
    for label, value in items:
        bar_len = _col(value)
        row = ["█"] * bar_len + [" "] * (width - bar_len)
        if base_col is not None and base_col < width:
            row[base_col] = "┊" if base_col >= bar_len else "│"
        lines.append(f"{str(label):<{label_w}} {''.join(row)} {fmt.format(value)}")
    return "\n".join(lines)


def line_plot(
    series,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    y_fmt: str = "{:.2f}",
) -> str:
    """Multi-series line/scatter plot.

    ``series`` maps a series name to a list of ``(x, y)`` pairs; each series
    is drawn with its own glyph and listed in the legend.
    """
    series = {name: list(points) for name, points in series.items()}
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        return title or ""
    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    glyphs = "ox+*#@%&"
    legend = []
    for (name, points), glyph in zip(series.items(), glyphs):
        legend.append(f"{glyph}={name}")
        for x, y in points:
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_lo) / y_span * (height - 1)))
            grid[row][col] = glyph

    y_label_w = max(len(y_fmt.format(y_hi)), len(y_fmt.format(y_lo)))
    lines = [title] if title else []
    for r, row in enumerate(grid):
        if r == 0:
            label = y_fmt.format(y_hi)
        elif r == height - 1:
            label = y_fmt.format(y_lo)
        else:
            label = ""
        lines.append(f"{label:>{y_label_w}} │{''.join(row)}")
    lines.append(f"{'':>{y_label_w}} └" + "─" * width)
    lines.append(f"{'':>{y_label_w}}  {x_lo:<.4g}{'':^{max(0, width - 16)}}{x_hi:>.4g}")
    lines.append("  " + "  ".join(legend))
    return "\n".join(lines)


def sparkline(values, width: int = 60) -> str:
    """One-line density strip of a series (used for Fig. 1a overviews)."""
    blocks = " ▁▂▃▄▅▆▇█"
    values = list(values)
    if not values:
        return ""
    step = max(1, len(values) // width)
    sampled = [values[i] for i in range(0, len(values), step)]
    lo, hi = min(sampled), max(sampled)
    span = (hi - lo) or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in sampled)
