"""Measurement substrate: generation logs, liveness, IPC/MPKI/speedup."""

from .generations import GenerationLog, GenerationRecorder
from .perf import aggregate_ipc, geomean, mpki, quartiles, speedup

__all__ = [
    "GenerationRecorder",
    "GenerationLog",
    "aggregate_ipc",
    "speedup",
    "mpki",
    "geomean",
    "quartiles",
]
