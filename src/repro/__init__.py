"""repro — a reproduction of "The Reuse Cache: Downsizing the Shared
Last-Level Cache" (Albericio, Ibáñez, Viñals, Llabería; MICRO 2013).

The package provides:

* :class:`~repro.core.reuse_cache.ReuseCache` — the paper's decoupled
  tag/data SLLC with selective (reuse-driven) data allocation;
* baselines: a conventional inclusive SLLC with pluggable replacement
  (LRU, NRU, NRR, TA-DRRIP, ...) and the NCID architecture;
* an eight-core CMP timing simulator with private L1/L2 caches, a banked
  SLLC, a crossbar and a DDR3 memory model;
* synthetic SPEC-like and parallel workload generators;
* metrics (liveness, hit distributions, MPKI, speedups), the exact
  hardware-cost model of Table 2 and a latency surrogate for Table 3;
* experiment drivers reproducing every table and figure of the paper
  (:mod:`repro.experiments`);
* a serving stack (:mod:`repro.service`): a sharded asyncio cache server
  whose admission policy is the paper's selective allocation, plus a load
  generator replaying the synthetic workloads as GET/SET traffic.

Quickstart::

    from repro import LLCSpec, SystemConfig, run_workload, build_workload

    workload = build_workload(["mcf", "gcc"] * 4, n_refs=50_000, seed=1)
    base = run_workload(SystemConfig(llc=LLCSpec.conventional(8)), workload)
    rc = run_workload(SystemConfig(llc=LLCSpec.reuse(4, 1)), workload)
    print("speedup:", rc.performance / base.performance)
"""

from .cache import ConventionalLLC, NCIDCache, PrivateHierarchy
from .coherence import Event, State
from .core import (
    ReuseCache,
    SRAMLatencyModel,
    conventional_cost,
    figure8_storage_kbits,
    reuse_cache_cost,
    table2,
    table3,
)
from .dram import DDR3Config, DDR3Memory
from .hierarchy import LLCSpec, RunResult, System, SystemConfig, run_workload
from .service import CacheClient, CacheServer, ReuseStore, ShardedStore
from .metrics import GenerationLog, GenerationRecorder, geomean, mpki, quartiles, speedup
from .workloads import (
    EXAMPLE_MIX,
    PARALLEL_APPS,
    SPEC_APPS,
    SPEC_PROFILES,
    Trace,
    Workload,
    build_mix_suite,
    build_workload,
    generate_parallel_workload,
    generate_trace,
    load_workload,
    make_mixes,
    save_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ReuseCache",
    "ReuseStore",
    "ShardedStore",
    "CacheServer",
    "CacheClient",
    "ConventionalLLC",
    "NCIDCache",
    "PrivateHierarchy",
    "State",
    "Event",
    "DDR3Config",
    "DDR3Memory",
    "LLCSpec",
    "SystemConfig",
    "System",
    "RunResult",
    "run_workload",
    "GenerationRecorder",
    "GenerationLog",
    "speedup",
    "mpki",
    "geomean",
    "quartiles",
    "conventional_cost",
    "reuse_cache_cost",
    "table2",
    "table3",
    "figure8_storage_kbits",
    "SRAMLatencyModel",
    "Trace",
    "Workload",
    "SPEC_APPS",
    "SPEC_PROFILES",
    "PARALLEL_APPS",
    "EXAMPLE_MIX",
    "build_workload",
    "build_mix_suite",
    "make_mixes",
    "generate_trace",
    "generate_parallel_workload",
    "save_workload",
    "load_workload",
    "__version__",
]
