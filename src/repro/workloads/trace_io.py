"""Workload (trace) persistence.

Generated workloads are deterministic, but real deployments exchange traces
as files (the paper's own methodology snapshots Simics checkpoints).  A
:class:`~repro.workloads.trace.Workload` round-trips through a single
compressed ``.npz`` archive: three numpy arrays per core plus the
application names.  Integer dtypes are narrowed where possible, so a
million-reference, eight-core workload is a few MB on disk.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .trace import Trace, Workload

_FORMAT_VERSION = 1


def save_workload(workload: Workload, path) -> Path:
    """Write ``workload`` to ``path`` (a ``.npz`` archive); returns the path."""
    path = Path(path)
    arrays = {
        "format_version": np.int64(_FORMAT_VERSION),
        "name": np.str_(workload.name),
        "num_cores": np.int64(workload.num_cores),
        "app_names": np.array(workload.app_names),
    }
    for core, trace in enumerate(workload.traces):
        arrays[f"gaps_{core}"] = np.asarray(trace.gaps, dtype=np.int32)
        arrays[f"addrs_{core}"] = np.asarray(trace.addrs, dtype=np.int64)
        arrays[f"writes_{core}"] = np.asarray(trace.writes, dtype=np.int8)
    np.savez_compressed(path, **arrays)
    # np.savez appends .npz when missing
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def save_dinero(trace: Trace, path, line_bytes: int = 64) -> Path:
    """Write one trace in the classic Dinero 'din' format.

    Each record is ``<label> <hex byte address>``: label 0 = read, 1 =
    write (instruction fetches, label 2, are not produced — the simulator
    models data references).  Gaps are not representable in din; they are
    dropped, so a round trip preserves addresses and read/write labels
    only.  This is the interchange format most academic cache tools accept.
    """
    path = Path(path)
    with path.open("w") as fh:
        for addr, is_write in zip(trace.addrs, trace.writes):
            fh.write(f"{1 if is_write else 0} {addr * line_bytes:x}\n")
    return path


def load_dinero(path, name: str | None = None, line_bytes: int = 64,
                mean_gap: int = 4) -> Trace:
    """Read a Dinero 'din' file into a :class:`Trace`.

    Instruction-fetch records (label 2) are skipped.  Since din carries no
    timing, every reference gets a fixed ``mean_gap`` of non-memory
    instructions.
    """
    path = Path(path)
    gaps, addrs, writes = [], [], []
    with path.open() as fh:
        for line_no, line in enumerate(fh, 1):
            parts = line.split()
            if not parts:
                continue
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_no}: malformed din record {line!r}")
            label = int(parts[0])
            if label == 2:
                continue  # instruction fetch
            if label not in (0, 1):
                raise ValueError(f"{path}:{line_no}: unknown din label {label}")
            gaps.append(mean_gap)
            addrs.append(int(parts[1], 16) // line_bytes)
            writes.append(label)
    return Trace(name or path.stem, gaps, addrs, writes)


def load_workload(path) -> Workload:
    """Read a workload previously written by :func:`save_workload`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported workload format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        num_cores = int(data["num_cores"])
        name = str(data["name"])
        app_names = [str(a) for a in data["app_names"]]
        traces = []
        for core in range(num_cores):
            traces.append(
                Trace(
                    app_names[core],
                    data[f"gaps_{core}"].tolist(),
                    data[f"addrs_{core}"].tolist(),
                    data[f"writes_{core}"].tolist(),
                )
            )
    return Workload(name, traces)
