"""Parallel (multithreaded) workloads for paper Section 5.7 / Figure 11.

The paper selects the five PARSEC / SPLASH-2 applications with more than
1 MPKI at the baseline SLLC: blackscholes (4.5), canneal (3.5), ferret
(1.3), fluidanimate (1.7) and ocean (13.4).  Their traces are synthesised as
eight threads over a *shared* address space:

* a per-thread private hot region (stack/locals),
* a shared region all threads revisit (the application's shared working
  set), sized and skewed per application, and
* a scan region — per-thread tiles of a shared grid for the data-parallel
  codes, giving each thread a streaming sweep.

The footprints are chosen so the archetypes match the paper's findings:
canneal and ocean have large, skewed shared sets whose reuse survives in a
small data array (reuse cache wins); ferret's shared set is several MB with
weak skew, so it fits an 8 MB conventional cache but not a downsized data
array (the one application that loses with the reuse cache).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trace import Trace, Workload

#: region offsets inside the shared address space (line addresses)
_SHARED_BASE = 0
_GRID_BASE = 1 << 26
_PRIVATE_BASE = 1 << 27  # + thread << 20


@dataclass(frozen=True)
class ParallelProfile:
    """Parameters of one synthetic parallel application."""

    name: str
    mem_per_kinst: float
    write_frac: float
    #: probability / footprint (full-size lines) of the private hot region
    p_hot: float
    hot_lines: int
    #: probability / footprint / skew of the shared reused region
    p_shared: float
    shared_lines: int
    shared_zipf: float
    #: scan region: per-thread tile of a shared grid (full-size lines)
    grid_lines: int = 1 << 20

    def __post_init__(self):
        if self.p_hot + self.p_shared > 1 + 1e-9:
            raise ValueError(f"{self.name}: probabilities exceed 1")

    @property
    def p_scan(self) -> float:
        """Probability of a scan (grid-tile) reference."""
        return max(0.0, 1.0 - self.p_hot - self.p_shared)


#: the five applications of Figure 11 (MPKIs in the paper: 4.5, 3.5, 1.3,
#: 1.7, 13.4)
PARALLEL_PROFILES = {
    p.name: p
    for p in [
        ParallelProfile("blackscholes", 150, 0.20, 0.90, 320, 0.06, 8192, 0.8,
                        grid_lines=1 << 19),
        # canneal: random walks over a shared netlist whose hot elements are
        # strongly skewed — the reuse cache keeps the hot subset even in a
        # small data array (paper: >10% gains at every size)
        ParallelProfile("canneal", 180, 0.25, 0.76, 320, 0.13, 24576, 0.85,
                        grid_lines=1 << 20),
        # ferret: a multi-MB shared database with weak skew — fits an 8 MB
        # conventional cache but not a downsized data array (the paper's
        # one loser, -1% .. -11%)
        ParallelProfile("ferret", 170, 0.20, 0.965, 384, 0.025, 32768, 0.4,
                        grid_lines=1 << 19),
        ParallelProfile("fluidanimate", 160, 0.30, 0.92, 384, 0.05, 12288, 0.7,
                        grid_lines=1 << 19),
        # ocean: huge one-pass grid sweeps polluting the SLLC while the
        # skewed boundary/reduction set carries all the reuse
        ParallelProfile("ocean", 210, 0.35, 0.74, 320, 0.14, 49152, 0.85,
                        grid_lines=1 << 21),
    ]
}

PARALLEL_APPS = list(PARALLEL_PROFILES)


def generate_parallel_workload(
    name: str,
    n_refs: int,
    num_threads: int = 8,
    seed: int = 0,
    scale: int = 32,
) -> Workload:
    """Synthesize ``num_threads`` traces of one parallel application."""
    try:
        profile = PARALLEL_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown parallel application {name!r}; known: {PARALLEL_APPS}"
        ) from None

    shared_lines = max(1, profile.shared_lines // scale)
    grid_lines = max(num_threads, profile.grid_lines // scale)
    hot_lines = max(1, profile.hot_lines // scale)
    tile = grid_lines // num_threads

    traces = []
    for t in range(num_threads):
        rng = np.random.default_rng(seed * 7919 + t)
        u = rng.random(n_refs)
        is_hot = u < profile.p_hot
        is_shared = (~is_hot) & (u < profile.p_hot + profile.p_shared)
        is_scan = ~(is_hot | is_shared)

        addrs = np.zeros(n_refs, dtype=np.int64)

        n_hot = int(is_hot.sum())
        if n_hot:
            base = _PRIVATE_BASE + (t << 20)
            addrs[is_hot] = base + rng.integers(0, hot_lines, n_hot)

        n_shared = int(is_shared.sum())
        if n_shared:
            # One popularity permutation shared by all threads: the same
            # lines are hot for everyone, creating genuine sharing.
            shared_rng = np.random.default_rng(seed * 7919 - 1)
            cdf = np.cumsum(_zipf_cdf_weights(shared_lines, profile.shared_zipf))
            ranks = np.searchsorted(cdf, rng.random(n_shared), side="right")
            perm = shared_rng.permutation(shared_lines)
            addrs[is_shared] = _SHARED_BASE + perm[np.clip(ranks, 0, shared_lines - 1)]

        n_scan = int(is_scan.sum())
        if n_scan:
            # Each thread sweeps its own tile of the shared grid.
            start = t * tile
            pos = start + (np.arange(n_scan, dtype=np.int64) % max(1, tile))
            addrs[is_scan] = _GRID_BASE + pos

        writes = (rng.random(n_refs) < profile.write_frac).astype(np.int8)
        p = min(1.0, profile.mem_per_kinst / 1000.0)
        gaps = rng.geometric(p, n_refs).astype(np.int64) - 1
        np.clip(gaps, 0, int(20000 / profile.mem_per_kinst) + 1, out=gaps)

        traces.append(Trace(name, gaps.tolist(), addrs.tolist(), writes.tolist()))
    return Workload(name, traces)


def _zipf_cdf_weights(n_items: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-s) if s else np.ones(n_items)
    return weights / weights.sum()
