"""Reference-trace analysis: stack distances and footprints.

The reuse-locality structure the paper relies on is visible directly in a
trace's *stack distance* profile (the number of distinct lines touched
between consecutive accesses to the same line): private-cache locality
shows up as a mass of small distances, SLLC reuse as a mid-range band, and
streaming as infinite distances.  These tools validate the synthetic
generators and let users characterise their own traces.

Stack distances are computed exactly in O(N log N) with a Fenwick tree
over access timestamps (the classical Bennett–Kruskal algorithm).
"""

from __future__ import annotations

import numpy as np


class _Fenwick:
    """Binary indexed tree over ``n`` slots (prefix sums of 0/1 marks)."""

    __slots__ = ("n", "tree")

    def __init__(self, n: int):
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        """Add ``delta`` at index ``i``."""
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum of marks in [0, i]."""
        i += 1
        total = 0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return total


def stack_distances(addrs) -> np.ndarray:
    """Exact LRU stack distance of every access.

    Returns an int64 array: the number of *distinct* lines referenced since
    the previous access to the same line, or -1 for cold (first) accesses.
    An access with stack distance d hits in a fully associative LRU cache
    of capacity > d.
    """
    n = len(addrs)
    distances = np.full(n, -1, dtype=np.int64)
    fenwick = _Fenwick(n)
    last_access = {}
    for t, addr in enumerate(addrs):
        prev = last_access.get(addr)
        if prev is not None:
            # distinct lines touched in (prev, t) = marks in that window
            distances[t] = fenwick.prefix_sum(t - 1) - fenwick.prefix_sum(prev)
            fenwick.add(prev, -1)
        fenwick.add(t, 1)
        last_access[addr] = t
    return distances


def reuse_profile(addrs, bin_edges=None) -> dict:
    """Histogram of stack distances plus summary statistics.

    ``bin_edges`` defaults to powers of two from 1 to 2^24.  Cold accesses
    are reported separately.
    """
    distances = stack_distances(addrs)
    warm = distances[distances >= 0]
    if bin_edges is None:
        bin_edges = [0] + [1 << k for k in range(25)]
    counts, edges = np.histogram(warm, bins=np.asarray(bin_edges, dtype=np.int64))
    return {
        "n_accesses": len(distances),
        "cold": int((distances < 0).sum()),
        "bin_edges": edges.tolist(),
        "counts": counts.tolist(),
        "median_distance": float(np.median(warm)) if len(warm) else float("nan"),
        "footprint": len(set(addrs)),
    }


def hit_ratio_curve(addrs, capacities) -> dict:
    """Fully associative LRU hit ratio at each capacity (miss-ratio curve).

    A single stack-distance pass yields the hit ratio of *every* capacity:
    an access hits at capacity c iff its stack distance is < c.
    """
    distances = stack_distances(addrs)
    n = len(distances)
    if n == 0:
        return {c: 0.0 for c in capacities}
    warm = distances[distances >= 0]
    return {
        c: float((warm < c).sum()) / n
        for c in capacities
    }
