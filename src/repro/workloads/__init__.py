"""Workload substrate: synthetic SPEC-like and parallel reference traces."""

from .mixes import EXAMPLE_MIX, build_mix_suite, build_workload, make_mixes
from .parallel import PARALLEL_APPS, PARALLEL_PROFILES, generate_parallel_workload
from .profiles import SPEC_APPS, SPEC_PROFILES, AppProfile
from .synthetic import generate_trace, zipf_sample, zipf_weights
from .trace import Trace, Workload
from .trace_io import load_workload, save_workload

__all__ = [
    "AppProfile",
    "SPEC_APPS",
    "SPEC_PROFILES",
    "PARALLEL_APPS",
    "PARALLEL_PROFILES",
    "Trace",
    "Workload",
    "EXAMPLE_MIX",
    "generate_trace",
    "generate_parallel_workload",
    "build_workload",
    "build_mix_suite",
    "make_mixes",
    "zipf_sample",
    "zipf_weights",
    "save_workload",
    "load_workload",
]
