"""Trace containers shared by all workload generators.

A :class:`Trace` is one core's reference stream: for reference ``i`` the
core executes ``gaps[i]`` non-memory instructions, then issues a load/store
to line address ``addrs[i]`` (``writes[i]`` = 1 for stores).  The memory
reference itself counts as one instruction, so a trace of ``n`` references
commits ``sum(gaps) + n`` instructions.

Arrays are stored as plain Python lists because the simulator consumes them
element-wise (list indexing is several times faster than numpy scalar
access); generators build them with numpy and convert once.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Trace:
    """One core's memory-reference stream."""

    name: str
    gaps: list = field(repr=False)
    addrs: list = field(repr=False)
    writes: list = field(repr=False)

    def __post_init__(self):
        if not (len(self.gaps) == len(self.addrs) == len(self.writes)):
            raise ValueError(
                f"trace arrays disagree in length: {len(self.gaps)}, "
                f"{len(self.addrs)}, {len(self.writes)}"
            )

    @property
    def n_refs(self) -> int:
        """Number of memory references in the trace."""
        return len(self.addrs)

    @property
    def total_instructions(self) -> int:
        """Committed instructions the trace represents."""
        return sum(self.gaps) + self.n_refs

    def slice(self, n_refs: int) -> "Trace":
        """A shortened copy with the first ``n_refs`` references."""
        return Trace(
            self.name, self.gaps[:n_refs], self.addrs[:n_refs], self.writes[:n_refs]
        )


@dataclass
class Workload:
    """A named set of per-core traces (one multiprogrammed mix or one
    parallel application)."""

    name: str
    traces: list

    @property
    def num_cores(self) -> int:
        """Number of per-core traces."""
        return len(self.traces)

    @property
    def app_names(self) -> list:
        """Application name of each core's trace."""
        return [t.name for t in self.traces]

    def slice(self, n_refs: int) -> "Workload":
        """A shortened copy: the first ``n_refs`` references of every core."""
        return Workload(self.name, [t.slice(n_refs) for t in self.traces])
