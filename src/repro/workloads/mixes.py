"""Multiprogrammed workload construction (paper Section 4.1).

The paper evaluates 100 workloads, each a random combination of 8 programs
drawn from the 29 SPEC CPU 2006 applications with repetition, applications
appearing 16-35 times overall.  :func:`make_mixes` reproduces that
construction deterministically from a seed; :func:`build_workload` turns a
mix into per-core traces, giving each core a disjoint address space (no
sharing between programs of a multiprogrammed mix).

The paper's *example workload* of Sections 2 and 5 (gcc, mcf, povray,
leslie3d, h264ref, lbm, namd, gcc) is exposed as :data:`EXAMPLE_MIX`.
"""

from __future__ import annotations

import random

from .profiles import SPEC_APPS, SPEC_PROFILES
from .synthetic import APP_SPACE_BITS, generate_trace
from .trace import Workload

#: the example workload of paper Section 2 (footnote 1)
EXAMPLE_MIX = ["gcc", "mcf", "povray", "leslie3d", "h264ref", "lbm", "namd", "gcc"]


def make_mixes(
    n_mixes: int = 100,
    apps_per_mix: int = 8,
    seed: int = 2013,
    apps=None,
) -> list:
    """Random multiprogrammed mixes (lists of application names)."""
    if n_mixes <= 0 or apps_per_mix <= 0:
        raise ValueError("n_mixes and apps_per_mix must be positive")
    pool = list(apps) if apps is not None else list(SPEC_APPS)
    rng = random.Random(seed)
    return [[rng.choice(pool) for _ in range(apps_per_mix)] for _ in range(n_mixes)]


def build_workload(
    mix,
    n_refs: int,
    seed: int = 0,
    scale: int = 32,
    name: str | None = None,
) -> Workload:
    """Build per-core traces for one multiprogrammed mix.

    Each core gets its own address space (multiprogramming: no sharing) and
    its own generator seed; repeated instances of the same application get
    distinct seeds and phase offsets so they do not run in lockstep.
    """
    traces = []
    for core, app in enumerate(mix):
        try:
            profile = SPEC_PROFILES[app]
        except KeyError:
            raise ValueError(f"unknown application {app!r}") from None
        trace = generate_trace(
            profile,
            n_refs,
            seed=seed * 1009 + core,
            scale=scale,
            base_addr=(core + 1) << APP_SPACE_BITS,
            phase_offset=core / len(mix),
        )
        traces.append(trace)
    return Workload(name or "+".join(mix), traces)


def build_mix_suite(
    n_mixes: int,
    n_refs: int,
    scale: int = 32,
    seed: int = 2013,
) -> list:
    """The first ``n_mixes`` workloads of the paper-style 100-mix suite."""
    mixes = make_mixes(100, seed=seed)[:n_mixes]
    return [
        build_workload(mix, n_refs, seed=seed + i, scale=scale, name=f"mix{i:03d}")
        for i, mix in enumerate(mixes)
    ]
