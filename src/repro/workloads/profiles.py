"""Synthetic application profiles standing in for SPEC CPU 2006.

The paper drives its evaluation with the 29 SPEC CPU 2006 programs; Table 5
lists each one's baseline MPKI at L1, L2 and the SLLC.  Reference traces for
those binaries are not redistributable, so each application is modelled as a
parameterised stream whose regions map onto the levels of the hierarchy:

* a **hot** region (uniform, smaller than L1) absorbed by the L1;
* a **warm** region (cyclic sweep, between L1 and L2 size) that misses L1
  and hits L2 — it carries the L1→L2 MPKI gap;
* a **mid** region (Zipf-skewed random, larger than the private L2) whose
  reuse lands in the SLLC — the *reuse locality* the paper exploits; its
  size relative to the SLLC also creates the thrashing tail;
* a **stream** region of one-pass lines that miss everywhere — the
  dead-on-arrival SLLC fills of Section 2.

Profiles are *derived from the paper's Table 5 MPKI targets*: given targets
``(l1, l2, llc)`` in misses per kilo-instruction and a memory intensity
``M`` refs/kinst, the region probabilities are

* ``p_warm  = (l1 - l2) / M``     (L1 misses that hit L2),
* ``p_mid   = beta * (l2 - llc) / M``  (L2 misses that hit the SLLC; ``beta``
  compensates for the Zipf head hitting the private caches),
* ``p_stream= (llc - thrash) / M`` with a per-app thrash share supplied by
  the mid tail for the huge-footprint applications,
* ``p_hot`` the remainder.

Region footprints are in *full-size* 64 B lines against the paper's
hierarchy (L1 512 lines, L2 4 K lines, 8 MB SLLC 128 K lines, per-core share
16 K) and are scaled together with the caches by ``SystemConfig.scale``.
Absolute MPKIs remain approximate (the Zipf mid region interacts with every
level); the relative ordering and archetypes of Table 5 are the target.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AppProfile:
    """Parameters of one synthetic application."""

    name: str
    #: memory references per 1000 committed instructions
    mem_per_kinst: float
    #: fraction of references that are stores
    write_frac: float
    #: probability and footprint (full-size lines) of the hot region
    p_hot: float
    hot_lines: int
    #: probability / footprint of the warm (L2-resident, cyclic) region
    p_warm: float = 0.0
    warm_lines: int = 2048
    #: probability, footprint and skew of the mid (SLLC-reused) region
    p_mid: float = 0.0
    mid_lines: int = 8192
    #: Zipf exponent of mid-region popularity (0 = uniform)
    mid_zipf: float = 0.7
    #: mid access pattern: 'zipf' (skewed random) or 'cyclic' (sweep)
    mid_pattern: str = "zipf"
    #: streaming loop footprint in full-size lines (the stream revisits a
    #: line only after a full pass over this footprint)
    stream_loop_lines: int = 1 << 21  # 128 MB: effectively one-pass

    def __post_init__(self):
        total = self.p_hot + self.p_warm + self.p_mid
        if any(not 0 <= p <= 1 for p in (self.p_hot, self.p_warm, self.p_mid)):
            raise ValueError(f"{self.name}: probabilities must lie in [0, 1]")
        if total > 1 + 1e-9:
            raise ValueError(f"{self.name}: region probabilities exceed 1")
        if not 0 <= self.write_frac <= 1:
            raise ValueError(f"{self.name}: write_frac must lie in [0, 1]")
        if min(self.hot_lines, self.warm_lines, self.mid_lines,
               self.stream_loop_lines) <= 0:
            raise ValueError(f"{self.name}: region sizes must be positive")
        if self.mid_pattern not in ("zipf", "cyclic"):
            raise ValueError(f"{self.name}: unknown mid_pattern {self.mid_pattern!r}")

    @property
    def p_stream(self) -> float:
        """Probability of a streaming reference (the remainder)."""
        return max(0.0, 1.0 - self.p_hot - self.p_warm - self.p_mid)


#: paper Table 5 baseline MPKIs: app -> (L1, L2, LLC)
TABLE5_TARGETS = {
    "perlbench": (3.7, 0.8, 0.6),
    "bzip2": (8.2, 4.3, 2.1),
    "gcc": (21.8, 7.1, 6.2),
    "bwaves": (20.3, 19.6, 19.6),
    "gamess": (75.3, 46.2, 28.6),
    "mcf": (22.9, 22.2, 18.1),
    "milc": (21.6, 21.6, 21.5),
    "zeusmp": (12.3, 6.4, 6.3),
    "gromacs": (8.7, 5.9, 5.9),
    "cactusADM": (13.9, 1.4, 0.7),
    "leslie3d": (29.5, 18.1, 17.7),
    "namd": (1.4, 0.2, 0.1),
    "gobmk": (9.5, 0.5, 0.4),
    "dealII": (2.3, 0.3, 0.3),
    "soplex": (6.7, 5.8, 4.8),
    "povray": (11.0, 0.3, 0.3),
    "calculix": (13.8, 3.7, 1.5),
    "hmmer": (2.9, 2.2, 1.7),
    "sjeng": (4.2, 0.5, 0.5),
    "GemsFDTD": (25.8, 25.7, 21.6),
    "libquantum": (36.6, 36.6, 36.6),
    "h264ref": (3.5, 0.7, 0.6),
    "tonto": (4.9, 0.9, 0.5),
    "lbm": (68.1, 39.2, 39.2),
    "omnetpp": (7.3, 4.4, 1.2),
    "astar": (6.9, 0.9, 0.7),
    "wrf": (4.1, 1.6, 0.5),
    "sphinx3": (13.8, 8.0, 6.3),
    "xalancbmk": (8.2, 7.0, 6.4),
}

#: canonical application order (Table 5's order)
SPEC_APPS = list(TABLE5_TARGETS)

#: per-app shaping hints: mid footprint (full-size lines), Zipf exponent,
#: thrash fraction of the LLC-level misses attributable to the mid tail,
#: write fraction.  Apps without an entry use the defaults below.
_HINTS = {
    # SLLC-working-set applications: reuse lands in the SLLC
    "gcc": dict(mid=12288, zipf=0.8, thrash=0.3, wf=0.30),
    "mcf": dict(mid=131072, zipf=0.6, thrash=0.8, wf=0.25),
    "omnetpp": dict(mid=10240, zipf=0.8, thrash=0.2, wf=0.30),
    "xalancbmk": dict(mid=32768, zipf=0.65, thrash=0.5, wf=0.30),
    "sphinx3": dict(mid=32768, zipf=0.65, thrash=0.5, wf=0.15),
    "soplex": dict(mid=24576, zipf=0.7, thrash=0.35, wf=0.25),
    "gamess": dict(mid=8192, zipf=0.7, thrash=0.25, wf=0.25),
    "bzip2": dict(mid=8192, zipf=0.7, thrash=0.3, wf=0.30),
    "hmmer": dict(mid=8192, zipf=0.7, thrash=0.4, wf=0.20),
    "calculix": dict(mid=8192, zipf=0.7, thrash=0.2, wf=0.20),
    # streaming / huge-footprint applications
    "libquantum": dict(mid=4096, zipf=0.5, thrash=0.0, wf=0.30),
    "milc": dict(mid=4096, zipf=0.5, thrash=0.0, wf=0.25),
    "bwaves": dict(mid=4096, zipf=0.5, thrash=0.0, wf=0.20),
    "lbm": dict(mid=4096, zipf=0.5, thrash=0.0, wf=0.45),
    "leslie3d": dict(mid=8192, zipf=0.6, thrash=0.1, wf=0.25),
    "GemsFDTD": dict(mid=98304, zipf=0.55, thrash=0.65, wf=0.25),
    "zeusmp": dict(mid=12288, zipf=0.7, thrash=0.05, wf=0.25),
    "gromacs": dict(mid=8192, zipf=0.6, thrash=0.0, wf=0.20),
}

_DEFAULT_HINT = dict(mid=8192, zipf=0.7, thrash=0.2, wf=0.25)

#: calibration constant compensating for mid-region accesses filtered by
#: the private caches (the Zipf head); 1.0 = no inflation, which matches
#: the measured behaviour at the default scale
_MID_BETA = 1.0


def profile_from_targets(
    name: str,
    l1: float,
    l2: float,
    llc: float,
    mid: int,
    zipf: float,
    thrash: float,
    wf: float,
) -> AppProfile:
    """Derive an :class:`AppProfile` from Table 5 MPKI targets."""
    mem = min(300.0, max(80.0, 3.2 * l1))
    p_warm = max(0.0, (l1 - l2)) / mem
    llc_hits = max(0.0, l2 - llc)
    p_mid = min(0.6, _MID_BETA * (llc_hits + thrash * llc) / mem)
    p_stream = max(0.0, (1.0 - thrash) * llc) / mem
    p_hot = max(0.0, 1.0 - p_warm - p_mid - p_stream)
    # the remainder after hot is exactly p_stream by construction
    return AppProfile(
        name,
        mem_per_kinst=mem,
        write_frac=wf,
        p_hot=p_hot,
        hot_lines=256,
        p_warm=p_warm,
        warm_lines=2048,
        p_mid=p_mid,
        mid_lines=mid,
        mid_zipf=zipf,
    )


def _build_profiles() -> dict:
    profiles = {}
    for name, (l1, l2, llc) in TABLE5_TARGETS.items():
        hint = _HINTS.get(name, _DEFAULT_HINT)
        profiles[name] = profile_from_targets(
            name, l1, l2, llc,
            mid=hint["mid"], zipf=hint["zipf"], thrash=hint["thrash"], wf=hint["wf"],
        )
    return profiles


SPEC_PROFILES = _build_profiles()
