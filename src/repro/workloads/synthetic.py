"""Synthetic reference-trace generation from :class:`AppProfile` parameters.

Each reference picks a region (hot / warm / mid / stream) by the profile's
probabilities, then an address inside that region:

* **hot** — uniform over an L1-sized footprint;
* **warm** — a cyclic sweep over an L2-resident footprint larger than L1,
  so every access misses L1 and hits L2 (carries the L1→L2 MPKI gap);
* **mid** — Zipf-skewed random (or a cyclic sweep) over the reused working
  set beyond the private L2, producing the reuse locality the SLLC observes;
* **stream** — a sequential scan over a long loop, producing the
  dead-on-arrival lines that dominate SLLC fills.

Gaps between references are geometric with mean ``1000 / mem_per_kinst``
instructions.  All randomness flows from one seed, so a (profile, seed,
n_refs, scale) tuple always produces the identical trace — experiments rely
on this to replay the same workload across cache configurations.

Region footprints are divided by ``scale`` (matching the scaled caches) and
regions are placed at disjoint offsets inside the application's address
space; multiprogrammed mixes then place each application at a distinct
high-order offset so address spaces never collide.
"""

from __future__ import annotations

import numpy as np

from .profiles import AppProfile
from .trace import Trace

#: line-address span reserved for one application's address space
APP_SPACE_BITS = 30
#: region offsets inside an application's space (line addresses)
_HOT_BASE = 0
_WARM_BASE = 1 << 25
_MID_BASE = 1 << 26
_STREAM_BASE = 1 << 27


def zipf_weights(n_items: int, s: float) -> np.ndarray:
    """Normalised Zipf(``s``) probabilities over ``n_items`` ranks."""
    if n_items <= 0:
        raise ValueError(f"n_items must be positive, got {n_items}")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-s) if s else np.ones(n_items)
    return weights / weights.sum()


def zipf_sample(rng: np.random.Generator, n_items: int, s: float, size: int) -> np.ndarray:
    """Sample ``size`` ranks in ``[0, n_items)`` with Zipf(``s``) popularity.

    Popularity is deliberately *not* aligned with address order: ranks are
    shuffled over the footprint (with a permutation drawn from ``rng``) so
    popular lines spread across cache sets.
    """
    cdf = np.cumsum(zipf_weights(n_items, s))
    ranks = np.searchsorted(cdf, rng.random(size), side="right")
    perm = rng.permutation(n_items)
    return perm[np.clip(ranks, 0, n_items - 1)]


def _scaled(lines: int, scale: int) -> int:
    return max(1, lines // scale)


def generate_trace(
    profile: AppProfile,
    n_refs: int,
    seed: int,
    scale: int = 32,
    base_addr: int = 0,
    phase_offset: float = 0.0,
) -> Trace:
    """Generate one application's reference trace.

    ``phase_offset`` (in [0, 1)) rotates the starting position of the cyclic
    and streaming patterns so multiple instances of the same application do
    not run in lockstep.
    """
    if n_refs <= 0:
        raise ValueError(f"n_refs must be positive, got {n_refs}")
    rng = np.random.default_rng(seed)

    hot_lines = _scaled(profile.hot_lines, scale)
    warm_lines = _scaled(profile.warm_lines, scale)
    mid_lines = _scaled(profile.mid_lines, scale)
    loop_lines = _scaled(profile.stream_loop_lines, scale)

    u = rng.random(n_refs)
    t_hot = profile.p_hot
    t_warm = t_hot + profile.p_warm
    t_mid = t_warm + profile.p_mid
    is_hot = u < t_hot
    is_warm = (~is_hot) & (u < t_warm)
    is_mid = (~is_hot) & (~is_warm) & (u < t_mid)
    is_stream = ~(is_hot | is_warm | is_mid)

    addrs = np.zeros(n_refs, dtype=np.int64)

    n_hot = int(is_hot.sum())
    if n_hot:
        addrs[is_hot] = _HOT_BASE + rng.integers(0, hot_lines, n_hot)

    n_warm = int(is_warm.sum())
    if n_warm:
        start = int(phase_offset * warm_lines)
        pos = (start + np.arange(n_warm, dtype=np.int64)) % warm_lines
        addrs[is_warm] = _WARM_BASE + pos

    n_mid = int(is_mid.sum())
    if n_mid:
        if profile.mid_pattern == "cyclic":
            start = int(phase_offset * mid_lines)
            pos = (start + np.arange(n_mid, dtype=np.int64)) % mid_lines
        else:
            pos = zipf_sample(rng, mid_lines, profile.mid_zipf, n_mid)
        addrs[is_mid] = _MID_BASE + pos

    n_stream = int(is_stream.sum())
    if n_stream:
        start = int(phase_offset * loop_lines)
        pos = (start + np.arange(n_stream, dtype=np.int64)) % loop_lines
        addrs[is_stream] = _STREAM_BASE + pos

    addrs += base_addr

    writes = (rng.random(n_refs) < profile.write_frac).astype(np.int8)

    p = min(1.0, profile.mem_per_kinst / 1000.0)
    gaps = rng.geometric(p, n_refs).astype(np.int64) - 1
    # Clip pathological tail gaps (they would stall a core for a huge span
    # without changing cache behaviour).
    mean_gap = 1000.0 / profile.mem_per_kinst
    np.clip(gaps, 0, int(20 * mean_gap) + 1, out=gaps)

    return Trace(
        profile.name,
        gaps.tolist(),
        addrs.tolist(),
        writes.tolist(),
    )
