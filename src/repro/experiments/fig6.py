"""Figure 6: per-workload speedup curves of the selected reuse caches
(Section 5.2): RC-8/4, RC-8/2, RC-4/1, RC-4/0.5, each sorted by speedup.

The paper's observations: RC-8/4 beats the baseline on 99/100 workloads;
RC-4/1 wins on 64/100 with extremes 1.14 / 0.82.
"""

from __future__ import annotations

from ..hierarchy.config import LLCSpec
from .common import ExperimentParams, SpeedupStudy, format_table

SELECTED_SPECS = [
    LLCSpec.reuse(8, 4),
    LLCSpec.reuse(8, 2),
    LLCSpec.reuse(4, 1),
    LLCSpec.reuse(4, 0.5),
]


def run_fig6(params: ExperimentParams, runner=None) -> dict:
    """Per-workload speedups of the selected configurations."""
    study = SpeedupStudy(params, runner=runner)
    results = study.evaluate_many(SELECTED_SPECS)
    out = {}
    for spec in SELECTED_SPECS:
        speedups = results[spec.label].speedups
        out[spec.label] = {
            "sorted_speedups": sorted(speedups),
            "wins": sum(1 for s in speedups if s > 1.0),
            "n": len(speedups),
            "min": min(speedups),
            "max": max(speedups),
            "mean": sum(speedups) / len(speedups),
        }
    return out


def format_fig6(result: dict) -> str:
    """Render the sorted speedup curves and their summary."""
    from ..metrics.textplot import line_plot

    series = {
        label: list(enumerate(d["sorted_speedups"]))
        for label, d in result.items()
    }
    plot = line_plot(
        series,
        title="Fig. 6: per-workload speedups, sorted (x = workload rank)",
    )
    rows = [
        (
            label,
            f"{d['wins']}/{d['n']}",
            f"{d['min']:.3f}",
            f"{d['mean']:.3f}",
            f"{d['max']:.3f}",
        )
        for label, d in result.items()
    ]
    table = format_table(
        ["config", "wins", "min", "mean", "max"],
        rows,
        title="Fig. 6: per-workload speedups (sorted curves summarised)",
    )
    return plot + "\n\n" + table


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("fig6"))
