"""Belady OPT bound study (an extension beyond the paper's evaluation).

The paper argues that replacement policies on conventional SLLCs were
already within ~5 % of each other and chose to shrink the cache instead.
This study quantifies the headroom directly: capture the demand stream the
SLLC observes under the baseline, then compare the *hit ratios* of

* the conventional 8 MB cache (LRU / NRR),
* the selected reuse-cache data arrays, and
* fully associative bypass-capable OPT at the same data capacities.

OPT at 1 MB vs OPT at 8 MB also shows how much of the stream's reuse is
even capturable at a downsized capacity — the headroom the reuse cache's
selective allocation exploits.
"""

from __future__ import annotations

from ..cache.belady import belady_hit_ratio
from ..hierarchy.config import LLCSpec, capacity_lines
from ..runner import Runner
from .common import BASELINE_SPEC, ExperimentParams, format_table

#: data capacities (MB) at which OPT is evaluated
CAPACITIES_MB = (8, 4, 2, 1, 0.5)

#: configurations whose measured hit ratios bracket the OPT bound
MEASURED_SPECS = (
    BASELINE_SPEC,
    LLCSpec.conventional(8, "nrr"),
    LLCSpec.reuse(8, 2),
    LLCSpec.reuse(4, 1),
)


def run_opt_bound(params: ExperimentParams, runner=None) -> dict:
    """OPT hit ratios on the captured stream plus measured ratios."""
    runner = runner if runner is not None else Runner.default()
    refs = params.workload_refs()
    capture_cells = [
        params.cell(BASELINE_SPEC, ref, capture_llc_trace=True) for ref in refs
    ]
    measured_cells = [
        params.cell(spec, ref) for spec in MEASURED_SPECS for ref in refs
    ]
    runs = runner.run_cells(capture_cells + measured_cells)

    opt = {mb: 0.0 for mb in CAPACITIES_MB}
    for run in runs[: len(refs)]:
        trace = run.extra["llc_trace"]
        for mb in CAPACITIES_MB:
            opt[mb] += belady_hit_ratio(trace, capacity_lines(mb, params.scale))

    measured = {}
    rest = iter(runs[len(refs):])
    for spec in MEASURED_SPECS:
        total = 0.0
        for _ in refs:
            stats = next(rest).llc_stats
            accesses = stats.get("accesses", 0)
            hits = stats.get("data_hits", 0)
            total += hits / accesses if accesses else 0.0
        measured[spec.label] = total / len(refs)

    n = len(refs)
    return {
        "opt": {mb: v / n for mb, v in opt.items()},
        "measured": measured,
    }


def format_opt_bound(result: dict) -> str:
    """Render the OPT-vs-measured hit-ratio table."""
    rows = [
        (f"OPT @ {mb:g} MB (FA, bypass)", f"{ratio:.1%}")
        for mb, ratio in result["opt"].items()
    ]
    rows += [
        (label, f"{ratio:.1%}") for label, ratio in result["measured"].items()
    ]
    return format_table(
        ["configuration", "SLLC data hit ratio"],
        rows,
        title="OPT bound: achievable vs measured hit ratios on the baseline "
        "demand stream",
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("opt"))
