"""Figure 5: tag-array size sweep per data-array size (Section 5.2).

For each data array (8, 4, 2 MB — plus the selected small configurations)
the tag array varies; conventional 4/8/16 MB LRU caches provide reference
lines.  The paper's finding: the optimal tag:data ratio is 4 (except where
the 2 MB of private caches bound the minimum tag array), RC-16/8 beats a
conventional 16 MB cache and RC-4/0.5 matches a conventional 4 MB one.
"""

from __future__ import annotations

from ..hierarchy.config import LLCSpec
from .common import ExperimentParams, SpeedupStudy, format_table

#: data_mb -> candidate tag MBeq values (paper Fig. 5 x-axis groups)
TAG_SWEEP = {
    8: (16, 32, 64),
    4: (8, 16, 32),
    2: (4, 8, 16),
    1: (2, 4, 8),
    0.5: (2, 4),
}

#: conventional reference lines
CONV_SIZES = (4, 8, 16)


def run_fig5(params: ExperimentParams, runner=None) -> dict:
    """Tag-size sweep per data size plus conventional reference points."""
    study = SpeedupStudy(params, runner=runner)
    reuse_specs = [
        LLCSpec.reuse(tag, data_mb)
        for data_mb, tag_options in TAG_SWEEP.items()
        for tag in tag_options
    ]
    conv_specs = [LLCSpec.conventional(size, "lru") for size in CONV_SIZES]
    evaluations = iter(study.evaluate_all(reuse_specs + conv_specs))
    reuse = {}
    for data_mb, tag_options in TAG_SWEEP.items():
        reuse[data_mb] = {
            tag: next(evaluations).mean_speedup for tag in tag_options
        }
    conventional = {
        size: next(evaluations).mean_speedup for size in CONV_SIZES
    }
    return {"reuse": reuse, "conventional": conventional}


def format_fig5(result: dict) -> str:
    """Render Fig. 5 as a bar chart plus table."""
    from ..metrics.textplot import bar_chart

    items = []
    for data_mb, per_tag in result["reuse"].items():
        for tag, sp in per_tag.items():
            items.append((f"RC-{tag}/{data_mb:g}", sp))
    for size, sp in result["conventional"].items():
        items.append((f"conv-{size}MB-lru", sp))
    chart = bar_chart(
        items,
        baseline=1.0,
        title="Fig. 5: speedup vs baseline, varying tag and data array sizes "
        "(| marks the 8 MB LRU baseline)",
    )
    rows = [(label, f"{sp:.3f}") for label, sp in items]
    return chart + "\n\n" + format_table(["config", "speedup"], rows)


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("fig5"))
