"""Replacement-policy zoo: every related-work policy on the 8 MB SLLC.

An extension of the paper's Fig. 8 comparison: besides TA-DRRIP and NRR it
covers the rest of the lineage the related-work section traces — NRU (the
commercial baseline), DIP (dynamic insertion), SRRIP, segmented LRU (the
disk-cache ancestor of reuse-aware replacement) and SHiP (signature-based
hit prediction) — against the selected reuse-cache configurations.  The
paper's framing is that *all* of these stay within a few percent of each
other while the reuse cache reaches similar performance at a fraction of the
storage.
"""

from __future__ import annotations

from ..hierarchy.config import LLCSpec
from .common import ExperimentParams, SpeedupStudy, format_table

ZOO_POLICIES = ("lru", "nru", "random", "dip", "srrip", "drrip", "slru", "ship", "nrr")
RC_REFERENCES = [LLCSpec.reuse(8, 2), LLCSpec.reuse(4, 1), LLCSpec.vway(8)]


def run_zoo(params: ExperimentParams, size_mb: float = 8, runner=None) -> dict:
    """Mean speedup of every zoo policy plus the RC/V-way references."""
    study = SpeedupStudy(params, runner=runner)
    specs = [
        LLCSpec.conventional(size_mb, policy) for policy in ZOO_POLICIES
    ] + list(RC_REFERENCES)
    return {
        r.spec.label: r.mean_speedup for r in study.evaluate_all(specs)
    }


def format_zoo(result: dict) -> str:
    """Render the zoo, sorted by speedup."""
    rows = [
        (label, f"{speedup:.3f}")
        for label, speedup in sorted(result.items(), key=lambda kv: kv[1])
    ]
    return format_table(
        ["config", "speedup vs 8MB LRU"],
        rows,
        title="Replacement zoo: related-work policies vs the reuse cache",
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("zoo"))
