"""Memory-traffic study: the cost of selective allocation (Section 5.3).

Table 6 notes the reuse cache's downside: reused lines are loaded twice,
"paying twice the main memory accessing cost".  This study quantifies the
resulting DRAM traffic — demand reads, reuse reloads and writebacks per
kilo-instruction — for the baseline and the selected reuse caches, showing
the trade the paper describes: a few percent more reads bought a 6x smaller
data array.
"""

from __future__ import annotations

from ..hierarchy.config import LLCSpec
from ..runner import Runner
from .common import BASELINE_SPEC, ExperimentParams, format_table

TRAFFIC_SPECS = [
    BASELINE_SPEC,
    LLCSpec.reuse(8, 4),
    LLCSpec.reuse(8, 2),
    LLCSpec.reuse(4, 1),
    LLCSpec.reuse(4, 0.5),
]


def run_traffic(params: ExperimentParams, runner=None) -> dict:
    """DRAM reads/reloads/writes per kilo-instruction per config."""
    runner = runner if runner is not None else Runner.default()
    refs = params.workload_refs()
    runs = iter(runner.run_cells(
        [params.cell(spec, ref) for spec in TRAFFIC_SPECS for ref in refs]
    ))
    out = {}
    for spec in TRAFFIC_SPECS:
        acc = {"reads": 0, "writes": 0, "reloads": 0, "kinst": 0.0}
        for _ in refs:
            result = next(runs)
            acc["reads"] += result.dram_stats["reads"]
            acc["writes"] += result.dram_stats["writes"]
            acc["reloads"] += result.llc_stats.get("reuse_reloads", 0)
            acc["kinst"] += sum(result.instructions) / 1000.0
        kinst = acc["kinst"] or 1.0
        out[spec.label] = {
            "reads_pki": acc["reads"] / kinst,
            "writes_pki": acc["writes"] / kinst,
            "reloads_pki": acc["reloads"] / kinst,
        }
    return out


def format_traffic(result: dict) -> str:
    """Render the traffic table, normalised to the baseline."""
    base = result["conv-8MB-lru"]
    base_total = base["reads_pki"] + base["writes_pki"]
    rows = []
    for label, t in result.items():
        total = t["reads_pki"] + t["writes_pki"]
        rows.append(
            (
                label,
                f"{t['reads_pki']:.2f}",
                f"{t['reloads_pki']:.2f}",
                f"{t['writes_pki']:.2f}",
                f"{total / base_total:.2f}x",
            )
        )
    return format_table(
        ["config", "DRAM reads/kinst", "of which reloads", "writes/kinst",
         "traffic vs baseline"],
        rows,
        title="Memory traffic: the double-fetch cost of selective allocation",
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("traffic"))
