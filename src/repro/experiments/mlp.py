"""Core-model sensitivity: do the conclusions survive latency overlap?

The paper's cores are in-order and blocking, which maximises the price of
every SLLC miss.  This extension study swaps in the 'overlap' core model
(misses within an ``mlp_window``-instruction burst overlap — a simple
stand-in for out-of-order cores) and re-measures the key comparisons.  The
expected qualitative result: memory-level parallelism hides part of the
reload cost *and* part of the baseline's miss cost, shrinking all deltas
but preserving the orderings.
"""

from __future__ import annotations

from ..hierarchy.config import LLCSpec
from ..runner import Runner
from .common import BASELINE_SPEC, ExperimentParams, format_table

#: (label, core_model, mlp_window)
CORE_MODELS = [
    ("inorder", "inorder", 0),
    ("overlap-16", "overlap", 16),
    ("overlap-64", "overlap", 64),
]

SPECS = [LLCSpec.conventional(16, "lru"), LLCSpec.reuse(8, 2), LLCSpec.reuse(4, 1)]


def run_mlp(params: ExperimentParams, runner=None) -> dict:
    """Speedups vs the same-core-model 8 MB LRU baseline, per core model."""
    runner = runner if runner is not None else Runner.default()
    refs = params.workload_refs()

    def cell_for(spec, ref, model, window):
        return params.cell(
            spec, ref, core_model=model, mlp_window=window or 32
        )

    cells = []
    for _, model, window in CORE_MODELS:
        cells.extend(cell_for(BASELINE_SPEC, ref, model, window) for ref in refs)
        cells.extend(
            cell_for(spec, ref, model, window) for spec in SPECS for ref in refs
        )
    runs = iter(runner.run_cells(cells))
    out = {}
    for label, _, _ in CORE_MODELS:
        base_perf = [next(runs).performance for _ in refs]
        per_spec = {}
        for spec in SPECS:
            total = 0.0
            for base in base_perf:
                total += next(runs).performance / base
            per_spec[spec.label] = total / len(refs)
        out[label] = per_spec
    return out


def format_mlp(result: dict) -> str:
    """Render the core-model sensitivity table."""
    models = list(result)
    labels = list(next(iter(result.values())))
    rows = [
        [label] + [f"{result[m][label]:.3f}" for m in models]
        for label in labels
    ]
    return format_table(
        ["config"] + models,
        rows,
        title="Core-model sensitivity: speedups vs the same-core 8 MB LRU "
        "baseline (overlap = simple MLP model)",
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("mlp"))
