"""Core-model sensitivity: do the conclusions survive latency overlap?

The paper's cores are in-order and blocking, which maximises the price of
every SLLC miss.  This extension study swaps in the 'overlap' core model
(misses within an ``mlp_window``-instruction burst overlap — a simple
stand-in for out-of-order cores) and re-measures the key comparisons.  The
expected qualitative result: memory-level parallelism hides part of the
reload cost *and* part of the baseline's miss cost, shrinking all deltas
but preserving the orderings.
"""

from __future__ import annotations

from dataclasses import replace

from ..hierarchy.config import LLCSpec
from ..hierarchy.system import run_workload
from .common import BASELINE_SPEC, ExperimentParams, format_table

#: (label, core_model, mlp_window)
CORE_MODELS = [
    ("inorder", "inorder", 0),
    ("overlap-16", "overlap", 16),
    ("overlap-64", "overlap", 64),
]

SPECS = [LLCSpec.conventional(16, "lru"), LLCSpec.reuse(8, 2), LLCSpec.reuse(4, 1)]


def run_mlp(params: ExperimentParams) -> dict:
    """Speedups vs the same-core-model 8 MB LRU baseline, per core model."""
    workloads = params.workloads()
    out = {}
    for label, model, window in CORE_MODELS:
        def config_for(spec):
            return replace(
                params.system_config(spec), core_model=model, mlp_window=window or 32
            )

        base_perf = [
            run_workload(config_for(BASELINE_SPEC), wl,
                         warmup_frac=params.warmup_frac).performance
            for wl in workloads
        ]
        per_spec = {}
        for spec in SPECS:
            total = 0.0
            for wl, base in zip(workloads, base_perf):
                run = run_workload(config_for(spec), wl,
                                   warmup_frac=params.warmup_frac)
                total += run.performance / base
            per_spec[spec.label] = total / len(workloads)
        out[label] = per_spec
    return out


def format_mlp(result: dict) -> str:
    """Render the core-model sensitivity table."""
    models = list(result)
    labels = list(next(iter(result.values())))
    rows = [
        [label] + [f"{result[m][label]:.3f}" for m in models]
        for label in labels
    ]
    return format_table(
        ["config"] + models,
        rows,
        title="Core-model sensitivity: speedups vs the same-core 8 MB LRU "
        "baseline (overlap = simple MLP model)",
    )
