"""Extension study: does the reuse-cache win survive scaling *out*?

The paper's argument is per-chip: at equal data RAM, selective allocation
buys more hits per byte.  This experiment replays the serving workload
against live :class:`~repro.cluster.local.LocalCluster` instances of
growing node count at **equal per-node RAM** — the scaled-out version of
the same question.  Two claims are measured:

* aggregate hit capacity: the client-observed hit rate must grow
  monotonically with node count (more nodes = more aggregate data RAM for
  the same workload footprint);
* the admission comparison one level up: at every cluster size, the
  reuse-admission cluster is also swept so the selective-allocation gain
  can be read against admit-always at cluster scale.

Unlike the figure reproductions this driver runs live asyncio servers,
not simulator cells, so the ``runner`` argument is accepted for registry
uniformity but unused — there is nothing to cache or parallelise below
the event loop.
"""

from __future__ import annotations

from ..cluster.cli import run_cluster_benchmark
from .common import ExperimentParams

#: cluster sizes the study sweeps
NODE_COUNTS = (1, 2, 3)

#: data-store entries per node, held fixed across the sweep (the
#: downsized regime where admission quality matters, cf. paper Fig. 6)
DATA_CAPACITY_PER_NODE = 256


def run_cluster_scaling(params: ExperimentParams | None = None, runner=None):
    """Sweep node counts under both admission policies; returns a dict."""
    if params is None:
        params = ExperimentParams.from_env()
    refs = min(params.n_refs, 12_000)  # live servers: keep the wall short
    sweeps = {}
    for admission in ("reuse", "always"):
        sweeps[admission] = run_cluster_benchmark(
            node_counts=list(NODE_COUNTS),
            data_capacity=DATA_CAPACITY_PER_NODE,
            admission=admission,
            refs=refs,
            scale=params.scale,
            seed=params.seed,
        )
    reuse_rates = sweeps["reuse"]["hit_rates"]
    always_rates = sweeps["always"]["hit_rates"]
    return {
        "node_counts": list(NODE_COUNTS),
        "data_capacity_per_node": DATA_CAPACITY_PER_NODE,
        "refs_per_core": refs,
        "scale": params.scale,
        "seed": params.seed,
        "reuse": sweeps["reuse"],
        "always": sweeps["always"],
        "monotonic_hit_rate": sweeps["reuse"]["monotonic_hit_rate"],
        "admission_gain_by_nodes": [
            r - a for r, a in zip(reuse_rates, always_rates)
        ],
    }


def format_cluster_scaling(result: dict) -> str:
    """Render the scaling study as aligned text rows."""
    lines = [
        f"cluster scaling — {result['data_capacity_per_node']} entries/node, "
        f"{result['refs_per_core']} refs/core (seed {result['seed']})",
        f"{'nodes':>5} {'reuse hr':>9} {'always hr':>10} {'gain':>8}",
    ]
    for i, n in enumerate(result["node_counts"]):
        reuse_hr = result["reuse"]["hit_rates"][i]
        always_hr = result["always"]["hit_rates"][i]
        lines.append(
            f"{n:>5} {reuse_hr:>9.4f} {always_hr:>10.4f} "
            f"{result['admission_gain_by_nodes'][i]:>+8.4f}"
        )
    verdict = ("grows monotonically" if result["monotonic_hit_rate"]
               else "DOES NOT grow monotonically")
    lines.append(
        f"aggregate hit capacity {verdict} with node count "
        "at equal per-node RAM"
    )
    return "\n".join(lines)
