"""Deprecation shims behind ``python -m repro.experiments.<module>``.

The experiment modules used to double as ad-hoc entry points.  The single
front door is now the registry-driven CLI::

    python -m repro run fig7 --parallel 4
    python -m repro list-experiments

Each module keeps a two-line ``__main__`` block calling
:func:`run_module_main`, which warns, then executes the module's registered
experiments through the same registry/runner path as ``repro run``.
"""

from __future__ import annotations

import sys

from ..runner import Runner
from .common import ExperimentParams


def run_module_main(*names: str) -> int:
    """Run the named registered experiments with env-derived params."""
    from .registry import get

    print(
        f"DEPRECATED: 'python -m repro.experiments.*' entry points are "
        f"superseded by 'python -m repro run {' '.join(names)}' "
        "(see 'python -m repro list-experiments')",
        file=sys.stderr,
    )
    params = ExperimentParams.from_env()
    runner = Runner.default()
    for name in names:
        spec = get(name)
        print(spec.format(spec.execute(params, runner=runner)))
    return 0
