"""Figure 11: parallel applications (Section 5.7).

Five PARSEC/SPLASH-2 applications with >1 MPKI at the baseline SLLC, run
with reuse caches from RC-8/4 down to RC-4/0.5.  The paper finds only ferret
losing performance (−1 % to −11 %); canneal and ocean gain more than 10 %
even with the smallest data arrays.
"""

from __future__ import annotations

from ..hierarchy.config import LLCSpec
from ..runner import Runner, WorkloadRef
from ..workloads.parallel import PARALLEL_APPS
from .common import BASELINE_SPEC, ExperimentParams, format_table

FIG11_SPECS = [
    LLCSpec.reuse(8, 4),
    LLCSpec.reuse(8, 2),
    LLCSpec.reuse(4, 1),
    LLCSpec.reuse(4, 0.5),
]


def run_fig11(params: ExperimentParams, runner=None) -> dict:
    """Parallel-application speedups for the Fig. 11 configurations."""
    runner = runner if runner is not None else Runner.default()
    specs = [BASELINE_SPEC] + list(FIG11_SPECS)
    cells = []
    for app in PARALLEL_APPS:
        workload = WorkloadRef.parallel(
            app, params.n_refs, seed=params.seed, scale=params.scale
        )
        cells.extend(params.cell(spec, workload) for spec in specs)
    runs = iter(runner.run_cells(cells))
    out = {}
    for app in PARALLEL_APPS:
        base = next(runs)
        per_spec = {
            spec.label: next(runs).performance / base.performance
            for spec in FIG11_SPECS
        }
        out[app] = {
            "speedups": per_spec,
            "baseline_llc_mpki": sum(base.llc_mpki) / len(base.llc_mpki),
        }
    return out


def format_fig11(result: dict) -> str:
    """Render the Fig. 11 rows."""
    headers = ["app", "LLC MPKI"] + [s.label for s in FIG11_SPECS]
    rows = []
    for app, d in result.items():
        rows.append(
            [app, f"{d['baseline_llc_mpki']:.1f}"]
            + [f"{d['speedups'][s.label]:.3f}" for s in FIG11_SPECS]
        )
    return format_table(
        headers, rows, title="Fig. 11: parallel-application speedups vs baseline"
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("fig11"))
