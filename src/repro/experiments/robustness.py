"""Scale-robustness study: do the conclusions survive the scaling knob?

DESIGN.md argues that dividing all capacities (and workload footprints) by
``scale`` preserves every *relative* result.  This study tests that claim
empirically: the key configuration comparisons are re-run at scales 64, 32
and 16 (structures 2x smaller / the default / 2x larger than the default),
and their speedups over the respective baselines are reported side by
side.  Stable orderings across a 4x scale range are the evidence that the
reproduction's conclusions are not artifacts of one chosen scale.
"""

from __future__ import annotations

from dataclasses import replace

from ..hierarchy.config import LLCSpec
from .common import ExperimentParams, SpeedupStudy, format_table

SCALES = (64, 32, 16)
PROBE_SPECS = [
    LLCSpec.conventional(16, "lru"),
    LLCSpec.conventional(8, "drrip"),
    LLCSpec.reuse(8, 2),
    LLCSpec.reuse(4, 1),
    LLCSpec.reuse(4, 0.5),
]


def run_robustness(params: ExperimentParams, runner=None) -> dict:
    """Key-configuration speedups at scales 1/64, 1/32 and 1/16."""
    out = {}
    for scale in SCALES:
        # keep trace length proportional to structure size so warm-up
        # coverage is comparable across scales
        refs = max(1000, params.n_refs * 32 // scale)
        scaled = replace(params, scale=scale, n_refs=refs)
        study = SpeedupStudy(scaled, runner=runner)
        out[scale] = {
            r.spec.label: r.mean_speedup
            for r in study.evaluate_all(PROBE_SPECS)
        }
    return out


def format_robustness(result: dict) -> str:
    """Render the cross-scale table and an ordering-stability summary."""
    scales = sorted(result)
    labels = list(next(iter(result.values())))
    rows = []
    for label in labels:
        rows.append([label] + [f"{result[s][label]:.3f}" for s in scales])
    table = format_table(
        ["config"] + [f"scale 1/{s}" for s in scales],
        rows,
        title="Scale robustness: speedups vs the same-scale 8 MB LRU baseline",
    )
    # ordering stability: count pairwise rank inversions between scales,
    # ignoring pairs closer than 1% (within run-to-run noise)
    inversions = 0
    decided_pairs = 0
    for i, a in enumerate(labels):
        for b in labels[i + 1:]:
            signs = set()
            for s in scales:
                diff = result[s][a] - result[s][b]
                if abs(diff) > 0.01:
                    signs.add(diff > 0)
            if signs:
                decided_pairs += 1
                if len(signs) > 1:
                    inversions += 1
    return table + (
        f"\nordering stability: {decided_pairs - inversions}/{decided_pairs} "
        "decided pairs agree across all scales (ties within 1% ignored)"
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("robustness"))
