"""Prefetching extension study (paper Section 6, related-work discussion).

The paper argues the reuse cache adopts prefetch-aware cache management "in
a straightforward way: simply considering prefetched lines to have a
priority as low as the non-reused data" — which is what a tag-only fill
with its NRR bit set *is*.  This study adds a sequential L2 prefetcher and
compares how a conventional cache (prefetched lines allocate data and
pollute) and a reuse cache (prefetched lines stay tag-only until demand
reuse) respond as the prefetch degree grows.
"""

from __future__ import annotations

from dataclasses import replace

from ..hierarchy.config import LLCSpec
from ..hierarchy.system import run_workload
from .common import BASELINE_SPEC, ExperimentParams, format_table

DEGREES = (0, 1, 2)
SPECS = [BASELINE_SPEC, LLCSpec.reuse(4, 1)]


def run_prefetch(params: ExperimentParams) -> dict:
    """{spec label: {degree: mean speedup vs degree-0 conventional baseline}}."""
    workloads = params.workloads()
    base_perf = [
        run_workload(params.system_config(BASELINE_SPEC), wl,
                     warmup_frac=params.warmup_frac).performance
        for wl in workloads
    ]
    out = {}
    for spec in SPECS:
        per_degree = {}
        for degree in DEGREES:
            total = 0.0
            for wl, base in zip(workloads, base_perf):
                config = replace(params.system_config(spec), prefetch_degree=degree)
                run = run_workload(config, wl, warmup_frac=params.warmup_frac)
                total += run.performance / base
            per_degree[degree] = total / len(workloads)
        out[spec.label] = per_degree
    return out


def format_prefetch(result: dict) -> str:
    """Render the prefetch-degree table."""
    rows = []
    for label, per_degree in result.items():
        for degree, speedup in per_degree.items():
            rows.append((label, degree, f"{speedup:.3f}"))
    return format_table(
        ["config", "prefetch degree", "speedup vs no-prefetch baseline"],
        rows,
        title="Extension: sequential prefetching (Section 6 discussion)",
    )
