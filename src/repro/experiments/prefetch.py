"""Prefetching extension study (paper Section 6, related-work discussion).

The paper argues the reuse cache adopts prefetch-aware cache management "in
a straightforward way: simply considering prefetched lines to have a
priority as low as the non-reused data" — which is what a tag-only fill
with its NRR bit set *is*.  This study adds a sequential L2 prefetcher and
compares how a conventional cache (prefetched lines allocate data and
pollute) and a reuse cache (prefetched lines stay tag-only until demand
reuse) respond as the prefetch degree grows.
"""

from __future__ import annotations

from ..hierarchy.config import LLCSpec
from ..runner import Runner
from .common import BASELINE_SPEC, ExperimentParams, format_table

DEGREES = (0, 1, 2)
SPECS = [BASELINE_SPEC, LLCSpec.reuse(4, 1)]


def run_prefetch(params: ExperimentParams, runner=None) -> dict:
    """{spec label: {degree: mean speedup vs degree-0 conventional baseline}}."""
    runner = runner if runner is not None else Runner.default()
    refs = params.workload_refs()
    base_cells = [params.cell(BASELINE_SPEC, ref) for ref in refs]
    sweep_cells = [
        params.cell(spec, ref, prefetch_degree=degree)
        for spec in SPECS
        for degree in DEGREES
        for ref in refs
    ]
    runs = runner.run_cells(base_cells + sweep_cells)
    base_perf = [run.performance for run in runs[: len(refs)]]
    sweep = iter(runs[len(refs):])
    out = {}
    for spec in SPECS:
        per_degree = {}
        for degree in DEGREES:
            total = 0.0
            for base in base_perf:
                total += next(sweep).performance / base
            per_degree[degree] = total / len(refs)
        out[spec.label] = per_degree
    return out


def format_prefetch(result: dict) -> str:
    """Render the prefetch-degree table."""
    rows = []
    for label, per_degree in result.items():
        for degree, speedup in per_degree.items():
            rows.append((label, degree, f"{speedup:.3f}"))
    return format_table(
        ["config", "prefetch degree", "speedup vs no-prefetch baseline"],
        rows,
        title="Extension: sequential prefetching (Section 6 discussion)",
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("prefetch"))
