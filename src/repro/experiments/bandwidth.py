"""Section 5.8: sensitivity to main-memory bandwidth.

The paper adds 2- and 4-channel memory systems and observes system
performance varying by less than 1 % for both the conventional and the
reuse cache — the extra second fetches of the reuse cache do not congest the
memory system.
"""

from __future__ import annotations

from dataclasses import replace

from ..dram.ddr3 import DDR3Config
from ..hierarchy.config import LLCSpec
from ..hierarchy.system import run_workload
from .common import BASELINE_SPEC, ExperimentParams, format_table

CHANNEL_COUNTS = (1, 2, 4)
SPECS = [BASELINE_SPEC, LLCSpec.reuse(4, 1)]


def run_bandwidth(params: ExperimentParams) -> dict:
    """Mean performance at 1/2/4 channels, normalised to 1 channel."""
    workloads = params.workloads()
    out = {}
    for spec in SPECS:
        per_channels = {}
        for channels in CHANNEL_COUNTS:
            dram = DDR3Config(channels=channels)
            perf = 0.0
            for workload in workloads:
                config = replace(
                    params.system_config(spec), dram=dram
                )
                perf += run_workload(
                    config, workload, warmup_frac=params.warmup_frac
                ).performance
            per_channels[channels] = perf / len(workloads)
        base = per_channels[1]
        out[spec.label] = {
            channels: perf / base for channels, perf in per_channels.items()
        }
    return out


def format_bandwidth(result: dict) -> str:
    """Render the Section 5.8 rows."""
    rows = []
    for label, per_channels in result.items():
        for channels, rel in per_channels.items():
            rows.append((label, channels, f"{rel:.4f}"))
    return format_table(
        ["config", "channels", "perf vs 1 channel"],
        rows,
        title="Sec. 5.8: memory-bandwidth sensitivity (paper: <1% variation)",
    )
