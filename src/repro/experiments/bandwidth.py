"""Section 5.8: sensitivity to main-memory bandwidth.

The paper adds 2- and 4-channel memory systems and observes system
performance varying by less than 1 % for both the conventional and the
reuse cache — the extra second fetches of the reuse cache do not congest the
memory system.
"""

from __future__ import annotations

from ..dram.ddr3 import DDR3Config
from ..hierarchy.config import LLCSpec
from ..runner import Runner
from .common import BASELINE_SPEC, ExperimentParams, format_table

CHANNEL_COUNTS = (1, 2, 4)
SPECS = [BASELINE_SPEC, LLCSpec.reuse(4, 1)]


def run_bandwidth(params: ExperimentParams, runner=None) -> dict:
    """Mean performance at 1/2/4 channels, normalised to 1 channel."""
    runner = runner if runner is not None else Runner.default()
    refs = params.workload_refs()
    cells = [
        params.cell(spec, ref, dram=DDR3Config(channels=channels))
        for spec in SPECS
        for channels in CHANNEL_COUNTS
        for ref in refs
    ]
    runs = iter(runner.run_cells(cells))
    out = {}
    for spec in SPECS:
        per_channels = {}
        for channels in CHANNEL_COUNTS:
            perf = sum(next(runs).performance for _ in refs)
            per_channels[channels] = perf / len(refs)
        base = per_channels[1]
        out[spec.label] = {
            channels: perf / base for channels, perf in per_channels.items()
        }
    return out


def format_bandwidth(result: dict) -> str:
    """Render the Section 5.8 rows."""
    rows = []
    for label, per_channels in result.items():
        for channels, rel in per_channels.items():
            rows.append((label, channels, f"{rel:.4f}"))
    return format_table(
        ["config", "channels", "perf vs 1 channel"],
        rows,
        title="Sec. 5.8: memory-bandwidth sensitivity (paper: <1% variation)",
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("bandwidth"))
