"""Shared experiment infrastructure.

Every figure/table driver takes an :class:`ExperimentParams` controlling the
workload count, trace length and scale.  Defaults are sized so each driver
finishes in tens of seconds; the environment variables ``REPRO_WORKLOADS``,
``REPRO_REFS``, ``REPRO_SCALE`` and ``REPRO_SEED`` raise them towards
paper-scale runs without touching code.

:class:`SpeedupStudy` evaluates a set of SLLC configurations over a common
workload suite against the paper's baseline (conventional 8 MB LRU), caching
the baseline run per workload.  Averages over workloads are arithmetic means
of per-workload speedups, matching the paper's "average speedup relative to
the baseline" reporting.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from ..hierarchy.config import LLCSpec, SystemConfig
from ..hierarchy.system import RunResult, run_workload
from ..obs.logging import get_logger
from ..workloads.mixes import build_mix_suite

log = get_logger(__name__)

#: the paper's baseline SLLC
BASELINE_SPEC = LLCSpec.conventional(8.0, "lru")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


@dataclass(frozen=True)
class ExperimentParams:
    """Knobs shared by all experiment drivers."""

    n_workloads: int = 8
    n_refs: int = 30_000
    scale: int = 32
    seed: int = 2013
    warmup_frac: float = 0.2

    @staticmethod
    def from_env() -> "ExperimentParams":
        """Defaults overridden by REPRO_WORKLOADS/REFS/SCALE/SEED."""
        p = ExperimentParams()
        return replace(
            p,
            n_workloads=_env_int("REPRO_WORKLOADS", p.n_workloads),
            n_refs=_env_int("REPRO_REFS", p.n_refs),
            scale=_env_int("REPRO_SCALE", p.scale),
            seed=_env_int("REPRO_SEED", p.seed),
        )

    def system_config(self, spec: LLCSpec, **overrides) -> SystemConfig:
        """A SystemConfig for ``spec`` at this experiment's scale/seed."""
        return SystemConfig(llc=spec, scale=self.scale, seed=self.seed, **overrides)

    def workloads(self):
        """The experiment's slice of the paper-style 100-mix suite."""
        return build_mix_suite(
            self.n_workloads, self.n_refs, scale=self.scale, seed=self.seed
        )


@dataclass
class ConfigResult:
    """Per-configuration outcome of a speedup study."""

    spec: LLCSpec
    runs: list = field(default_factory=list)
    speedups: list = field(default_factory=list)

    @property
    def mean_speedup(self) -> float:
        """Arithmetic mean of the per-workload speedups."""
        return sum(self.speedups) / len(self.speedups) if self.speedups else 0.0


class SpeedupStudy:
    """Run many SLLC configurations over one workload suite vs the baseline."""

    def __init__(
        self,
        params: ExperimentParams,
        baseline: LLCSpec = BASELINE_SPEC,
        record_generations: bool = False,
        workloads=None,
    ):
        self.params = params
        self.baseline_spec = baseline
        self.record_generations = record_generations
        self.workloads = list(workloads) if workloads is not None else params.workloads()
        self.baseline_runs = [
            self._run(baseline, wl) for wl in self.workloads
        ]

    def _run(self, spec: LLCSpec, workload) -> RunResult:
        config = self.params.system_config(spec)
        log.debug("simulating %s on %s", spec.label, workload.name)
        return run_workload(
            config,
            workload,
            record_generations=self.record_generations,
            warmup_frac=self.params.warmup_frac,
        )

    def evaluate(self, spec: LLCSpec) -> ConfigResult:
        """Run ``spec`` on every workload; returns per-workload speedups."""
        result = ConfigResult(spec)
        for workload, base in zip(self.workloads, self.baseline_runs):
            run = self._run(spec, workload)
            result.runs.append(run)
            result.speedups.append(run.performance / base.performance)
        log.info(
            "%s: mean speedup %.4f over %d workload(s)",
            spec.label, result.mean_speedup, len(result.speedups),
        )
        return result

    def evaluate_many(self, specs) -> dict:
        """label → :class:`ConfigResult` for each spec."""
        return {spec.label: self.evaluate(spec) for spec in specs}


def format_table(headers, rows, title: str | None = None) -> str:
    """Minimal fixed-width text table used by all drivers."""
    cols = [headers] + [["" if v is None else str(v) for v in row] for row in rows]
    widths = [max(len(r[i]) for r in cols) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cols[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
