"""Shared experiment infrastructure.

Every figure/table driver takes an :class:`ExperimentParams` controlling the
workload count, trace length and scale.  Defaults are sized so each driver
finishes in tens of seconds; the environment variables ``REPRO_WORKLOADS``,
``REPRO_REFS``, ``REPRO_SCALE`` and ``REPRO_SEED`` raise them towards
paper-scale runs without touching code.

:class:`SpeedupStudy` evaluates a set of SLLC configurations over a common
workload suite against the paper's baseline (conventional 8 MB LRU).  Since
PR 4 it does not simulate directly: every (configuration, workload) pair
becomes a :class:`~repro.runner.cells.Cell` executed by a
:class:`~repro.runner.engine.Runner`, which can replay cells from the
on-disk result cache and fan the rest out over worker processes — with
results byte-identical to the historical serial path (the default runner
*is* the serial path).  Averages over workloads are arithmetic means of
per-workload speedups, matching the paper's "average speedup relative to
the baseline" reporting.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from ..hierarchy.config import LLCSpec, SystemConfig
from ..obs.logging import get_logger
from ..runner import Cell, Runner, WorkloadRef, as_workload_ref
from ..workloads.mixes import build_mix_suite, make_mixes

log = get_logger(__name__)

#: the paper's baseline SLLC
BASELINE_SPEC = LLCSpec.conventional(8.0, "lru")


def _env_int(name: str, default: int, minimum: int | None = None) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise ValueError(
            f"environment variable {name} must be >= {minimum}, got {value}"
        )
    return value


@dataclass(frozen=True)
class ExperimentParams:
    """Knobs shared by all experiment drivers."""

    n_workloads: int = 8
    n_refs: int = 30_000
    scale: int = 32
    seed: int = 2013
    warmup_frac: float = 0.2

    @staticmethod
    def from_env() -> "ExperimentParams":
        """Defaults overridden by REPRO_WORKLOADS/REFS/SCALE/SEED.

        Zero or negative workload/ref/scale counts would silently produce
        empty or degenerate sweeps, so they raise :class:`ValueError`
        naming the offending variable instead.
        """
        p = ExperimentParams()
        return replace(
            p,
            n_workloads=_env_int("REPRO_WORKLOADS", p.n_workloads, minimum=1),
            n_refs=_env_int("REPRO_REFS", p.n_refs, minimum=1),
            scale=_env_int("REPRO_SCALE", p.scale, minimum=1),
            seed=_env_int("REPRO_SEED", p.seed),
        )

    def system_config(self, spec: LLCSpec, **overrides) -> SystemConfig:
        """A SystemConfig for ``spec`` at this experiment's scale/seed."""
        return SystemConfig(llc=spec, scale=self.scale, seed=self.seed, **overrides)

    def workloads(self):
        """The experiment's slice of the paper-style 100-mix suite."""
        return build_mix_suite(
            self.n_workloads, self.n_refs, scale=self.scale, seed=self.seed
        )

    def workload_refs(self) -> list:
        """Declarative refs for :meth:`workloads` (same traces, rebuilt
        on demand inside whichever process executes a cell)."""
        mixes = make_mixes(100, seed=self.seed)[: self.n_workloads]
        return [
            WorkloadRef.mix(
                mix, self.n_refs, seed=self.seed + i, scale=self.scale,
                name=f"mix{i:03d}",
            )
            for i, mix in enumerate(mixes)
        ]

    def cell(
        self,
        spec: LLCSpec,
        workload: WorkloadRef,
        record_generations: bool = False,
        capture_llc_trace: bool = False,
        **config_overrides,
    ) -> Cell:
        """One runner cell for ``spec`` × ``workload`` at these params."""
        return Cell(
            config=self.system_config(spec, **config_overrides),
            workload=workload,
            warmup_frac=self.warmup_frac,
            record_generations=record_generations,
            capture_llc_trace=capture_llc_trace,
        )


@dataclass
class ConfigResult:
    """Per-configuration outcome of a speedup study."""

    spec: LLCSpec
    runs: list = field(default_factory=list)
    speedups: list = field(default_factory=list)

    @property
    def mean_speedup(self) -> float:
        """Arithmetic mean of the per-workload speedups."""
        return sum(self.speedups) / len(self.speedups) if self.speedups else 0.0


class SpeedupStudy:
    """Run many SLLC configurations over one workload suite vs the baseline.

    All simulation goes through ``runner``; the default
    :meth:`Runner.default` is serial and uncached, i.e. exactly the
    pre-runner behaviour.  Pass a parallel/cached runner (or set
    ``REPRO_PARALLEL`` / ``REPRO_CACHE_DIR``) to accelerate sweeps.
    """

    def __init__(
        self,
        params: ExperimentParams,
        baseline: LLCSpec = BASELINE_SPEC,
        record_generations: bool = False,
        workloads=None,
        runner: Runner | None = None,
    ):
        self.params = params
        self.baseline_spec = baseline
        self.record_generations = record_generations
        self.runner = runner if runner is not None else Runner.default()
        if workloads is not None:
            self.workload_refs = [as_workload_ref(w) for w in workloads]
        else:
            self.workload_refs = params.workload_refs()
        self.baseline_runs = self.runner.run_cells(
            [self._cell(baseline, ref) for ref in self.workload_refs]
        )

    def _cell(self, spec: LLCSpec, ref: WorkloadRef) -> Cell:
        return self.params.cell(
            spec, ref, record_generations=self.record_generations
        )

    def evaluate(self, spec: LLCSpec) -> ConfigResult:
        """Run ``spec`` on every workload; returns per-workload speedups."""
        return self.evaluate_all([spec])[0]

    def evaluate_all(self, specs) -> list:
        """One :class:`ConfigResult` per spec, in submission order.

        The whole sweep is submitted as one batch, so a parallel runner
        overlaps cells across *configurations*, not just within one.
        """
        specs = list(specs)
        cells = [
            self._cell(spec, ref) for spec in specs for ref in self.workload_refs
        ]
        runs = self.runner.run_cells(cells)
        out = []
        n = len(self.workload_refs)
        for k, spec in enumerate(specs):
            result = ConfigResult(spec)
            for run, base in zip(runs[k * n:(k + 1) * n], self.baseline_runs):
                result.runs.append(run)
                result.speedups.append(run.performance / base.performance)
            log.info(
                "%s: mean speedup %.4f over %d workload(s)",
                spec.label, result.mean_speedup, len(result.speedups),
            )
            out.append(result)
        return out

    def evaluate_many(self, specs) -> dict:
        """label → :class:`ConfigResult` for each spec (labels must be
        unique; use :meth:`evaluate_all` for sweeps that revisit one)."""
        return {r.spec.label: r for r in self.evaluate_all(specs)}


def format_table(headers, rows, title: str | None = None) -> str:
    """Minimal fixed-width text table used by all drivers."""
    cols = [headers] + [["" if v is None else str(v) for v in row] for row in rows]
    widths = [max(len(r[i]) for r in cols) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cols[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
