"""Experiment drivers: one module per table/figure of the paper.

Each driver exposes ``run_<name>(params) -> dict`` and a matching
``format_<name>`` that renders the paper's rows as text.  Use
:meth:`ExperimentParams.from_env` to scale runs via ``REPRO_WORKLOADS``,
``REPRO_REFS``, ``REPRO_SCALE`` and ``REPRO_SEED``.
"""

from .ablation import (
    format_ablation,
    run_allocation_ablation,
    run_data_policy_ablation,
    run_tag_policy_ablation,
    run_threshold_ablation,
)
from .bandwidth import format_bandwidth, run_bandwidth
from .common import BASELINE_SPEC, ExperimentParams, SpeedupStudy, format_table
from .energy import format_energy, run_energy_study
from .mlp import format_mlp, run_mlp
from .opt_bound import format_opt_bound, run_opt_bound
from .prefetch import format_prefetch, run_prefetch
from .robustness import format_robustness, run_robustness
from .traffic import format_traffic, run_traffic
from .zoo import format_zoo, run_zoo
from .fig1 import format_fig1a, format_fig1b, run_fig1a, run_fig1b
from .fig4 import format_fig4, run_fig4
from .fig5 import format_fig5, run_fig5
from .fig6 import format_fig6, run_fig6
from .fig7 import format_fig7, run_fig7
from .fig8 import format_fig8, run_fig8
from .fig9 import format_fig9, matched_data_assoc, run_fig9
from .fig10 import format_fig10, run_fig10
from .fig11 import format_fig11, run_fig11
from .tables import (
    format_table2,
    format_table3,
    format_table5,
    format_table6,
    run_table2,
    run_table3,
    run_table5,
    run_table6,
)
from .registry import ExperimentSpec, all_specs, get, names, register

__all__ = [
    "ExperimentParams",
    "ExperimentSpec",
    "SpeedupStudy",
    "BASELINE_SPEC",
    "all_specs",
    "get",
    "names",
    "register",
    "format_table",
    "run_fig1a",
    "run_fig1b",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_bandwidth",
    "run_table2",
    "run_table3",
    "run_table5",
    "run_table6",
    "format_fig1a",
    "format_fig1b",
    "format_fig4",
    "format_fig5",
    "format_fig6",
    "format_fig7",
    "format_fig8",
    "format_fig9",
    "format_fig10",
    "format_fig11",
    "format_bandwidth",
    "format_table2",
    "format_table3",
    "format_table5",
    "format_table6",
    "matched_data_assoc",
    "run_tag_policy_ablation",
    "run_data_policy_ablation",
    "run_allocation_ablation",
    "run_threshold_ablation",
    "format_ablation",
    "run_zoo",
    "format_zoo",
    "run_energy_study",
    "format_energy",
    "run_traffic",
    "format_traffic",
    "run_opt_bound",
    "format_opt_bound",
    "run_prefetch",
    "format_prefetch",
    "run_robustness",
    "format_robustness",
    "run_mlp",
    "format_mlp",
]
