"""Extension study: wire-framing cost of the serving layer (v1 vs v2).

The serving stack speaks two framings of the same verb set: the v1
newline-delimited text protocol and the v2 length-prefixed binary
protocol with pipelining and batch verbs (:mod:`repro.service.protocol`).
This experiment replays one pinned workload through both framings at a
matched batched arrival order — the transport expands v2 batches to the
identical singles sequence over v1 — so the two legs *must* report the
same hit rate and differ only in wire cost.  The measured quantity is the
throughput ratio (the v2 speedup), plus both legs' absolute walls for the
perf baseline to ratchet.

Unlike the figure reproductions this driver runs a live asyncio server,
so the ``runner`` argument is not used for execution — but the two legs
are accounted into its stats as cells (label ``wire-v1`` / ``wire-v2``)
so ``repro perf record --suite service`` produces a baseline
``repro perf compare`` can gate on.
"""

from __future__ import annotations

import asyncio

from ..obs.prof import clock, cpu_clock, peak_rss_kb
from ..service.cli import _wire_one, build_service_parser
from ..workloads.mixes import EXAMPLE_MIX, build_workload
from .common import ExperimentParams

#: MGET/MSET chunk size of the batched replay (both legs)
BATCH = 64

#: store geometry, pinned (the downsized regime; admission is exercised
#: but identical across legs, so framing is the only variable)
SHARDS = 2
DATA_CAPACITY = 256


def _account(runner, label: str, wall_s: float, cpu_s: float,
             ops: int) -> None:
    """Record one live-server leg as an executed cell in ``runner.stats``."""
    if runner is None:
        return
    stats = runner.stats
    stats.run += 1
    stats.seconds += wall_s
    stats.cpu_seconds += cpu_s
    stats.peak_rss_kb = max(stats.peak_rss_kb, peak_rss_kb())
    stats.refs += ops
    stats.cells.append({
        "label": label,
        "status": "run",
        "wall_s": wall_s,
        "cpu_s": cpu_s,
        "peak_rss_kb": peak_rss_kb(),
        "refs": ops,
        "refs_per_s": ops / wall_s if wall_s > 0 else 0.0,
    })


def run_service_wire(params: ExperimentParams | None = None, runner=None):
    """Replay one workload over v1 and v2 framing; returns a dict."""
    if params is None:
        params = ExperimentParams.from_env()
    refs = min(params.n_refs, 12_000)  # live servers: keep the wall short
    args = build_service_parser().parse_args(["bench-service"])
    args.refs = refs
    args.seed = params.seed
    args.scale = params.scale
    args.shards = SHARDS
    args.data_capacity = DATA_CAPACITY
    args.batch = BATCH
    workload = build_workload(EXAMPLE_MIX, n_refs=refs, seed=params.seed,
                              scale=params.scale)
    legs = {}
    for protocol in ("v1", "v2"):
        wall0, cpu0 = clock(), cpu_clock()
        legs[protocol] = asyncio.run(_wire_one(protocol, workload, args))
        _account(runner, f"wire-{protocol}", clock() - wall0,
                 cpu_clock() - cpu0, legs[protocol]["ops"])
    v1, v2 = legs["v1"], legs["v2"]
    return {
        "workload": workload.name,
        "refs_per_core": refs,
        "scale": params.scale,
        "seed": params.seed,
        "batch": BATCH,
        "shards": SHARDS,
        "data_capacity": DATA_CAPACITY,
        "v1": v1,
        "v2": v2,
        "speedup": (v2["throughput_rps"] / v1["throughput_rps"]
                    if v1["throughput_rps"] else 0.0),
        "hit_rate_match": v1["hit_rate"] == v2["hit_rate"],
    }


def format_service_wire(result: dict) -> str:
    """Human-readable two-row table of the framing comparison."""
    lines = []
    lines.append(
        f"Service wire framing: {result['workload']} "
        f"({result['refs_per_core']} refs/core, batch {result['batch']})"
    )
    lines.append(
        f"{'framing':<8} {'hit rate':>9} {'ops':>9} "
        f"{'wall s':>8} {'rps':>10} {'p99 ms':>8}"
    )
    for name in ("v1", "v2"):
        leg = result[name]
        lines.append(
            f"{name:<8} {leg['hit_rate']:>9.4f} {leg['ops']:>9d} "
            f"{leg['wall_s']:>8.2f} {leg['throughput_rps']:>10.0f} "
            f"{leg['p99_ms']:>8.3f}"
        )
    parity = ("hit rates identical" if result["hit_rate_match"]
              else "HIT RATE MISMATCH")
    lines.append(f"v2/v1 speedup: {result['speedup']:.2f}x ({parity})")
    return "\n".join(lines)
