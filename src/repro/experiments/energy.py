"""Energy study: what downsizing buys in power (paper Section 1 motivation).

Runs the workload suite on the baseline and the selected reuse caches and
reports SLLC dynamic energy, leakage, DRAM energy and the totals — the
quantitative version of the paper's "the saved area could ... reduce power
consumption" argument, including the reload-energy downside of selective
allocation.
"""

from __future__ import annotations

from ..core.energy_model import EnergyBreakdown, run_energy
from ..hierarchy.config import LLCSpec
from ..runner import Runner
from .common import BASELINE_SPEC, ExperimentParams, format_table

ENERGY_SPECS = [
    BASELINE_SPEC,
    LLCSpec.reuse(8, 2),
    LLCSpec.reuse(4, 1),
    LLCSpec.reuse(4, 0.5),
]


def run_energy_study(params: ExperimentParams, runner=None) -> dict:
    """Average energy breakdown per configuration over the suite."""
    runner = runner if runner is not None else Runner.default()
    refs = params.workload_refs()
    runs = iter(runner.run_cells(
        [params.cell(spec, ref) for spec in ENERGY_SPECS for ref in refs]
    ))
    out = {}
    for spec in ENERGY_SPECS:
        acc = {"tag": 0.0, "data": 0.0, "leak": 0.0, "dram": 0.0, "perf": 0.0}
        for _ in refs:
            result = next(runs)
            e: EnergyBreakdown = run_energy(spec, result)
            acc["tag"] += e.tag_dynamic
            acc["data"] += e.data_dynamic
            acc["leak"] += e.leakage
            acc["dram"] += e.dram
            acc["perf"] += result.performance
        n = len(refs)
        out[spec.label] = {k: v / n for k, v in acc.items()}
    return out


def format_energy(result: dict) -> str:
    """Render the energy table, normalised to the baseline."""
    base = result["conv-8MB-lru"]
    base_total = base["tag"] + base["data"] + base["leak"] + base["dram"]
    rows = []
    for label, e in result.items():
        total = e["tag"] + e["data"] + e["leak"] + e["dram"]
        rows.append(
            (
                label,
                f"{(e['tag'] + e['data']) * 1e6:.1f}",
                f"{e['leak'] * 1e6:.1f}",
                f"{e['dram'] * 1e6:.1f}",
                f"{total / base_total:.2f}x",
            )
        )
    return format_table(
        ["config", "SLLC dyn (uJ)", "SLLC leak (uJ)", "DRAM (uJ)", "total vs baseline"],
        rows,
        title="Energy study: SLLC downsizing vs DRAM reload energy",
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("energy"))
