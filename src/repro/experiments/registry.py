"""Declarative experiment registry: the single front door to every study.

Each table/figure reproduction (and each extension study) is described by
an :class:`ExperimentSpec` — its CLI name, a human title, the ``run_*``
driver, the matching ``format_*`` renderer, and whether it consumes
:class:`~repro.experiments.common.ExperimentParams`.  The CLI
(``python -m repro run <name>`` / ``python -m repro list-experiments``),
the benchmarks under ``benchmarks/`` and the deprecation shims in the old
``python -m repro.experiments.figX`` entry points all resolve experiments
here instead of hard-coding driver functions.

Drivers accept an optional :class:`~repro.runner.Runner` so one engine
instance (and its result cache) is shared across an invocation::

    from repro.experiments.registry import get
    from repro.runner import Runner

    spec = get("fig7")
    result = spec.execute(params, runner=Runner(parallel=4))
    print(spec.format(result))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from . import ablation as _ablation
from . import bandwidth as _bandwidth
from . import cluster_scaling as _cluster_scaling
from . import energy as _energy
from . import fig1 as _fig1
from . import fig4 as _fig4
from . import fig5 as _fig5
from . import fig6 as _fig6
from . import fig7 as _fig7
from . import fig8 as _fig8
from . import fig9 as _fig9
from . import fig10 as _fig10
from . import fig11 as _fig11
from . import mlp as _mlp
from . import opt_bound as _opt_bound
from . import prefetch as _prefetch
from . import robustness as _robustness
from . import service_wire as _service_wire
from . import tables as _tables
from . import traffic as _traffic
from . import zoo as _zoo
from .common import ExperimentParams


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: how to run it and how to render it."""

    #: CLI name (``repro run <name>``)
    name: str
    #: one-line human description shown by ``repro list-experiments``
    title: str
    #: driver; called as ``run(params, runner=runner)`` when
    #: :attr:`needs_params` is true, else as ``run()``
    run: Callable
    #: renders the driver's result as the paper's text rows
    format: Callable[[object], str]
    #: whether the driver consumes :class:`ExperimentParams` and a runner
    needs_params: bool = True
    #: free-form grouping tag ("paper" or "extension")
    tags: tuple = ("paper",)
    #: optional enumerator: ``cells(params) -> list[Cell]`` for plan/preview;
    #: ``None`` when the experiment's cell set is internal to the driver
    cells: Optional[Callable] = field(default=None, compare=False)

    def execute(self, params: ExperimentParams | None = None, runner=None):
        """Run the experiment and return its raw result object."""
        if not self.needs_params:
            return self.run()
        if params is None:
            params = ExperimentParams.from_env()
        return self.run(params, runner=runner)


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add *spec* to the registry; duplicate names are a programming error."""
    if spec.name in _REGISTRY:
        raise ValueError(f"experiment {spec.name!r} registered twice")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ExperimentSpec:
    """Look up an experiment by name; raise ``KeyError`` listing valid names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; valid names: {', '.join(names())}"
        ) from None


def names() -> tuple:
    """Registered experiment names, in registration (paper) order."""
    return tuple(_REGISTRY)


def all_specs() -> tuple:
    """Every registered :class:`ExperimentSpec`, in registration order."""
    return tuple(_REGISTRY.values())


def _study_cells(*specs, record_generations: bool = False) -> Callable:
    """Cell enumerator for drivers that are a plain SpeedupStudy sweep.

    Mirrors :class:`~repro.experiments.common.SpeedupStudy` exactly — the
    baseline cells first, then one batch of spec x workload cells, with the
    same per-cell flags — so a plan preview reports precisely the cells the
    driver will request (and their true cached/dirty state).
    """

    def _cells(params: ExperimentParams) -> list:
        from .common import BASELINE_SPEC

        refs = params.workload_refs()
        return [
            params.cell(spec, ref, record_generations=record_generations)
            for spec in [BASELINE_SPEC, *specs]
            for ref in refs
        ]

    return _cells


def _ablation_format(title: str) -> Callable:
    def _format(result: dict) -> str:
        return _ablation.format_ablation(result, title)

    return _format


def _register_all() -> None:
    paper = [
        ("fig1a", "Fig 1a: example mix hit ratios under three policies",
         _fig1.run_fig1a, _fig1.format_fig1a),
        ("fig1b", "Fig 1b: line generations and reuse in the example mix",
         _fig1.run_fig1b, _fig1.format_fig1b),
        ("fig4", "Fig 4: speedup vs data capacity and associativity",
         _fig4.run_fig4, _fig4.format_fig4),
        ("fig5", "Fig 5: reuse cache vs downsized conventional caches",
         _fig5.run_fig5, _fig5.format_fig5),
        ("fig6", "Fig 6: per-mix speedups of the selected configurations",
         _fig6.run_fig6, _fig6.format_fig6),
        ("fig7", "Fig 7: speedup and hit-ratio summary of the selected RCs",
         _fig7.run_fig7, _fig7.format_fig7),
        ("fig8", "Fig 8: RC vs conventional at equal data capacity",
         _fig8.run_fig8, _fig8.format_fig8),
        ("fig9", "Fig 9: RC vs NCID at matched geometry",
         _fig9.run_fig9, _fig9.format_fig9),
        ("fig10", "Fig 10: sensitivity to DRAM latency",
         _fig10.run_fig10, _fig10.format_fig10),
        ("fig11", "Fig 11: parallel (shared-data) workloads",
         _fig11.run_fig11, _fig11.format_fig11),
        ("bandwidth", "DRAM bandwidth sensitivity (channels sweep)",
         _bandwidth.run_bandwidth, _bandwidth.format_bandwidth),
    ]
    enumerators = {
        "fig6": _study_cells(*_fig6.SELECTED_SPECS),
        "fig7": _study_cells(*_fig7.FIG7_SPECS, record_generations=True),
    }
    for name, title, run, fmt in paper:
        register(ExperimentSpec(name, title, run, fmt, tags=("paper",),
                                cells=enumerators.get(name)))

    register(ExperimentSpec(
        "table2", "Table 2: hardware cost breakdown (analytical)",
        _tables.run_table2, _tables.format_table2,
        needs_params=False, tags=("paper",),
    ))
    register(ExperimentSpec(
        "table3", "Table 3: access latency vs conventional (CACTI surrogate)",
        _tables.run_table3, _tables.format_table3,
        needs_params=False, tags=("paper",),
    ))
    register(ExperimentSpec(
        "table5", "Table 5: baseline per-application MPKIs",
        _tables.run_table5, _tables.format_table5, tags=("paper",),
    ))
    register(ExperimentSpec(
        "table6", "Table 6: data-allocation selectivity of the reuse cache",
        _tables.run_table6, _tables.format_table6, tags=("paper",),
        cells=_study_cells(*_tables.TABLE6_SPECS),
    ))

    extensions = [
        ("zoo", "Replacement-policy zoo on conventional and reuse caches",
         _zoo.run_zoo, _zoo.format_zoo),
        ("energy", "Energy study: SLLC downsizing vs DRAM reload energy",
         _energy.run_energy_study, _energy.format_energy),
        ("traffic", "Memory traffic: the double-fetch cost of selectivity",
         _traffic.run_traffic, _traffic.format_traffic),
        ("opt", "Belady OPT bound vs measured hit ratios",
         _opt_bound.run_opt_bound, _opt_bound.format_opt_bound),
        ("prefetch", "Sequential prefetching: pollution vs tag-only fills",
         _prefetch.run_prefetch, _prefetch.format_prefetch),
        ("robustness", "Robustness of the RC win across cache scales",
         _robustness.run_robustness, _robustness.format_robustness),
        ("mlp", "Core-model sensitivity (in-order vs overlap cores)",
         _mlp.run_mlp, _mlp.format_mlp),
    ]
    for name, title, run, fmt in extensions:
        register(ExperimentSpec(name, title, run, fmt, tags=("extension",)))

    register(ExperimentSpec(
        "service-wire",
        "Serving-layer wire framing: v1 text vs v2 binary at matched "
        "batched workloads",
        _service_wire.run_service_wire,
        _service_wire.format_service_wire,
        tags=("extension", "service"),
    ))

    register(ExperimentSpec(
        "cluster-scaling",
        "Cluster scaling: aggregate hit capacity vs node count at equal "
        "per-node RAM",
        _cluster_scaling.run_cluster_scaling,
        _cluster_scaling.format_cluster_scaling,
        tags=("extension", "cluster"),
    ))

    ablations = [
        ("ablation-tag", "Ablation: RC tag-array replacement policy",
         _ablation.run_tag_policy_ablation,
         "Tag-policy ablation (RC-4/1)"),
        ("ablation-data", "Ablation: RC data-array replacement policy",
         _ablation.run_data_policy_ablation,
         "Data-policy ablation (RC-4/1)"),
        ("ablation-alloc", "Ablation: selective allocation vs allocate-on-miss",
         _ablation.run_allocation_ablation,
         "Allocation ablation (1 MB data)"),
        ("ablation-threshold", "Ablation: reuse-threshold sweep",
         _ablation.run_threshold_ablation,
         "Reuse-threshold ablation (RC-4/1)"),
    ]
    for name, title, run, table_title in ablations:
        register(ExperimentSpec(
            name, title, run, _ablation_format(table_title),
            tags=("extension", "ablation"),
        ))


_register_all()
