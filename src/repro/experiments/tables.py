"""Tables 2, 3, 5 and 6 of the paper.

Tables 2 and 3 are analytical (exact bit accounting and the CACTI latency
surrogate).  Table 5 measures baseline MPKIs per application over the mix
suite; Table 6 measures the reuse cache's data-allocation selectivity.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.cost_model import table2, ways_per_kbit_summary
from ..core.latency_model import table3
from ..hierarchy.config import LLCSpec
from .common import ExperimentParams, SpeedupStudy, format_table

#: the reuse-cache configurations Table 6 reports
TABLE6_SPECS = [
    LLCSpec.reuse(8, 4),
    LLCSpec.reuse(8, 2),
    LLCSpec.reuse(4, 1),
    LLCSpec.reuse(4, 0.5),
]


def run_table2() -> dict:
    """The three Table 2 cost breakdowns (analytical, exact)."""
    return table2()


def format_table2(result: dict) -> str:
    """Render Table 2 column by column."""
    parts = ["Table 2: hardware cost"]
    conv = result["conv-8MB"]
    for breakdown in result.values():
        parts.append(ways_per_kbit_summary(breakdown))
        if breakdown is not conv:
            parts.append(f"  reduction vs conv-8MB: {breakdown.reduction_vs(conv):.1%}")
    return "\n".join(parts)


def run_table3() -> list:
    """The Table 3 latency comparisons (CACTI surrogate)."""
    return table3()


def format_table3(rows) -> str:
    """Render the Table 3 rows."""
    return format_table(
        ["Org.", "Tag acc.", "Data acc.", "Total acc."],
        [
            (r.label, f"{r.tag_delta:+.0%}", f"{r.data_delta:+.0%}", f"{r.total_delta:+.0%}")
            for r in rows
        ],
        title="Table 3: access latency vs conventional 8 MB (paper: +36%/same/+10% "
        "and +36%/-16%/-3%)",
    )


def run_table5(params: ExperimentParams, runner=None) -> dict:
    """Average per-application MPKI at L1/L2/LLC in the baseline system."""
    study = SpeedupStudy(params, runner=runner)
    sums = defaultdict(lambda: [0.0, 0.0, 0.0, 0])
    for run in study.baseline_runs:
        for core, app in enumerate(run.app_names):
            entry = sums[app]
            entry[0] += run.l1_mpki[core]
            entry[1] += run.l2_mpki[core]
            entry[2] += run.llc_mpki[core]
            entry[3] += 1
    return {
        app: {
            "l1": entry[0] / entry[3],
            "l2": entry[1] / entry[3],
            "llc": entry[2] / entry[3],
            "instances": entry[3],
        }
        for app, entry in sorted(sums.items())
    }


def format_table5(result: dict) -> str:
    """Render the measured per-application MPKI table."""
    rows = [
        (app, f"{d['l1']:.1f}", f"{d['l2']:.1f}", f"{d['llc']:.1f}", d["instances"])
        for app, d in result.items()
    ]
    return format_table(
        ["Application", "L1", "L2", "LLC", "n"],
        rows,
        title="Table 5: average MPKI per level (baseline 8 MB LRU)",
    )


def run_table6(params: ExperimentParams, runner=None) -> dict:
    """Mean/min percentage of lines never entered in the data array."""
    study = SpeedupStudy(params, runner=runner)
    results = study.evaluate_many(TABLE6_SPECS)
    out = {}
    for spec in TABLE6_SPECS:
        fractions = []
        for run in results[spec.label].runs:
            fractions.append(run.llc_stats["fraction_not_entered"])
        out[spec.label] = {
            "avg": sum(fractions) / len(fractions),
            "min": min(fractions),
        }
    out["conv-8MB-lru"] = {"avg": 0.0, "min": 0.0}
    return out


def format_table6(result: dict) -> str:
    """Render Table 6 with the paper's percentages quoted."""
    rows = [
        (label, f"{d['avg']:.1%}", f"{d['min']:.1%}")
        for label, d in result.items()
    ]
    return format_table(
        ["Config", "Avg not entered", "Min not entered"],
        rows,
        title="Table 6: lines not entered in the data array "
        "(paper avg: 93/93/95.4/95%, conventional 0%)",
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("table2", "table3", "table5", "table6"))
