"""Figure 8: reuse caches vs conventional caches with state-of-the-art
replacement (Section 5.5), annotated with storage cost in Kbits.

The paper shows RC-16/8 edging out 16 MB DRRIP/NRR at ~41 % lower cost,
RC-8/4 beating 8 MB TA-DRRIP by ~2 % at ~48 % lower cost, and RC-4/0.5
matching 4 MB DRRIP/NRR at ~80 % lower cost.
"""

from __future__ import annotations

from ..core.cost_model import figure8_storage_kbits
from ..hierarchy.config import LLCSpec
from .common import ExperimentParams, SpeedupStudy, format_table

RC_SPECS = [
    LLCSpec.reuse(16, 8),
    LLCSpec.reuse(8, 4),
    LLCSpec.reuse(8, 2),
    LLCSpec.reuse(4, 1),
    LLCSpec.reuse(4, 0.5),
]

CONV_SPECS = [
    LLCSpec.conventional(size, policy)
    for size in (4, 8, 16)
    for policy in ("drrip", "nrr")
]


def run_fig8(params: ExperimentParams, runner=None) -> dict:
    """Speedups plus exact storage Kbits for the Fig. 8 configurations."""
    study = SpeedupStudy(params, runner=runner)
    storage = figure8_storage_kbits()
    results = study.evaluate_many(list(RC_SPECS) + list(CONV_SPECS))
    out = {"reuse": {}, "conventional": {}}
    for spec in RC_SPECS:
        key = spec.label  # e.g. "RC-8/4"
        out["reuse"][key] = {
            "speedup": results[key].mean_speedup,
            "kbits": storage[key],
        }
    for spec in CONV_SPECS:
        size = int(spec.size_mb)
        kbits_key = f"conv-{size}MB-drrip" if spec.policy == "drrip" else f"conv-{size}MB"
        out["conventional"][spec.label] = {
            "speedup": results[spec.label].mean_speedup,
            "kbits": storage[kbits_key],
        }
    return out


def format_fig8(result: dict) -> str:
    """Render the Fig. 8 rows."""
    rows = []
    for group in ("reuse", "conventional"):
        for label, d in result[group].items():
            rows.append((label, f"{d['speedup']:.3f}", f"{d['kbits']:.0f}"))
    return format_table(
        ["config", "speedup", "storage (Kbits)"],
        rows,
        title="Fig. 8: speedups and storage of reuse vs conventional caches",
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("fig8"))
