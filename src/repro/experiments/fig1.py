"""Figure 1: line-usage patterns of a conventional 8 MB SLLC (Section 2).

* **Fig. 1a** — the instantaneous fraction of live SLLC lines over time for
  the example workload (gcc, mcf, povray, leslie3d, h264ref, lbm, namd, gcc)
  under LRU, with the DRRIP/NRR averages the accompanying text quotes
  (17.4 % / 34.8 % / 37.9 % for the example workload).
* **Fig. 1b** — the distribution of hits over all loaded line generations,
  split into 200 groups of 0.5 % each; the paper's headline numbers are the
  top group receiving 47 % of hits (11.5 hits/line) and only ~5 % of loaded
  lines being useful at all.
"""

from __future__ import annotations

from ..hierarchy.config import LLCSpec
from ..runner import Runner, WorkloadRef
from ..workloads.mixes import EXAMPLE_MIX
from .common import ExperimentParams, format_table


def _example_cell(params: ExperimentParams, policy: str):
    workload = WorkloadRef.mix(
        EXAMPLE_MIX, params.n_refs, seed=params.seed, scale=params.scale
    )
    return params.cell(
        LLCSpec.conventional(8.0, policy), workload, record_generations=True
    )


def run_fig1a(params: ExperimentParams, n_samples: int = 60, runner=None) -> dict:
    """Live-line fraction over time (LRU) + per-policy averages."""
    runner = runner if runner is not None else Runner.default()
    policies = ("lru", "drrip", "nrr")
    runs = runner.run_cells(
        [_example_cell(params, policy) for policy in policies]
    )
    series = {}
    averages = {}
    for policy, run in zip(policies, runs):
        log = run.generations
        span = max(1, log.end_time - log.start_time)
        interval = max(1, span // n_samples)
        times, fracs = log.live_fraction_series(interval)
        series[policy] = (times.tolist(), fracs.tolist())
        averages[policy] = log.mean_live_fraction(interval)
    return {"series": series, "averages": averages}


def run_fig1b(params: ExperimentParams, n_groups: int = 200, runner=None) -> dict:
    """Hit distribution across loaded lines for the LRU baseline."""
    runner = runner if runner is not None else Runner.default()
    run = runner.run_cell(_example_cell(params, "lru"))
    log = run.generations
    share, avg_hits = log.hit_distribution(n_groups)
    return {
        "group_share": share.tolist(),
        "group_avg_hits": avg_hits.tolist(),
        "top_group_share": float(share[0]),
        "top_group_avg_hits": float(avg_hits[0]),
        "useful_fraction": log.useful_fraction(),
        "n_generations": log.n_generations,
    }


def format_fig1a(result: dict) -> str:
    """Render Fig. 1a averages plus the LRU sample strip."""
    rows = [
        (policy, f"{avg:.1%}")
        for policy, avg in result["averages"].items()
    ]
    header = format_table(
        ["policy", "avg live fraction"], rows,
        title="Fig. 1a: average fraction of live SLLC lines (example workload)",
    )
    lru_times, lru_fracs = result["series"]["lru"]
    spark = " ".join(f"{f:.2f}" for f in lru_fracs[:20])
    return header + f"\nLRU live-fraction samples (first 20): {spark}"


def format_fig1b(result: dict) -> str:
    """Render the top Fig. 1b groups and headline fractions."""
    rows = []
    for g in range(min(15, len(result["group_share"]))):
        rows.append(
            (
                f"group {g + 1}",
                f"{result['group_share'][g]:.1%}",
                f"{result['group_avg_hits'][g]:.2f}",
            )
        )
    table = format_table(
        ["0.5% group", "share of hits", "avg hits/line"],
        rows,
        title="Fig. 1b: hit distribution across loaded lines (top groups)",
    )
    return (
        table
        + f"\nuseful lines (>=1 hit): {result['useful_fraction']:.1%}"
        + f"  (paper: ~5%)\ntop group: {result['top_group_share']:.0%} of hits"
        + " (paper: 47%)"
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("fig1a", "fig1b"))
