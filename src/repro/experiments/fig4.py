"""Figure 4: data-array size and associativity sweep (Section 5.1).

Reuse caches with an 8 MBeq tag array and data arrays of 4, 2, 1 and 0.5 MB,
each organised 16/32/64/128-way or fully associative.  The paper finds that
associativity barely matters (fully associative is slightly ahead) and that
RC-8/2 still beats the 8 MB baseline while RC-8/1 is the turning point.
"""

from __future__ import annotations

from ..hierarchy.config import LLCSpec
from .common import ExperimentParams, SpeedupStudy, format_table

DATA_SIZES_MB = (4, 2, 1, 0.5)
ASSOCIATIVITIES = (16, 32, 64, 128, "full")


def run_fig4(params: ExperimentParams, tag_mbeq: float = 8, runner=None) -> dict:
    """{data_mb: {assoc: mean speedup}} relative to the 8 MB LRU baseline."""
    study = SpeedupStudy(params, runner=runner)
    specs = [
        LLCSpec.reuse(tag_mbeq, data_mb, data_assoc=assoc)
        for data_mb in DATA_SIZES_MB
        for assoc in ASSOCIATIVITIES
    ]
    evaluations = iter(study.evaluate_all(specs))
    result = {}
    for data_mb in DATA_SIZES_MB:
        result[data_mb] = {
            str(assoc): next(evaluations).mean_speedup
            for assoc in ASSOCIATIVITIES
        }
    return result


def format_fig4(result: dict) -> str:
    """Render the Fig. 4 size x associativity grid."""
    headers = ["config"] + [f"{a}-assoc" for a in ASSOCIATIVITIES]
    rows = []
    for data_mb, per_assoc in result.items():
        rows.append(
            [f"RC-8/{data_mb:g}"] + [f"{per_assoc[str(a)]:.3f}" for a in ASSOCIATIVITIES]
        )
    return format_table(
        headers,
        rows,
        title="Fig. 4: speedup vs baseline, 8 MBeq tags, varying data size/assoc",
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("fig4"))
