"""Figure 7: average fraction of live lines (Section 5.4).

Compares the 8 MB conventional cache under LRU, DRRIP and NRR with the data
arrays of the selected reuse caches.  Paper values: 16.1 %, 35.9 %, 40.0 %
for the conventional policies and 55.1 % / 57.3 % / 48.7 % / 41.5 % for
RC-8/4 / RC-8/2 / RC-4/1 / RC-4/0.5.
"""

from __future__ import annotations

from ..hierarchy.config import LLCSpec
from .common import ExperimentParams, SpeedupStudy, format_table

FIG7_SPECS = [
    LLCSpec.conventional(8, "lru"),
    LLCSpec.conventional(8, "drrip"),
    LLCSpec.conventional(8, "nrr"),
    LLCSpec.reuse(8, 4),
    LLCSpec.reuse(8, 2),
    LLCSpec.reuse(4, 1),
    LLCSpec.reuse(4, 0.5),
]

#: paper's reported averages, for side-by-side display
PAPER_VALUES = {
    "conv-8MB-lru": 0.161,
    "conv-8MB-drrip": 0.359,
    "conv-8MB-nrr": 0.400,
    "RC-8/4": 0.551,
    "RC-8/2": 0.573,
    "RC-4/1": 0.487,
    "RC-4/0.5": 0.415,
}


def run_fig7(params: ExperimentParams, runner=None) -> dict:
    """Mean live-line fraction per configuration."""
    study = SpeedupStudy(params, record_generations=True, runner=runner)
    results = study.evaluate_many(FIG7_SPECS)
    out = {}
    for spec in FIG7_SPECS:
        fractions = [
            run.generations.mean_live_fraction()
            for run in results[spec.label].runs
        ]
        out[spec.label] = sum(fractions) / len(fractions)
    return out


def format_fig7(result: dict) -> str:
    """Render Fig. 7 with the paper's values side by side."""
    rows = [
        (label, f"{frac:.1%}", f"{PAPER_VALUES.get(label, float('nan')):.1%}")
        for label, frac in result.items()
    ]
    return format_table(
        ["config", "live fraction", "paper"],
        rows,
        title="Fig. 7: average fraction of live lines in the (data) array",
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("fig7"))
