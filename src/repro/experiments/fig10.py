"""Figure 10: per-application speedup distributions (Section 5.6).

For RC-8/4, RC-8/2 and RC-8/1, each application's speedup is measured as
the ratio of its core's IPC between the reuse-cache run and the baseline run
of the same workload; over all workloads containing the application the five
numbers (min, Q1, median, Q3, max) summarise the boxplot of Fig. 10.
"""

from __future__ import annotations

from collections import defaultdict

from ..hierarchy.config import LLCSpec
from ..metrics.perf import quartiles
from .common import ExperimentParams, SpeedupStudy, format_table

FIG10_SPECS = [
    LLCSpec.reuse(8, 4),
    LLCSpec.reuse(8, 2),
    LLCSpec.reuse(8, 1),
]


def run_fig10(params: ExperimentParams, runner=None) -> dict:
    """Per-application speedup quartiles for RC-8/4, 8/2, 8/1."""
    study = SpeedupStudy(params, runner=runner)
    results = study.evaluate_many(FIG10_SPECS)
    out = {}
    for spec in FIG10_SPECS:
        per_app = defaultdict(list)
        config_result = results[spec.label]
        for run, base in zip(config_result.runs, study.baseline_runs):
            base_ipc = base.ipc
            run_ipc = run.ipc
            for core, app in enumerate(run.app_names):
                if base_ipc[core] > 0:
                    per_app[app].append(run_ipc[core] / base_ipc[core])
        out[spec.label] = {
            app: {
                "quartiles": quartiles(vals),
                "n": len(vals),
            }
            for app, vals in sorted(per_app.items())
        }
    return out


def format_fig10(result: dict) -> str:
    """Render one quartile table per configuration."""
    blocks = []
    for label, per_app in result.items():
        rows = [
            (
                app,
                d["n"],
                *(f"{q:.2f}" for q in d["quartiles"]),
            )
            for app, d in per_app.items()
        ]
        blocks.append(
            format_table(
                ["app", "n", "min", "Q1", "median", "Q3", "max"],
                rows,
                title=f"Fig. 10 ({label}): per-application speedup distribution",
            )
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("fig10"))
