"""Ablation studies on the reuse cache's design choices.

The paper fixes three low-cost choices: NRR for the tag array, Clock/NRU
for the data array, and selective (reuse-driven) data allocation.  Section 6
argues other policies could serve; these ablations quantify how much each
choice matters on the same workload suite used by the figures:

* **tag-policy ablation** — replace NRR with LRU / SRRIP / random in the
  RC-4/1 tag array (inclusion protection stays, as the paper requires);
* **data-policy ablation** — replace Clock with NRU / LRU / random in the
  fully associative data array;
* **allocation ablation** — compare selective allocation against NCID-style
  geometry (the closest allocate-on-miss decoupled design) and against a
  conventional cache of the same data capacity, isolating how much of the
  win comes from *selectivity* rather than decoupling.
"""

from __future__ import annotations

from ..hierarchy.config import LLCSpec
from .common import ExperimentParams, SpeedupStudy, format_table

TAG_POLICIES = ("nrr", "lru", "srrip", "random")
DATA_POLICIES = ("clock", "nru", "lru", "random")


def _sweep(params, named_specs, runner=None) -> dict:
    """Evaluate ``[(name, spec), ...]`` as one runner batch."""
    study = SpeedupStudy(params, runner=runner)
    evaluations = study.evaluate_all([spec for _, spec in named_specs])
    return {
        name: result.mean_speedup
        for (name, _), result in zip(named_specs, evaluations)
    }


def run_tag_policy_ablation(params: ExperimentParams, tag_mbeq=4, data_mb=1,
                            runner=None) -> dict:
    """Swap the RC tag-array policy (NRR/LRU/SRRIP/random)."""
    return _sweep(
        params,
        [
            (policy, LLCSpec.reuse(tag_mbeq, data_mb, tag_policy=policy))
            for policy in TAG_POLICIES
        ],
        runner=runner,
    )


def run_data_policy_ablation(params: ExperimentParams, tag_mbeq=4, data_mb=1,
                             runner=None) -> dict:
    """Swap the RC data-array policy (Clock/NRU/LRU/random)."""
    return _sweep(
        params,
        [
            (policy, LLCSpec.reuse(tag_mbeq, data_mb, data_policy=policy))
            for policy in DATA_POLICIES
        ],
        runner=runner,
    )


def run_allocation_ablation(params: ExperimentParams, data_mb=1,
                            runner=None) -> dict:
    """Selective allocation vs allocate-on-miss at equal data capacity."""
    return _sweep(
        params,
        [
            ("RC-4/1 (selective)", LLCSpec.reuse(4, data_mb)),
            ("NCID-4/1 (5% duel)", LLCSpec.ncid(4, data_mb)),
            ("conv-1MB-lru", LLCSpec.conventional(data_mb, "lru")),
            ("conv-1MB-nrr", LLCSpec.conventional(data_mb, "nrr")),
        ],
        runner=runner,
    )


def run_threshold_ablation(params: ExperimentParams, tag_mbeq=4, data_mb=1,
                           runner=None) -> dict:
    """Sweep the reuse threshold: 0 (allocate-on-miss, non-selective),
    1 (the paper's second-access rule), 2 and 3 (stricter selectivity)."""
    return _sweep(
        params,
        [
            (f"threshold={k}",
             LLCSpec.reuse(tag_mbeq, data_mb, reuse_threshold=k))
            for k in (0, 1, 2, 3)
        ],
        runner=runner,
    )


def format_ablation(result: dict, title: str) -> str:
    """Render one ablation result as a text table."""
    rows = [(name, f"{sp:.3f}") for name, sp in result.items()]
    return format_table(["variant", "speedup vs 8MB LRU"], rows, title=title)


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(
        run_module_main(
            "ablation-tag", "ablation-data", "ablation-threshold", "ablation-alloc"
        )
    )
