"""Figure 9: reuse cache vs NCID (Section 5.5).

NCID ties the data array to the tag sets, so shrinking the data array
shrinks the data associativity (8 MBeq tags with a 1 MB data array leave 2
data ways per set).  For a fair comparison the paper pits NCID against reuse
caches with the *same* data-array sets and associativity; the reuse cache
wins by 7.0 / 6.4 / 5.2 / 5.3 % at 4 / 2 / 1 / 0.5 MB.
"""

from __future__ import annotations

from ..hierarchy.config import LLCSpec, capacity_lines
from .common import ExperimentParams, SpeedupStudy, format_table

DATA_SIZES_MB = (4, 2, 1, 0.5)


def matched_data_assoc(params: ExperimentParams, tag_mbeq: float, data_mb: float, banks: int = 4) -> int:
    """Data ways per set when the data array shares the tag array's sets."""
    tag_sets = capacity_lines(tag_mbeq, params.scale) // banks // 16
    data_lines = capacity_lines(data_mb, params.scale) // banks
    assoc = data_lines // tag_sets
    if assoc < 1:
        raise ValueError(
            f"NCID geometry impossible: {data_lines} data lines over {tag_sets} sets"
        )
    return assoc


def run_fig9(params: ExperimentParams, tag_mbeq: float = 8, runner=None) -> dict:
    """RC vs NCID at matched data-array geometry."""
    study = SpeedupStudy(params, runner=runner)
    assocs = {
        data_mb: matched_data_assoc(params, tag_mbeq, data_mb)
        for data_mb in DATA_SIZES_MB
    }
    specs = []
    for data_mb in DATA_SIZES_MB:
        specs.append(LLCSpec.reuse(tag_mbeq, data_mb, data_assoc=assocs[data_mb]))
        specs.append(LLCSpec.ncid(tag_mbeq, data_mb))
    evaluations = iter(study.evaluate_all(specs))
    out = {}
    for data_mb in DATA_SIZES_MB:
        rc = next(evaluations)
        ncid = next(evaluations)
        out[data_mb] = {
            "rc": rc.mean_speedup,
            "ncid": ncid.mean_speedup,
            "data_assoc": assocs[data_mb],
        }
    return out


def format_fig9(result: dict) -> str:
    """Render the Fig. 9 rows with the paper's gains quoted."""
    rows = [
        (
            f"8/{data_mb:g} ({d['data_assoc']}-way data)",
            f"{d['rc']:.3f}",
            f"{d['ncid']:.3f}",
            f"{(d['rc'] - d['ncid']) * 100:+.1f}%",
        )
        for data_mb, d in result.items()
    ]
    return format_table(
        ["config", "RC", "NCID", "RC gain"],
        rows,
        title="Fig. 9: reuse cache vs NCID (paper gains: +7.0/+6.4/+5.2/+5.3%)",
    )


if __name__ == "__main__":  # pragma: no cover - deprecation shim
    from ._shim import run_module_main

    raise SystemExit(run_module_main("fig9"))
