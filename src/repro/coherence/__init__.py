"""Coherence support: TO-MSI states, executable protocol table, directory."""

from .directory import Directory
from .extended import (
    XProtocolError,
    XState,
    XTransition,
    apply_extended,
    legal_events_extended,
    stable_states,
)
from .protocol import ProtocolError, Transition, apply, legal_events
from .states import TAG_DATA_STATES, TAG_ONLY_STATES, Event, State

__all__ = [
    "State",
    "Event",
    "TAG_DATA_STATES",
    "TAG_ONLY_STATES",
    "Transition",
    "ProtocolError",
    "apply",
    "legal_events",
    "Directory",
    "XState",
    "XTransition",
    "XProtocolError",
    "apply_extended",
    "legal_events_extended",
    "stable_states",
]
