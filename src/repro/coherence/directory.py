"""Full-map directory bookkeeping.

Each SLLC tag entry carries a presence bit vector, one bit per core (the
paper uses an 8-bit full map for the eight-core CMP).  The directory is what
lets NRR avoid evicting lines resident in private caches and what drives
coherence invalidations; keeping it in a small helper makes those rules
testable in isolation.
"""

from __future__ import annotations


class Directory:
    """Presence bit vectors for a ``num_sets`` x ``assoc`` tag array."""

    __slots__ = ("num_cores", "_bits")

    def __init__(self, num_sets: int, assoc: int, num_cores: int):
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.num_cores = num_cores
        self._bits = [[0] * assoc for _ in range(num_sets)]

    def vector(self, set_idx: int, way: int) -> int:
        """Raw presence bitmask of ``(set_idx, way)``."""
        return self._bits[set_idx][way]

    def clear(self, set_idx: int, way: int) -> None:
        """Remove every sharer of ``(set_idx, way)``."""
        self._bits[set_idx][way] = 0

    def add(self, set_idx: int, way: int, core: int) -> None:
        """Record ``core`` as a sharer."""
        self._bits[set_idx][way] |= 1 << core

    def remove(self, set_idx: int, way: int, core: int) -> None:
        """Drop ``core`` from the sharers."""
        self._bits[set_idx][way] &= ~(1 << core)

    def set_only(self, set_idx: int, way: int, core: int) -> None:
        """Make ``core`` the sole sharer (after a GETX/UPG)."""
        self._bits[set_idx][way] = 1 << core

    def is_present(self, set_idx: int, way: int, core: int) -> bool:
        """True when ``core`` holds the line privately."""
        return bool(self._bits[set_idx][way] >> core & 1)

    def in_private_caches(self, set_idx: int, way: int) -> bool:
        """True when any private cache holds the line."""
        return self._bits[set_idx][way] != 0

    def sharers(self, set_idx: int, way: int) -> list:
        """Core ids whose private caches hold the line."""
        bits = self._bits[set_idx][way]
        return [c for c in range(self.num_cores) if bits >> c & 1]

    def others(self, set_idx: int, way: int, core: int) -> list:
        """Sharers other than ``core`` (the invalidation targets of a GETX)."""
        bits = self._bits[set_idx][way] & ~(1 << core)
        return [c for c in range(self.num_cores) if bits >> c & 1]
