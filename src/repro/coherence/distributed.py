"""Distributed TO-MSI: the paper's transition table replayed across nodes.

The reuse cache's insight is that *tags are cheap*: the SLLC tracks far
more lines than it stores and moves data only on proven reuse.
:mod:`repro.cluster` replays that insight at cluster scale — each key has
one *owner* node (picked by a consistent-hash ring) whose **replica
directory** is a tag-only structure naming the peer nodes that hold a copy
of the key's value.  The directory entry walks the same stable states as
the paper's TO-MSI protocol (:mod:`repro.coherence.protocol`), with the
events reinterpreted as cluster messages:

==========  ================================================================
event       cluster meaning (owner's point of view)
==========  ================================================================
GETS        a read reaches the owner (client GET, or a replica push opening
            the key for sharing)
GETX        a write reaches the owner (client SET/DEL routed by the ring)
UPG         a write from a peer that already holds a replica
PUTS        a peer's notice that it evicted its replica
PUTX        *illegal everywhere*: replicas are read-only, writes always
            route through the owner, so no dirty copy can ever come back
DataRepl    the owner's data store evicted the value (selective allocation
            demotes to tag-only, keeping reuse history)
TagRepl     the owner's tag directory evicted the key (back to invalid)
==========  ================================================================

State meaning at the owner:

* ``I`` — key unknown;
* ``TO`` — tag tracked (seen once / declined by admission), **no value
  stored anywhere**, hence no replicas;
* ``S`` — value stored by the owner, zero or more peers hold read-only
  replicas (the directory names them);
* ``M`` — value just written; every replica has been invalidated and none
  re-pushed yet, so the owner holds the only copy.

The safety property the table encodes is the cluster's one-line contract:
**a replica may exist only while the owner's stored value is identical to
it**.  Every transition that leaves ``S`` (the only state allowing
sharers) therefore carries ``invalidates_replicas`` — the ``INVAL`` wire
verb fan-out — exactly as ``DataRepl`` demotes a line in the paper.  The
model checker (``repro check-protocol --cluster``) verifies this
*replica-safety invariant* over every (State, Event) pair along with the
coverage / reachability / data-movement checks shared with the base
tables.

Unlike the single-chip protocol there is no write-back obligation here:
the cluster is a look-aside cache, the client owns durability of the
backing store, so dropping a value never loses the newest copy.
"""

from __future__ import annotations

from dataclasses import dataclass

from .states import Event, State

__all__ = [
    "DistProtocolError",
    "DistTransition",
    "ReplicaDirectory",
    "SHARER_STATES",
    "apply_distributed",
    "legal_events",
]

#: states in which the directory may name replica holders
SHARER_STATES = (State.S,)


class DistProtocolError(Exception):
    """Raised for an event that is illegal in the given directory state."""


@dataclass(frozen=True)
class DistTransition:
    """Outcome of applying a cluster event to a directory entry.

    Field names mirror :class:`repro.coherence.protocol.Transition` so the
    devtools model checker runs its data-movement invariants unchanged;
    ``allocates_data``/``deallocates_data`` describe the *owner's* data
    store, and ``invalidates_replicas`` is the cross-node addition: the
    owner must send ``INVAL`` to every named holder (and await the acks)
    before acknowledging the triggering operation.
    """

    next_state: State
    #: the owner's data store gains the value (admission on reuse)
    allocates_data: bool = False
    #: the owner's data store loses the value
    deallocates_data: bool = False
    #: never set: a look-aside cache holds no copy newer than the backing
    #: store, so there is nothing to write back
    writeback_to_memory: bool = False
    writeback_to_data_array: bool = False
    #: every replica holder must drop its copy before the ack
    invalidates_replicas: bool = False


#: (state, event) -> DistTransition.  PUTX has no legal row anywhere:
#: replicas are read-only by construction.
_TABLE = {
    # -- invalid: key unknown to the owner -----------------------------------
    (State.I, Event.GETS): DistTransition(State.TO),
    (State.I, Event.GETX): DistTransition(State.TO),
    # -- tag-only: tracked, not stored, no replicas possible -----------------
    (State.TO, Event.GETS): DistTransition(State.S, allocates_data=True),
    (State.TO, Event.GETX): DistTransition(State.M, allocates_data=True),
    (State.TO, Event.TAG_REPL): DistTransition(State.I),
    # -- shared: stored at the owner, replicas allowed -----------------------
    (State.S, Event.GETS): DistTransition(State.S),
    (State.S, Event.GETX): DistTransition(State.M, invalidates_replicas=True),
    (State.S, Event.UPG): DistTransition(State.M, invalidates_replicas=True),
    (State.S, Event.PUTS): DistTransition(State.S),
    (State.S, Event.DATA_REPL): DistTransition(
        State.TO, deallocates_data=True, invalidates_replicas=True
    ),
    (State.S, Event.TAG_REPL): DistTransition(
        State.I, deallocates_data=True, invalidates_replicas=True
    ),
    # -- modified: stored at the owner, exclusively (post-write) -------------
    (State.M, Event.GETS): DistTransition(State.S),
    (State.M, Event.GETX): DistTransition(State.M),
    (State.M, Event.DATA_REPL): DistTransition(State.TO, deallocates_data=True),
    (State.M, Event.TAG_REPL): DistTransition(State.I, deallocates_data=True),
}


def apply_distributed(state: State, event: Event) -> DistTransition:
    """Apply a cluster ``event`` to a directory entry in ``state``."""
    try:
        return _TABLE[(state, event)]
    except KeyError:
        raise DistProtocolError(
            f"cluster event {event.value} is illegal in directory state "
            f"{state.value}"
        ) from None


def legal_events(state: State):
    """Cluster events legal in ``state`` (sorted by name, for tests/docs)."""
    return sorted((e for (s, e) in _TABLE if s is state), key=lambda e: e.value)


class ReplicaDirectory:
    """Tag-only replica directory kept by a key's owner node.

    Per key it records the TO-MSI state and the set of peer node ids that
    hold a replica, and it exposes ``note_*`` methods mapping the node's
    physical actions onto protocol events.  Every method returns the tuple
    of holders the caller must invalidate (empty when the transition does
    not demand it) — the owner node turns that into the ``INVAL`` fan-out.

    The directory is *tag-only* in the paper's sense: it never holds
    values, so tracking a key costs a few dozen bytes regardless of value
    size, and entries are pruned as soon as they carry no information
    (state ``I``, or ``TO`` — which by construction has no holders).

    Events that arrive in a state where they are illegal (for example a
    ``PUTS`` from a peer racing an ``INVAL`` that already removed it) are
    *counted*, not raised: distributed messages cannot be globally
    serialised the way the model's event sequence is, and every such race
    resolves to the entry's current, already-safe state.  The count is
    surfaced through :attr:`races` so the obs layer can expose it.
    """

    def __init__(self):
        self._state = {}  # key -> State (only S or M survive pruning)
        self._holders = {}  # key -> set of peer node ids
        #: protocol-race tolerance counter (stray PUTS etc.)
        self.races = 0

    # -- introspection -------------------------------------------------------

    def state_of(self, key: str) -> State:
        """Directory state for ``key`` (``I`` when untracked)."""
        return self._state.get(key, State.I)

    def holders_of(self, key: str) -> tuple:
        """Sorted peer ids holding a replica of ``key``."""
        return tuple(sorted(self._holders.get(key, ())))

    def __len__(self) -> int:
        return len(self._state)

    @property
    def tracked_holders(self) -> int:
        """Total replica-holder slots across every entry."""
        return sum(len(h) for h in self._holders.values())

    # -- the event core ------------------------------------------------------

    def _apply(self, key: str, event: Event, state: State | None = None) -> tuple:
        """Advance ``key`` by ``event``; returns holders to invalidate.

        ``state`` overrides the looked-up state for multi-step walks whose
        intermediate state (``TO``) is never persisted — see
        :meth:`note_admit`.  Illegal (state, event) pairs are tolerated as
        races: the entry is left untouched and ``races`` is bumped.
        """
        if state is None:
            state = self.state_of(key)
        try:
            transition = apply_distributed(state, event)
        except DistProtocolError:
            self.races += 1
            return ()
        to_invalidate = ()
        if transition.invalidates_replicas:
            to_invalidate = self.holders_of(key)
            self._holders.pop(key, None)
        nxt = transition.next_state
        if nxt in (State.S, State.M):
            self._state[key] = nxt
        else:  # I and TO carry no holder information: prune
            self._state.pop(key, None)
            self._holders.pop(key, None)
        return to_invalidate

    # -- physical actions -> events ------------------------------------------

    def note_admit(self, key: str) -> tuple:
        """The owner's store admitted a *new* value for ``key``.

        Walks the same path the store took: ``I --GETS--> TO`` on the miss
        that tagged the key, then ``TO --GETX--> M`` on the admitted SET.
        Because ``TO`` entries are never persisted (they carry no holder
        information), the intermediate state is threaded through
        explicitly rather than re-read from the pruned map.
        """
        state = self.state_of(key)
        invalidate = ()
        if state is State.I:
            invalidate += self._apply(key, Event.GETS)  # I -> TO (pruned)
            state = State.TO
        invalidate += self._apply(key, Event.GETX, state=state)
        return invalidate

    def note_update(self, key: str, writer: str | None = None) -> tuple:
        """A stored value was overwritten; returns holders to INVAL.

        ``writer`` names the peer the write came from, if any: a writing
        replica holder is the protocol's ``UPG`` (it keeps no copy either —
        the new value lives at the owner until re-pushed), anyone else is a
        plain ``GETX``.
        """
        state = self.state_of(key)
        if state is State.S and writer is not None and (
            writer in self._holders.get(key, ())
        ):
            return self._apply(key, Event.UPG)
        if state is State.S:
            return self._apply(key, Event.GETX)
        if state is State.M:
            return self._apply(key, Event.GETX)
        # racing update on an untracked/demoted key: treat as admission
        return self.note_admit(key)

    def note_replicate(self, key: str, holder: str) -> None:
        """The owner pushed its stored value for ``key`` to ``holder``."""
        self._apply(key, Event.GETS)  # M -> S (or S -> S)
        if self.state_of(key) is State.S:
            self._holders.setdefault(key, set()).add(holder)

    def note_replica_evicted(self, key: str, holder: str) -> None:
        """``holder`` notified the owner that it dropped its replica."""
        holders = self._holders.get(key)
        if holders is None or holder not in holders:
            self.races += 1  # stray PUTS racing an INVAL: already gone
            return
        self._apply(key, Event.PUTS)
        holders.discard(holder)
        if not holders:
            self._holders.pop(key, None)

    def note_data_evicted(self, key: str) -> tuple:
        """The owner's data store evicted ``key``'s value (DataRepl)."""
        return self._apply(key, Event.DATA_REPL)

    def note_dropped(self, key: str) -> tuple:
        """``key`` left the owner entirely (DEL or tag eviction: TagRepl)."""
        state = self.state_of(key)
        if state is State.I:
            return ()
        return self._apply(key, Event.TAG_REPL)
