"""Executable transition table for the TO-MSI example protocol (paper Fig. 3).

This is a *functional* rendering of the state machine: given a stable state
and an event it yields the next stable state plus the data-array actions the
transition implies.  The operational SLLC models in :mod:`repro.core` and
:mod:`repro.cache` implement the same behaviour inline for speed; this table
is the specification they are tested against.

Transitions (paper Fig. 3, Table 1):

* tag-only → tag+data on the first SLLC hit: ``TO --GETS--> S`` and
  ``TO --GETX--> M`` insert the line into the data array (reuse detected);
* tag+data → tag-only on a data-array eviction: ``S/M --DataRepl--> TO``;
* ``I --GETS/GETX--> TO`` allocates a tag without data (selective
  allocation: the first access never fills the data array);
* PUTS/PUTX do not move lines between the groups: a dirty writeback in a
  tag+data state lands in the data array (``S --PUTX--> M``); in TO the
  writeback is forwarded to memory and the state stays TO;
* a tag replacement always finishes at I.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.tracing import CAT_COHERENCE, COHERENCE_TRANSITION, NULL_TRACER
from .states import Event, State


@dataclass(frozen=True)
class Transition:
    """Outcome of applying an event to a stable state."""

    next_state: State
    #: the line enters the data array (reuse detected)
    allocates_data: bool = False
    #: the line leaves the data array
    deallocates_data: bool = False
    #: dirty data must be written back to main memory
    writeback_to_memory: bool = False
    #: dirty data is merged into the SLLC data array
    writeback_to_data_array: bool = False


class ProtocolError(Exception):
    """Raised for an event that is not legal in the given stable state."""


#: (state, event) -> Transition.  PUTX entries assume the evicted private
#: copy was dirty; PUTS entries assume it was clean.
_TABLE = {
    # -- invalid ---------------------------------------------------------------
    (State.I, Event.GETS): Transition(State.TO),
    (State.I, Event.GETX): Transition(State.TO),
    # -- tag-only ----------------------------------------------------------------
    (State.TO, Event.GETS): Transition(State.S, allocates_data=True),
    (State.TO, Event.GETX): Transition(State.M, allocates_data=True),
    # UPG in TO: the writer already holds the data; ownership moves to it and
    # the SLLC keeps only the (possibly stale) tag.
    (State.TO, Event.UPG): Transition(State.TO),
    (State.TO, Event.PUTS): Transition(State.TO),
    (State.TO, Event.PUTX): Transition(State.TO, writeback_to_memory=True),
    (State.TO, Event.TAG_REPL): Transition(State.I),
    # -- shared (tag+data, clean) ----------------------------------------------
    (State.S, Event.GETS): Transition(State.S),
    (State.S, Event.GETX): Transition(State.M),
    (State.S, Event.UPG): Transition(State.M),
    (State.S, Event.PUTS): Transition(State.S),
    (State.S, Event.PUTX): Transition(State.M, writeback_to_data_array=True),
    (State.S, Event.DATA_REPL): Transition(State.TO, deallocates_data=True),
    (State.S, Event.TAG_REPL): Transition(State.I, deallocates_data=True),
    # -- modified (tag+data, dirty) ----------------------------------------------
    (State.M, Event.GETS): Transition(State.M),
    (State.M, Event.GETX): Transition(State.M),
    (State.M, Event.UPG): Transition(State.M),
    (State.M, Event.PUTS): Transition(State.M),
    (State.M, Event.PUTX): Transition(State.M, writeback_to_data_array=True),
    (State.M, Event.DATA_REPL): Transition(
        State.TO, deallocates_data=True, writeback_to_memory=True
    ),
    (State.M, Event.TAG_REPL): Transition(
        State.I, deallocates_data=True, writeback_to_memory=True
    ),
}


# module-level tracer hook: protocol checks are rare (tests, tools, the
# devtools model checker), so a global is simpler than threading a handle
_TRACER = NULL_TRACER


def set_tracer(tracer=None) -> None:
    """Install (or with ``None`` remove) the tracer observing ``apply``."""
    global _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER


def apply(state: State, event: Event, ts: float = 0.0) -> Transition:
    """Apply ``event`` to stable ``state``; raises ProtocolError if illegal."""
    try:
        transition = _TABLE[(state, event)]
    except KeyError:
        raise ProtocolError(f"event {event.value} is illegal in state {state.value}") from None
    tr = _TRACER
    if tr.enabled:
        tr.emit(
            COHERENCE_TRANSITION, cat=CAT_COHERENCE, ts=ts,
            args={
                "from": state.value,
                "event": event.value,
                "to": transition.next_state.value,
            },
        )
    return transition


def legal_events(state: State):
    """Events legal in ``state`` (sorted by name, for tests/docs)."""
    return sorted(
        (e for (s, e) in _TABLE if s is state), key=lambda e: e.value
    )
