"""TO-MOSI: the full decoupled coherence protocol (paper footnote 2).

The paper evaluates with an MSI-MOSI protocol of seven stable states plus
"three additional stable states to track the tag-only situations"; Figure 3
shows only the simplified TO-MSI teaching version (see
:mod:`repro.coherence.protocol`).  This module provides the complete,
ownership-aware table for a single-CMP inclusive SLLC.  Stable states:

tag+data group (a data-array entry exists):

* ``S``  — clean; memory up to date; any number of clean private copies;
* ``O``  — the data-array copy is the *newest* in the system (memory
  stale); private copies, if any, are clean;
* ``M``  — memory stale and a single private owner may hold a copy newer
  than the data array's.

tag-only group (no data-array entry — the reuse cache's additions):

* ``TS`` — memory up to date; any number of clean private copies;
* ``TE`` — memory up to date; exactly one private, clean-exclusive copy
  (the state a first access creates);
* ``TM`` — memory stale; a single private owner holds the only valid copy.

plus ``I``.  The directory's presence vector augments the state with *who*
the sharers/owner are.

Key structural properties (tested in ``tests/test_coherence_extended.py``):

* data-array entries are allocated **only** by demand GETS/GETX on a
  tag-only state (reuse detection) — never on first access;
* the newest copy of a line is never silently dropped: every transition
  that could lose it either writes memory back or keeps an owner;
* a tag replacement always finishes at ``I``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .states import Event


class XState(Enum):
    """Stable states of the full TO-MOSI protocol."""

    I = "I"
    S = "S"
    O = "O"  # noqa: E741 - the canonical MOSI name
    M = "M"
    TS = "TS"
    TE = "TE"
    TM = "TM"

    @property
    def has_data(self) -> bool:
        """True for the tag+data group (S/O/M)."""
        return self in (XState.S, XState.O, XState.M)

    @property
    def tag_only(self) -> bool:
        """True for the tag-only group (TS/TE/TM)."""
        return self in (XState.TS, XState.TE, XState.TM)

    @property
    def memory_stale(self) -> bool:
        """True when main memory does not hold the newest data."""
        return self in (XState.O, XState.M, XState.TM)


@dataclass(frozen=True)
class XTransition:
    """Outcome of one event on one stable state."""

    next_state: XState
    allocates_data: bool = False
    deallocates_data: bool = False
    writeback_to_memory: bool = False
    writeback_to_data_array: bool = False
    #: data is supplied by the private owner (cache-to-cache)
    owner_supplies_data: bool = False


class XProtocolError(Exception):
    """Raised for an event that is illegal in the given stable state."""


_T = XTransition
_TABLE = {
    # -- invalid: first access allocates a tag only -----------------------------
    (XState.I, Event.GETS): _T(XState.TE),
    (XState.I, Event.GETX): _T(XState.TM),
    # -- TS: tag-only, clean ------------------------------------------------------
    (XState.TS, Event.GETS): _T(XState.S, allocates_data=True),
    (XState.TS, Event.GETX): _T(XState.M, allocates_data=True),
    (XState.TS, Event.UPG): _T(XState.TM),
    (XState.TS, Event.PUTS): _T(XState.TS),
    (XState.TS, Event.TAG_REPL): _T(XState.I),
    # -- TE: tag-only, one clean-exclusive private copy -----------------------------
    (XState.TE, Event.GETS): _T(
        XState.S, allocates_data=True, owner_supplies_data=True
    ),
    (XState.TE, Event.GETX): _T(
        XState.M, allocates_data=True, owner_supplies_data=True
    ),
    # the exclusive holder takes ownership to write (E -> M privately)
    (XState.TE, Event.UPG): _T(XState.TM),
    (XState.TE, Event.PUTS): _T(XState.TS),
    # an E copy may have been dirtied silently; its eviction carries data
    (XState.TE, Event.PUTX): _T(XState.TS, writeback_to_memory=True),
    (XState.TE, Event.TAG_REPL): _T(XState.I),
    # -- TM: tag-only, private owner holds the only valid copy ----------------------
    (XState.TM, Event.GETS): _T(
        XState.O, allocates_data=True, owner_supplies_data=True
    ),
    (XState.TM, Event.GETX): _T(
        XState.M, allocates_data=True, owner_supplies_data=True
    ),
    # the owner's eviction always carries data (no PUTS from ownership:
    # the protocol cannot tell a clean owner from a dirty one, so owners
    # must downgrade with a data-carrying PUTX)
    (XState.TM, Event.PUTX): _T(XState.TS, writeback_to_memory=True),
    # back-invalidating the owner flushes its dirty copy to memory
    (XState.TM, Event.TAG_REPL): _T(XState.I, writeback_to_memory=True),
    # -- S: tag+data, clean ----------------------------------------------------------
    (XState.S, Event.GETS): _T(XState.S),
    (XState.S, Event.GETX): _T(XState.M),
    (XState.S, Event.UPG): _T(XState.M),
    (XState.S, Event.PUTS): _T(XState.S),
    (XState.S, Event.PUTX): _T(XState.O, writeback_to_data_array=True),
    (XState.S, Event.DATA_REPL): _T(XState.TS, deallocates_data=True),
    (XState.S, Event.TAG_REPL): _T(XState.I, deallocates_data=True),
    # -- O: tag+data, data array owns the newest copy ---------------------------------
    (XState.O, Event.GETS): _T(XState.O),
    (XState.O, Event.GETX): _T(XState.M),
    (XState.O, Event.UPG): _T(XState.M),
    (XState.O, Event.PUTS): _T(XState.O),
    (XState.O, Event.PUTX): _T(XState.O, writeback_to_data_array=True),
    (XState.O, Event.DATA_REPL): _T(
        XState.TS, deallocates_data=True, writeback_to_memory=True
    ),
    (XState.O, Event.TAG_REPL): _T(
        XState.I, deallocates_data=True, writeback_to_memory=True
    ),
    # -- M: tag+data, a private owner may hold a newer copy ----------------------------
    (XState.M, Event.GETS): _T(XState.O, owner_supplies_data=True,
                               writeback_to_data_array=True),
    (XState.M, Event.GETX): _T(XState.M),
    (XState.M, Event.PUTS): _T(XState.O),
    (XState.M, Event.PUTX): _T(XState.O, writeback_to_data_array=True),
    # the owner keeps the newest copy; the stale data-array copy is dropped
    (XState.M, Event.DATA_REPL): _T(XState.TM, deallocates_data=True),
    # back-invalidation flushes the owner; the LLC copy is stale
    (XState.M, Event.TAG_REPL): _T(
        XState.I, deallocates_data=True, writeback_to_memory=True
    ),
}


def apply_extended(state: XState, event: Event) -> XTransition:
    """Apply ``event`` in ``state``; raises XProtocolError when illegal."""
    try:
        return _TABLE[(state, event)]
    except KeyError:
        raise XProtocolError(
            f"event {event.value} is illegal in state {state.value}"
        ) from None


def legal_events_extended(state: XState):
    """Events legal in ``state``, sorted by name."""
    return sorted((e for (s, e) in _TABLE if s is state), key=lambda e: e.value)


def stable_states():
    """All stable states; 7 in total — the tag-only group contributes the
    three states the paper says the reuse cache adds."""
    return list(XState)
