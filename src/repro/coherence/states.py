"""Coherence states and events for the TO-MSI protocol family (paper Fig. 3).

The reuse cache needs states that describe a line whose *tag* is resident in
the SLLC while its *data* is not — the "tag-only" (TO) group.  This module
defines the stable states and events of the simplified TO-MSI protocol the
paper uses as its running example (Table 1), shared by the executable
protocol table in :mod:`repro.coherence.protocol` and the operational SLLC
models.
"""

from __future__ import annotations

from enum import Enum


class State(Enum):
    """Stable states of the TO-MSI protocol (paper Table 1a)."""

    #: invalid / not present
    I = "I"
    #: unmodified, memory up to date, data present in the data array
    S = "S"
    #: modified, memory stale, data present in the data array
    M = "M"
    #: tag resident, no data-array entry (memory up to date *or* stale —
    #: a private cache may hold a dirty copy)
    TO = "TO"

    @property
    def has_data(self) -> bool:
        """True for the tag+data group (paper Table 1a, "Data" column)."""
        return self in (State.S, State.M)

    @property
    def tag_resident(self) -> bool:
        """True for every state except I."""
        return self is not State.I


class Event(Enum):
    """Protocol events (paper Table 1b)."""

    #: data read or fetch request from a private cache
    GETS = "GETS"
    #: write request (read-for-ownership)
    GETX = "GETX"
    #: upgrade request (write to a clean shared private copy)
    UPG = "UPG"
    #: clean eviction notification from a private cache
    PUTS = "PUTS"
    #: dirty eviction notification from a private cache
    PUTX = "PUTX"
    #: eviction in the SLLC data array
    DATA_REPL = "DataRepl"
    #: eviction of the SLLC tag entry itself
    TAG_REPL = "TagRepl"


#: states whose lines occupy a data-array entry
TAG_DATA_STATES = (State.S, State.M)

#: states occupying only a tag-array entry
TAG_ONLY_STATES = (State.TO,)
