"""Static-analysis devtools for the reuse-cache reproduction.

Three engines guard the correctness-critical surfaces of the repo:

* :mod:`repro.devtools.lint` — an AST-based lint framework with
  repo-specific rules (determinism, async hygiene, layering); run it with
  ``repro lint src``.
* :mod:`repro.devtools.flow` — flow-aware whole-repo analysis: per-function
  CFGs with suspension points, a project call graph and a shared-state
  model, powering the FLOW001 async-atomicity, FLOW002 lock-discipline
  and FLOW003 wire-protocol-conformance checks; run it with
  ``repro analyze src``.
* :mod:`repro.devtools.protocol_check` — a model checker that exhaustively
  enumerates every ``(State, Event)`` pair against the executable
  TO-MSI/TO-MOSI coherence tables; run it with ``repro check-protocol``.

All are wired into CI as a blocking job (see ``.github/workflows/ci.yml``)
and documented in ``docs/devtools.md``.  This package sits at the very top
of the layering order: it may import any ``repro`` package, and nothing
below the CLI may import it.
"""

from __future__ import annotations

from .flow import FLOW_RULES, FlowEngine, run_analyze
from .lint import Finding, LintEngine, Rule, default_rules, run_lint
from .protocol_check import (
    ProtocolFinding,
    ProtocolSpec,
    all_specs,
    base_spec,
    check_protocol,
    extended_spec,
)

__all__ = [
    "FLOW_RULES",
    "Finding",
    "FlowEngine",
    "LintEngine",
    "Rule",
    "default_rules",
    "run_analyze",
    "run_lint",
    "ProtocolFinding",
    "ProtocolSpec",
    "all_specs",
    "base_spec",
    "check_protocol",
    "extended_spec",
]
