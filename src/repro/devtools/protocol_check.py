"""Model checker for the executable coherence tables.

Exhaustively enumerates every ``(State, Event)`` pair against the TO-MSI
table (:mod:`repro.coherence.protocol`) and the full TO-MOSI table
(:mod:`repro.coherence.extended`) and reports:

* **unhandled** — a pair the protocol semantics say must be legal but the
  table has no row for (a silent ``KeyError`` waiting to corrupt a run);
* **unexpected** — a row for a pair the semantics say cannot occur;
* **bad-error** — an illegal pair that does not raise the protocol's
  dedicated error type (``ProtocolError``/``XProtocolError``), e.g. a raw
  ``KeyError`` leaking out of the lookup;
* **invariant** — a transition that moves data inconsistently (see below);
* **unreachable** — a stable state no event sequence from ``I`` reaches;
* **closure** — a transition that targets a state outside the stable set.

The data-movement invariants are the structural properties the paper's
Fig. 3 / Table 1 semantics hang on:

* ``allocates_data`` exactly when the line moves from a tag-only group
  into the tag+data group (reuse detection is the *only* way into the
  data array);
* ``deallocates_data`` exactly when it moves out of the tag+data group;
* ``TagRepl`` — and only ``TagRepl`` — ends at ``I``;
* ``DataRepl`` only fires in tag+data states and always demotes;
* a writeback into the data array requires the destination to hold data;
* when the only up-to-date copy leaves the system (a memory-stale state
  transitions to a memory-clean one) the transition must write memory
  back — the newest copy is never silently dropped.

The distributed table (:mod:`repro.coherence.distributed`) — the cluster's
owner-side replica directory — is checked with ``repro check-protocol
--cluster``.  It adds one cross-node invariant on top of the structural
ones: **replica safety** — a transition must carry
``invalidates_replicas`` exactly when it leaves a sharer state for a
non-sharer state, because those are precisely the moments the owner's
stored value stops matching what replica holders serve.  A missing flag
is a stale-read bug (peers keep serving a dead value after the ack); a
spurious flag invalidates replicas that are still identical to the
owner's copy (correct but corrosive to the read-spreading the replicas
exist for).

Which pairs are *expected* to be illegal is written out longhand in
:func:`base_spec`, :func:`extended_spec` and :func:`distributed_spec`,
with the physical reason for each; the checker fails when tables and
expectations drift apart in either direction, so adding a transition
forces the justification to be updated.  Run it with ``repro
check-protocol`` (JSON via ``--format json``); tests seed violations
through mutated :class:`ProtocolSpec` copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..coherence import distributed as _dist
from ..coherence import extended as _ext
from ..coherence import protocol as _base
from ..coherence.distributed import DistProtocolError
from ..coherence.extended import XProtocolError, XState
from ..coherence.protocol import ProtocolError
from ..coherence.states import Event, State

__all__ = [
    "ProtocolFinding",
    "ProtocolSpec",
    "all_specs",
    "base_spec",
    "check_protocol",
    "distributed_spec",
    "extended_spec",
    "format_findings_human",
    "findings_to_dict",
]


@dataclass(frozen=True)
class ProtocolFinding:
    """One defect the model checker found in a protocol table."""

    protocol: str
    kind: str  # unhandled | unexpected | bad-error | invariant | unreachable | closure
    state: str
    event: str  # "" for per-state findings (unreachable)
    message: str

    def to_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "kind": self.kind,
            "state": self.state,
            "event": self.event,
            "message": self.message,
        }


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything the checker needs to know about one protocol."""

    name: str
    states: tuple
    events: tuple
    table: dict
    initial: object
    error_type: type
    #: (state, event) pairs that are illegal *by design*; everything else
    #: must have a table row
    expected_illegal: frozenset
    #: apply function used to verify the error type on illegal pairs
    apply_fn: object = None
    #: predicate: state occupies a data-array entry
    has_data: object = None
    #: predicate: main memory does not hold the newest copy
    memory_stale: object = None
    #: events that replace the tag / the data entry
    tag_repl: object = Event.TAG_REPL
    data_repl: object = Event.DATA_REPL
    invalid: object = None
    extra: dict = field(default_factory=dict)


def base_spec() -> ProtocolSpec:
    """Spec for the simplified TO-MSI teaching protocol (paper Fig. 3)."""
    illegal = frozenset(
        {
            # nothing is tracked in I: no private copy can be upgraded or
            # evicted, and there is no tag or data entry to replace
            (State.I, Event.UPG),
            (State.I, Event.PUTS),
            (State.I, Event.PUTX),
            (State.I, Event.DATA_REPL),
            (State.I, Event.TAG_REPL),
            # TO has no data-array entry, so the data array cannot evict it
            (State.TO, Event.DATA_REPL),
        }
    )
    return ProtocolSpec(
        name="TO-MSI",
        states=tuple(State),
        events=tuple(Event),
        table=dict(_base._TABLE),
        initial=State.I,
        error_type=ProtocolError,
        expected_illegal=illegal,
        apply_fn=_base.apply,
        has_data=lambda s: s.has_data,
        # only M guarantees memory is stale; TO may be stale but the dirty
        # copy then lives in a private cache, not here
        memory_stale=lambda s: s is State.M,
        invalid=State.I,
    )


def extended_spec() -> ProtocolSpec:
    """Spec for the full TO-MOSI protocol (paper footnote 2)."""
    illegal = frozenset(
        {
            # nothing is tracked in I (as in the base protocol)
            (XState.I, Event.UPG),
            (XState.I, Event.PUTS),
            (XState.I, Event.PUTX),
            (XState.I, Event.DATA_REPL),
            (XState.I, Event.TAG_REPL),
            # tag-only states have no data-array entry to evict
            (XState.TS, Event.DATA_REPL),
            (XState.TE, Event.DATA_REPL),
            (XState.TM, Event.DATA_REPL),
            # TS tracks only *clean* sharers: no dirty eviction can arrive
            (XState.TS, Event.PUTX),
            # TM's owner is already exclusive: nothing to upgrade, and it
            # must downgrade with a data-carrying PUTX, never a PUTS
            (XState.TM, Event.UPG),
            (XState.TM, Event.PUTS),
            # M has a single (possibly newer) private owner and no clean
            # sharers, so no UPG request can be generated
            (XState.M, Event.UPG),
        }
    )
    return ProtocolSpec(
        name="TO-MOSI",
        states=tuple(XState),
        events=tuple(Event),
        table=dict(_ext._TABLE),
        initial=XState.I,
        error_type=XProtocolError,
        expected_illegal=illegal,
        apply_fn=_ext.apply_extended,
        has_data=lambda s: s.has_data,
        memory_stale=lambda s: s.memory_stale,
        invalid=XState.I,
    )


def distributed_spec() -> ProtocolSpec:
    """Spec for the cluster's distributed TO-MSI replica directory.

    Same state/event alphabet as the base protocol, reinterpreted across
    nodes (see :mod:`repro.coherence.distributed`); ``memory_stale`` is
    constant-False because the cluster is a look-aside cache — the client
    owns durability, so no transition ever carries a write-back
    obligation.  ``extra["sharer_states"]`` arms the replica-safety
    invariant.
    """
    illegal = frozenset(
        {
            # nothing is tracked in I: no replica can be upgraded from or
            # evicted at a peer, and there is no tag or data entry to
            # replace at the owner
            (State.I, Event.UPG),
            (State.I, Event.PUTS),
            (State.I, Event.PUTX),
            (State.I, Event.DATA_REPL),
            (State.I, Event.TAG_REPL),
            # TO stores no value at the owner, so nothing was ever
            # replicated: no peer can upgrade (UPG) or drop (PUTS) a
            # replica, and the owner's data store holds nothing to evict
            (State.TO, Event.UPG),
            (State.TO, Event.PUTS),
            (State.TO, Event.DATA_REPL),
            # M is post-write exclusive: every replica was invalidated
            # before the ack, so no peer holds a copy to upgrade or drop
            (State.M, Event.UPG),
            (State.M, Event.PUTS),
            # PUTX is illegal EVERYWHERE: replicas are read-only by
            # construction (writes always route to the owner), so no
            # dirty copy can ever come back from a peer
            (State.TO, Event.PUTX),
            (State.S, Event.PUTX),
            (State.M, Event.PUTX),
        }
    )
    return ProtocolSpec(
        name="TO-MSI-cluster",
        states=tuple(State),
        events=tuple(Event),
        table=dict(_dist._TABLE),
        initial=State.I,
        error_type=DistProtocolError,
        expected_illegal=illegal,
        apply_fn=_dist.apply_distributed,
        has_data=lambda s: s.has_data,
        # look-aside cache: the backing store is the client's problem, so
        # the cluster never holds the only up-to-date copy
        memory_stale=lambda s: False,
        invalid=State.I,
        extra={"sharer_states": tuple(_dist.SHARER_STATES)},
    )


def all_specs(cluster: bool = False) -> list:
    """The specs ``repro check-protocol`` verifies, in report order.

    ``cluster=True`` appends the distributed replica-directory spec
    (``repro check-protocol --cluster``).
    """
    specs = [base_spec(), extended_spec()]
    if cluster:
        specs.append(distributed_spec())
    return specs


# -- the checker ------------------------------------------------------------


def _check_coverage(spec: ProtocolSpec, out: list) -> None:
    handled = set(spec.table)
    for state in spec.states:
        for event in spec.events:
            pair = (state, event)
            expected = pair not in spec.expected_illegal
            if expected and pair not in handled:
                out.append(
                    ProtocolFinding(
                        spec.name, "unhandled", state.value, event.value,
                        f"legal pair ({state.value}, {event.value}) has no "
                        "transition — a lookup would raise instead of "
                        "advancing the line",
                    )
                )
            elif not expected and pair in handled:
                out.append(
                    ProtocolFinding(
                        spec.name, "unexpected", state.value, event.value,
                        f"({state.value}, {event.value}) is illegal by the "
                        "protocol semantics but the table defines it; "
                        "update the expected-illegal justification if this "
                        "transition is intentional",
                    )
                )


def _check_error_type(spec: ProtocolSpec, out: list) -> None:
    if spec.apply_fn is None:
        return
    for state, event in sorted(
        spec.expected_illegal, key=lambda p: (p[0].value, p[1].value)
    ):
        if (state, event) in spec.table:
            continue  # already reported as "unexpected"
        try:
            spec.apply_fn(state, event)
        except spec.error_type:
            continue
        except Exception as exc:
            out.append(
                ProtocolFinding(
                    spec.name, "bad-error", state.value, event.value,
                    f"illegal pair raised {type(exc).__name__} instead of "
                    f"{spec.error_type.__name__}",
                )
            )
        else:
            out.append(
                ProtocolFinding(
                    spec.name, "bad-error", state.value, event.value,
                    "illegal pair did not raise "
                    f"{spec.error_type.__name__}",
                )
            )


def _check_invariants(spec: ProtocolSpec, out: list) -> None:
    has_data = spec.has_data
    for (state, event), transition in spec.table.items():
        dst = transition.next_state

        def bad(message, _s=state, _e=event):
            out.append(
                ProtocolFinding(
                    spec.name, "invariant", _s.value, _e.value, message
                )
            )

        if dst not in spec.states:
            out.append(
                ProtocolFinding(
                    spec.name, "closure", state.value, event.value,
                    f"transition targets {dst!r}, not a stable state",
                )
            )
            continue
        enters_data = not has_data(state) and has_data(dst)
        leaves_data = has_data(state) and not has_data(dst)
        if transition.allocates_data != enters_data:
            bad(
                f"allocates_data={transition.allocates_data} but the line "
                f"{'enters' if enters_data else 'does not enter'} the data "
                f"array ({state.value} -> {dst.value})"
            )
        if transition.deallocates_data != leaves_data:
            bad(
                f"deallocates_data={transition.deallocates_data} but the "
                f"line {'leaves' if leaves_data else 'does not leave'} the "
                f"data array ({state.value} -> {dst.value})"
            )
        if event == spec.tag_repl and dst is not spec.invalid:
            bad(f"tag replacement must end at {spec.invalid.value}, "
                f"ends at {dst.value}")
        if event != spec.tag_repl and dst is spec.invalid:
            bad(f"only tag replacement may invalidate, {event.value} does")
        if event == spec.data_repl and not (has_data(state) and not has_data(dst)):
            bad("a data-array eviction must demote tag+data to tag-only")
        if transition.writeback_to_data_array and not has_data(dst):
            bad("writeback_to_data_array targets a state without a data "
                "entry")
        if spec.memory_stale is not None:
            if (
                spec.memory_stale(state)
                and not spec.memory_stale(dst)
                and not transition.writeback_to_memory
            ):
                bad(
                    f"{state.value} -> {dst.value} drops the only "
                    "up-to-date copy without writing memory back"
                )


def _check_replica_safety(spec: ProtocolSpec, out: list) -> None:
    """Cross-node invariant for distributed specs (keyed by ``extra``).

    A replica may exist only while the owner's stored value is identical
    to it, so a transition must carry ``invalidates_replicas`` exactly
    when it leaves a sharer state for a non-sharer state: missing means
    stale reads survive the ack, spurious means needlessly destroying
    replicas that still match the owner's copy.
    """
    sharers = spec.extra.get("sharer_states")
    if not sharers:
        return
    for (state, event), transition in spec.table.items():
        dst = transition.next_state
        must_invalidate = state in sharers and dst not in sharers
        does = getattr(transition, "invalidates_replicas", False)
        if does != must_invalidate:
            why = (
                "leaves a sharer state for a non-sharer state, so every "
                "replica holder must be invalidated before the ack"
                if must_invalidate
                else "keeps (or never had) sharers, so invalidating "
                "replicas here destroys copies still identical to the "
                "owner's value"
            )
            out.append(
                ProtocolFinding(
                    spec.name, "replica-safety", state.value, event.value,
                    f"invalidates_replicas={does} but {state.value} -> "
                    f"{dst.value} {why}",
                )
            )


def _check_reachability(spec: ProtocolSpec, out: list) -> None:
    reached = {spec.initial}
    frontier = [spec.initial]
    while frontier:
        state = frontier.pop()
        for (src, _event), transition in spec.table.items():
            if src is state and transition.next_state not in reached:
                if transition.next_state in spec.states:
                    reached.add(transition.next_state)
                    frontier.append(transition.next_state)
    for state in spec.states:
        if state not in reached:
            out.append(
                ProtocolFinding(
                    spec.name, "unreachable", state.value, "",
                    f"no event sequence from {spec.initial.value} reaches "
                    f"{state.value}",
                )
            )


def check_protocol(spec: ProtocolSpec) -> list:
    """All findings for one protocol spec (empty list = table is sound)."""
    findings: list = []
    _check_coverage(spec, findings)
    _check_error_type(spec, findings)
    _check_invariants(spec, findings)
    _check_replica_safety(spec, findings)
    _check_reachability(spec, findings)
    return findings


def check_all(specs=None) -> list:
    """Check every spec (default: both shipped protocols)."""
    findings = []
    for spec in specs if specs is not None else all_specs():
        findings.extend(check_protocol(spec))
    return findings


def with_table(spec: ProtocolSpec, table: dict) -> ProtocolSpec:
    """A copy of ``spec`` using ``table`` — the hook tests use to seed
    violations.  The apply function is rebuilt over the new table so
    error-type checking exercises the mutated dict."""

    def apply_fn(state, event):
        try:
            return table[(state, event)]
        except KeyError:
            raise spec.error_type(
                f"event {event.value} is illegal in state {state.value}"
            ) from None

    return replace(spec, table=dict(table), apply_fn=apply_fn)


# -- output -----------------------------------------------------------------


def format_findings_human(findings, specs) -> str:
    """Human-readable report mirroring the lint output shape."""
    lines = [
        f"{f.protocol}: [{f.kind}] ({f.state}"
        + (f", {f.event}" if f.event else "")
        + f") {f.message}"
        for f in findings
    ]
    checked = ", ".join(
        f"{spec.name}: {len(spec.states)} states x {len(spec.events)} "
        f"events, {len(spec.table)} transitions"
        for spec in specs
    )
    lines.append(f"{len(findings)} finding(s) — checked {checked}")
    return "\n".join(lines)


def findings_to_dict(findings, specs) -> dict:
    """JSON-ready report (schema asserted in tests)."""
    return {
        "version": 1,
        "protocols": [
            {
                "name": spec.name,
                "states": [s.value for s in spec.states],
                "events": [e.value for e in spec.events],
                "transitions": len(spec.table),
                "expected_illegal": sorted(
                    [s.value, e.value] for s, e in spec.expected_illegal
                ),
            }
            for spec in specs
        ],
        "findings": [f.to_dict() for f in findings],
    }
