"""CLI for the static checks: ``repro lint`` / ``analyze`` / ``check-protocol``.

All three commands exit 0 when clean and 1 when they report findings, so
CI can gate on them (the ``lint`` job in ``.github/workflows/ci.yml``
runs all of them before the test matrix).  ``--format json`` emits the
machine-readable reports whose schemas are pinned by
``tests/test_lint.py``, ``tests/test_flow.py`` and
``tests/test_protocol_check.py``.

``repro analyze`` additionally takes ``--baseline <file>`` — the
committed ratchet that suppresses recorded findings but fails when any
(rule, file) count grows; see :mod:`repro.devtools.flow.cli`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import protocol_check
from .flow import FLOW_RULES
from .flow.cli import apply_baseline, load_baseline, run_analyze
from .lint import RULES, format_human, format_json, run_lint

#: CLI names handled by this module (dispatched from repro.__main__)
DEVTOOLS_COMMANDS = ("lint", "analyze", "check-protocol")


def build_devtools_parser() -> argparse.ArgumentParser:
    """Argument parser for the devtools subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Static checks for the reuse-cache reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser(
        "lint", help="run the repo-specific AST linter (REP001-REP012)"
    )
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src, else cwd)",
    )
    lint.add_argument("--format", choices=("human", "json"), default="human")
    lint.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )

    analyze = sub.add_parser(
        "analyze",
        help="run the flow analyses (FLOW001-FLOW003): async-atomicity, "
             "lock discipline, wire-protocol conformance",
    )
    analyze.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to analyze (default: src, else cwd)",
    )
    analyze.add_argument(
        "--format", choices=("human", "json"), default="human"
    )
    analyze.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    analyze.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress findings recorded in FILE; fail only when a "
             "(rule, file) count grows",
    )
    analyze.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )

    check = sub.add_parser(
        "check-protocol",
        help="model-check the TO-MSI / TO-MOSI coherence tables",
    )
    check.add_argument("--format", choices=("human", "json"), default="human")
    check.add_argument(
        "--cluster", action="store_true",
        help="also check the distributed replica-directory table "
             "(repro.coherence.distributed), including replica safety",
    )
    return parser


def default_lint_paths() -> list:
    """``src`` when run from the repo root, else the current directory."""
    return ["src"] if Path("src").is_dir() else ["."]


def rule_description(cls) -> str:
    """One-line description of a rule: first docstring line, else attr."""
    doc = (cls.__doc__ or "").strip()
    if doc:
        return doc.splitlines()[0].strip()
    return cls.description


def print_rules(rule_map) -> None:
    """``--list-rules`` output: id, slug, severity, one-line description."""
    for cls in rule_map.values():
        print(
            f"{cls.id}  {cls.name:<24} [{cls.severity}] "
            f"{rule_description(cls)}"
        )


def _parse_select(raw):
    if not raw:
        return None
    return {code.strip().upper() for code in raw.split(",")}


def lint_main(args) -> int:
    """Entry for ``repro lint``; returns the process exit code."""
    if args.list_rules:
        print_rules(RULES)
        return 0
    try:
        findings, engine = run_lint(
            args.paths or default_lint_paths(), _parse_select(args.select)
        )
    except ValueError as exc:  # unknown --select code
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(findings, engine.files_checked, engine.rules))
    else:
        print(format_human(findings, engine.files_checked))
    return 1 if findings else 0


def analyze_main(args) -> int:
    """Entry for ``repro analyze``; returns the process exit code."""
    if args.list_rules:
        print_rules(FLOW_RULES)
        return 0
    try:
        findings, engine = run_analyze(
            args.paths or default_lint_paths(), _parse_select(args.select)
        )
    except ValueError as exc:  # unknown --select code
        print(str(exc), file=sys.stderr)
        return 2
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        findings, suppressed = apply_baseline(findings, baseline)
        engine.suppressed += suppressed
    if args.format == "json":
        print(format_json(findings, engine.files_checked, engine.rules))
    else:
        print(format_human(findings, engine.files_checked))
    return 1 if findings else 0


def check_protocol_main(args) -> int:
    """Entry for ``repro check-protocol``; returns the process exit code."""
    specs = protocol_check.all_specs(cluster=getattr(args, "cluster", False))
    findings = protocol_check.check_all(specs)
    if args.format == "json":
        print(
            json.dumps(
                protocol_check.findings_to_dict(findings, specs), indent=2
            )
        )
    else:
        print(protocol_check.format_findings_human(findings, specs))
    return 1 if findings else 0


def main(argv=None) -> int:
    """Dispatch a devtools subcommand (called from ``repro.__main__``)."""
    args = build_devtools_parser().parse_args(argv)
    if args.command == "lint":
        return lint_main(args)
    if args.command == "analyze":
        return analyze_main(args)
    return check_protocol_main(args)


if __name__ == "__main__":
    sys.exit(main())
