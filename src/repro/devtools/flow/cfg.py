"""Per-function control-flow graphs with suspension points.

The flow analyses (:mod:`repro.devtools.flow.checks`) reason about what
can interleave *between* two statements of an ``async def``.  The unit of
interleaving under asyncio is the suspension point — ``await``, each
``async for`` iteration, ``async with`` enter/exit — so the CFG is built
at statement granularity with every node annotated with:

* ``suspends`` — the node contains an ``await`` expression (or is the
  header of an ``async for`` / ``async with``, whose protocol methods are
  awaited);
* ``withs`` — the stack of enclosing ``with`` / ``async with`` context
  managers as ``(normalized name, with_id, is_async)`` triples.  Two
  nodes share a ``with_id`` exactly when they sit inside the *same*
  ``with`` statement, which is what "a lock held across the gap" means
  structurally;
* ``conditions`` — the enclosing branch/loop test expressions, used for
  control-dependence (a write guarded by ``if self.x:`` depends on the
  read of ``self.x``);
* ``in_finally`` — the node sits in a ``finally`` block (lock-release
  discipline, FLOW002);
* ``scan_nodes`` — the AST subtrees that belong to this CFG node.  For a
  compound statement that is only its header (an ``If`` node owns its
  ``test``; the body statements are separate CFG nodes).

Edges are the usual structural ones.  ``try`` is approximated: every
statement of the body may transfer to each handler head, and handlers and
body both reach the ``finally`` — precise exception flow is not needed
for a conservative interleaving analysis.  Exits (``return``, ``raise``,
falling off the end) simply have no successors.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


def dotted_name(node) -> str:
    """``a.b.c`` for a Name/Attribute chain; ``""`` when not a plain chain."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def normalized_context_name(expr, assigns=None) -> str:
    """A stable human-readable name for a ``with`` context expression.

    ``self._lock`` -> ``"self._lock"``; ``self._key_lock(key)`` ->
    ``"self._key_lock()"``; a bare local (``lock``) resolves through the
    function's single-assignment map, so ``lock = self._key_lock(key);
    async with lock:`` also normalizes to ``"self._key_lock()"`` — the
    name two functions guarding the same state agree on.  Anything else
    falls back to the node type name.
    """
    if (
        assigns is not None
        and isinstance(expr, ast.Name)
        and assigns.get(expr.id) is not None
    ):
        resolved = normalized_context_name(assigns[expr.id])
        if not resolved.startswith("<"):
            return resolved
    name = dotted_name(expr)
    if name:
        return name
    if isinstance(expr, ast.Call):
        fn = dotted_name(expr.func)
        if fn:
            return fn + "()"
    return f"<{type(expr).__name__}>"


def function_assigns(func) -> dict:
    """Single-assignment map of a function: ``{name: value expr}``.

    Names assigned more than once map to ``None`` — only an unambiguous
    binding may be used to resolve a ``with`` context name.
    """
    assigns = {}
    for sub in iter_scope(func):
        if (
            isinstance(sub, ast.Assign)
            and len(sub.targets) == 1
            and isinstance(sub.targets[0], ast.Name)
        ):
            name = sub.targets[0].id
            assigns[name] = None if name in assigns else sub.value
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)) and isinstance(
            sub.target, ast.Name
        ):
            assigns[sub.target.id] = None
    return assigns


def iter_scope(node):
    """Walk ``node`` without descending into nested function/class bodies.

    The effects of a nested ``def`` belong to that function, not to the
    statement that merely defines it.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            stack.append(child)


def contains_await(node) -> bool:
    """True when the subtree (minus nested functions) awaits anything."""
    return any(isinstance(sub, ast.Await) for sub in iter_scope(node))


@dataclass
class Node:
    """One CFG node: a simple statement or a compound statement's header."""

    index: int
    stmt: ast.stmt
    line: int
    #: AST subtrees owned by this node (header expressions for compounds)
    scan_nodes: tuple
    suspends: bool = False
    #: enclosing with-contexts: (normalized name, with_id, is_async)
    withs: tuple = ()
    #: enclosing branch/loop tests: (expr, line)
    conditions: tuple = ()
    in_finally: bool = False
    effects: object = field(default=None, repr=False)  # filled by checks.py


class CFG:
    """Statement-level control-flow graph of one function."""

    def __init__(self, func):
        self.func = func
        self.name = func.name
        self.is_async = isinstance(func, ast.AsyncFunctionDef)
        self.nodes = []
        self.succs = {}
        self.entry = []  # indices of the first node(s)
        builder = _Builder(self)
        frontier = builder.build_block(func.body, frontier=None)
        del frontier  # dangling exits fall off the end of the function

    def add_node(self, node: Node) -> int:
        self.nodes.append(node)
        self.succs[node.index] = []
        return node.index

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.succs[src]:
            self.succs[src].append(dst)


class _Builder:
    """Recursive-descent CFG construction over statement lists.

    ``frontier`` threading: a frontier is the list of node indices whose
    control continues at the *next* statement; ``None`` marks the very
    start of the function (the next node becomes an entry node).
    """

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self._next_with_id = 0
        self._loop_stack = []  # (breaks, continues) collectors
        self._assigns = function_assigns(cfg.func)

    # -- plumbing --------------------------------------------------------------

    def _new_node(self, stmt, scan_nodes, ctx, suspends=False) -> int:
        node = Node(
            index=len(self.cfg.nodes),
            stmt=stmt,
            line=stmt.lineno,
            scan_nodes=tuple(scan_nodes),
            suspends=suspends or any(contains_await(s) for s in scan_nodes),
            withs=ctx["withs"],
            conditions=ctx["conditions"],
            in_finally=ctx["in_finally"],
        )
        return self.cfg.add_node(node)

    def _link(self, frontier, index) -> None:
        if frontier is None:
            self.cfg.entry.append(index)
            return
        for src in frontier:
            self.cfg.add_edge(src, index)

    # -- statement dispatch ----------------------------------------------------

    def build_block(self, stmts, frontier, ctx=None):
        if ctx is None:
            ctx = {"withs": (), "conditions": (), "in_finally": False}
        for stmt in stmts:
            frontier = self.build_stmt(stmt, frontier, ctx)
        return frontier

    def build_stmt(self, stmt, frontier, ctx):
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, frontier, ctx)
        if isinstance(stmt, ast.While):
            return self._build_while(stmt, frontier, ctx)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._build_for(stmt, frontier, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, frontier, ctx)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier, ctx)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            index = self._new_node(
                stmt, [s for s in (getattr(stmt, "value", None),
                                   getattr(stmt, "exc", None)) if s], ctx
            )
            self._link(frontier, index)
            return []  # control leaves the function
        if isinstance(stmt, (ast.Break, ast.Continue)):
            index = self._new_node(stmt, [], ctx)
            self._link(frontier, index)
            if self._loop_stack:
                breaks, continues = self._loop_stack[-1]
                (breaks if isinstance(stmt, ast.Break) else continues).append(
                    index
                )
            return []
        # simple statement (incl. nested def/class headers, which own
        # nothing: their bodies are analyzed as their own functions)
        scan = [] if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) else [stmt]
        index = self._new_node(stmt, scan, ctx)
        self._link(frontier, index)
        return [index]

    # -- compound statements ---------------------------------------------------

    def _with_condition(self, ctx, test):
        return dict(
            ctx, conditions=ctx["conditions"] + ((test, test.lineno),)
        )

    def _build_if(self, stmt, frontier, ctx):
        cond = self._new_node(stmt, [stmt.test], ctx)
        self._link(frontier, cond)
        inner = self._with_condition(ctx, stmt.test)
        body_f = self.build_block(stmt.body, [cond], inner)
        if stmt.orelse:
            else_f = self.build_block(stmt.orelse, [cond], inner)
            return body_f + else_f
        return body_f + [cond]

    def _build_while(self, stmt, frontier, ctx):
        cond = self._new_node(stmt, [stmt.test], ctx)
        self._link(frontier, cond)
        self._loop_stack.append(([], []))
        inner = self._with_condition(ctx, stmt.test)
        body_f = self.build_block(stmt.body, [cond], inner)
        breaks, continues = self._loop_stack.pop()
        for idx in body_f + continues:
            self.cfg.add_edge(idx, cond)
        else_f = self.build_block(stmt.orelse, [cond], ctx) if stmt.orelse \
            else [cond]
        return else_f + breaks

    def _build_for(self, stmt, frontier, ctx):
        header = self._new_node(
            stmt, [stmt.iter, stmt.target], ctx,
            suspends=isinstance(stmt, ast.AsyncFor),
        )
        self._link(frontier, header)
        self._loop_stack.append(([], []))
        inner = self._with_condition(ctx, stmt.iter)
        body_f = self.build_block(stmt.body, [header], inner)
        breaks, continues = self._loop_stack.pop()
        for idx in body_f + continues:
            self.cfg.add_edge(idx, header)
        else_f = self.build_block(stmt.orelse, [header], ctx) if stmt.orelse \
            else [header]
        return else_f + breaks

    def _build_with(self, stmt, frontier, ctx):
        is_async = isinstance(stmt, ast.AsyncWith)
        scan = []
        withs = ctx["withs"]
        for item in stmt.items:
            scan.append(item.context_expr)
            if item.optional_vars is not None:
                scan.append(item.optional_vars)
            self._next_with_id += 1
            withs = withs + (
                (
                    normalized_context_name(item.context_expr, self._assigns),
                    self._next_with_id,
                    is_async,
                ),
            )
        header = self._new_node(stmt, scan, ctx, suspends=is_async)
        self._link(frontier, header)
        inner = dict(ctx, withs=withs)
        return self.build_block(stmt.body, [header], inner)

    def _build_try(self, stmt, frontier, ctx):
        body_entry_frontier = frontier
        body_f = self.build_block(stmt.body, body_entry_frontier, ctx)
        body_nodes = [
            n.index for n in self.cfg.nodes
            if n.stmt in _stmt_set(stmt.body)
        ]
        handler_fs = []
        for handler in stmt.handlers:
            # any statement of the body may raise into the handler
            handler_f = self.build_block(
                handler.body, body_nodes if body_nodes else frontier, ctx
            )
            handler_fs.extend(handler_f)
        else_f = self.build_block(stmt.orelse, body_f, ctx) if stmt.orelse \
            else body_f
        if stmt.finalbody:
            final_ctx = dict(ctx, in_finally=True)
            return self.build_block(
                stmt.finalbody, else_f + handler_fs + body_nodes, final_ctx
            )
        return else_f + handler_fs


def _stmt_set(stmts):
    """Identity set of every statement nested under ``stmts`` (for try)."""
    out = set()
    for stmt in stmts:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.stmt):
                out.add(sub)
    return out


def build_cfg(func) -> CFG:
    """Build the CFG of one ``FunctionDef`` / ``AsyncFunctionDef``."""
    return CFG(func)


def iter_functions(tree):
    """Yield ``(class_name_or_None, func_node)`` for every function.

    Methods are reported with their class; nested functions are reported
    with the class of their outermost enclosing scope (their ``self``, if
    any, is not modeled).
    """
    def visit(node, cls):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                for sub in visit(child, child.name):
                    yield sub
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, child
                for sub in visit(child, cls):
                    yield sub
            else:
                for sub in visit(child, cls):
                    yield sub

    for item in visit(tree, None):
        yield item
