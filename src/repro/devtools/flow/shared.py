"""Conservative shared-state model + the ``# repro:`` annotation contract.

What counts as *shared* mutable state for the flow analyses:

* **Instance attributes** (``self.x``) of any class that has an ``async
  def`` method, directly or via a project base class.  Such an instance
  is, by construction of the serving stack, touched by many concurrently
  suspended coroutines (every connection handler shares the server; every
  in-flight write shares the node), so any of its attributes can change
  across a suspension point.  A class with no async method is only ever
  driven from one coroutine at a time in this codebase and is excluded —
  its methods still contribute *effect summaries* when called from a
  shared class.
* **Module globals** that some function in the module writes (rebinding
  via ``global``, augmented assignment, subscript stores or a mutating
  method call).  Read-only module constants are not shared state.
* Anything explicitly annotated ``# repro: shared`` on the ``class`` line
  or on a module-level assignment, for state the heuristics cannot see
  (e.g. a registry handed to other tasks).

Annotations (checked per physical line, like the linter's ``noqa``; an
annotation on a comment-only line also covers the line below it):

* ``# repro: shared`` — force a class or module global into the model;
* ``# repro: atomic=<reason>`` — suppress FLOW001/FLOW002 findings
  anchored on that line, or on every line of a function when placed on
  its ``def`` line.  The reason is *mandatory*: it must state the
  invariant that makes the flagged interleaving safe (who serializes the
  writers, why staleness is bounded, ...), so the suppression documents
  the proof obligation instead of hiding it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

#: methods that mutate their receiver in place (container RMW)
MUTATORS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "pop", "popitem", "popleft", "remove", "reverse",
        "setdefault", "sort", "update",
    }
)

_ATOMIC_RE = re.compile(r"#\s*repro:\s*atomic=(\S.*?)\s*$")
_SHARED_RE = re.compile(r"#\s*repro:\s*shared\b")


@dataclass(frozen=True, order=True)
class Loc:
    """One shared-state location: a class attribute or a module global."""

    kind: str  # "attr" | "global"
    module: str
    owner: str  # class name for attrs, "" for globals
    name: str

    @property
    def label(self) -> str:
        """Short human-readable spelling used in messages."""
        if self.kind == "attr":
            return f"{self.owner}.{self.name}"
        return f"{self.module}.{self.name}"


class FileAnnotations:
    """``# repro: atomic=`` / ``# repro: shared`` markers of one file."""

    def __init__(self, source: str):
        self.atomic = {}  # line -> reason
        self.shared_lines = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            # an annotation on a comment-only line also covers the next
            # line, so long reasons need not ride as trailing comments
            own_line = text.lstrip().startswith("#")
            match = _ATOMIC_RE.search(text)
            if match:
                self.atomic[lineno] = match.group(1)
                if own_line:
                    self.atomic.setdefault(lineno + 1, match.group(1))
            if _SHARED_RE.search(text):
                self.shared_lines.add(lineno)
                if own_line:
                    self.shared_lines.add(lineno + 1)

    def atomic_reason(self, *lines):
        """The first ``atomic=`` reason found on any of ``lines``, or None."""
        for line in lines:
            if line in self.atomic:
                return self.atomic[line]
        return None


class SharedModel:
    """Which locations the project treats as cross-coroutine shared state."""

    def __init__(self, project, callgraph, annotations):
        """``project``: iterable of ``(module, tree)``;
        ``annotations``: dict module -> :class:`FileAnnotations`."""
        self._callgraph = callgraph
        self._shared_classes = set()  # (module, class name)
        self._shared_globals = {}  # module -> set of names
        for module, tree in project:
            notes = annotations.get(module)
            self._classify_classes(module, tree, notes)
            self._classify_globals(module, tree, notes)

    # -- model construction ----------------------------------------------------

    def _classify_classes(self, module, tree, notes) -> None:
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            info = self._callgraph.classes.get((module, node.name))
            annotated = notes is not None and node.lineno in notes.shared_lines
            if annotated or (
                info is not None and self._callgraph.has_async_method(info)
            ):
                self._shared_classes.add((module, node.name))

    def _classify_globals(self, module, tree, notes) -> None:
        module_level = set()
        annotated = set()
        for node in tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    module_level.add(target.id)
                    if notes is not None and node.lineno in notes.shared_lines:
                        annotated.add(target.id)
        mutated = set()
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local = _local_names(func)
            for sub in ast.walk(func):
                if isinstance(sub, ast.Global):
                    mutated.update(sub.names)
                elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                    targets = sub.targets if isinstance(sub, ast.Assign) \
                        else [sub.target]
                    for target in targets:
                        base = _subscript_base(target)
                        if (
                            isinstance(base, ast.Name)
                            and base.id not in local
                        ):
                            mutated.add(base.id)
                elif isinstance(sub, ast.Call):
                    func_expr = sub.func
                    if (
                        isinstance(func_expr, ast.Attribute)
                        and func_expr.attr in MUTATORS
                        and isinstance(func_expr.value, ast.Name)
                        and func_expr.value.id not in local
                    ):
                        mutated.add(func_expr.value.id)
        shared = (mutated & module_level) | annotated
        if shared:
            self._shared_globals[module] = shared

    # -- queries ---------------------------------------------------------------

    def is_shared_class(self, module: str, cls_name: str) -> bool:
        return (module, cls_name) in self._shared_classes

    def attr_loc(self, module: str, cls_name: str, attr: str):
        """The :class:`Loc` of ``self.<attr>`` in ``cls_name``, or None."""
        if not cls_name:
            return None
        # name the location after the root-most shared class of the
        # chain, so a method inherited from a base and an override in the
        # subclass agree they touch the *same* location
        info = self._callgraph.classes.get((module, cls_name))
        if info is not None:
            owner = None
            for cls in self._callgraph.class_chain(info):
                if self.is_shared_class(cls.module, cls.name):
                    owner = cls
            if owner is not None:
                return Loc("attr", owner.module, owner.name, attr)
        if self.is_shared_class(module, cls_name):
            return Loc("attr", module, cls_name, attr)
        return None

    def global_loc(self, module: str, name: str):
        if name in self._shared_globals.get(module, ()):
            return Loc("global", module, "", name)
        return None


def _local_names(func) -> set:
    """Names bound locally in ``func`` (params + simple assignments)."""
    local = {arg.arg for arg in func.args.args}
    local.update(arg.arg for arg in func.args.kwonlyargs)
    local.update(
        arg.arg for arg in (func.args.vararg, func.args.kwarg) if arg
    )
    for sub in ast.walk(func):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            local.add(sub.id)
        elif isinstance(sub, ast.Global):
            local.difference_update(sub.names)
    return local


def _subscript_base(target):
    """``x`` for ``x[...]`` / ``x[...][...]`` store targets, else target."""
    while isinstance(target, ast.Subscript):
        target = target.value
    return target
