"""Flow-aware static analysis: async-atomicity, lock discipline, protocol.

The package behind ``repro analyze``.  Layering:

* :mod:`.cfg` — per-function control-flow graphs with suspension points;
* :mod:`.callgraph` — project class/method index + call resolution;
* :mod:`.shared` — the conservative shared-state model and the
  ``# repro: atomic=`` / ``# repro: shared`` annotation contract;
* :mod:`.checks` — FLOW001 (async-atomicity dataflow), FLOW002 (lock
  discipline), FLOW003 (wire-protocol conformance);
* :mod:`.protocol_spec` — the declarative verb spec FLOW003 diffs against;
* :mod:`.cli` — engine façade, JSON/human output, baseline ratchet.
"""

from __future__ import annotations

from .callgraph import CallGraph
from .cfg import build_cfg, iter_functions
from .checks import (
    FLOW_RULES,
    ProjectAnalysis,
    default_flow_rules,
    extract_handled_verbs,
    extract_sent_verbs,
)
from .cli import FlowEngine, apply_baseline, finding_counts, load_baseline, run_analyze
from .shared import FileAnnotations, Loc, SharedModel

__all__ = [
    "CallGraph",
    "FLOW_RULES",
    "FileAnnotations",
    "FlowEngine",
    "Loc",
    "ProjectAnalysis",
    "SharedModel",
    "apply_baseline",
    "build_cfg",
    "default_flow_rules",
    "extract_handled_verbs",
    "extract_sent_verbs",
    "finding_counts",
    "iter_functions",
    "load_baseline",
    "run_analyze",
]
