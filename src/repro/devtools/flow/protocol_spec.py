"""Declarative wire-protocol verb spec — the single source of truth.

FLOW003 (:func:`repro.devtools.flow.checks.check_protocol`) extracts the
verbs the servers actually dispatch and the clients actually send, and
diffs both sets against :data:`SPEC`.  Adding a wire verb therefore takes
four edits that must land together or CI fails:

1. a :class:`Verb` entry here, naming its layer(s) and framing(s);
2. the server dispatch arm — ``_serve_request`` for the v1 line framing,
   ``_serve_frame`` for the v2 binary framing, both comparing the local
   ``cmd`` (the extraction keys on that repo convention); a verb framed
   both ways needs both arms;
3. the framing tables: a ``VERB_IDS`` entry in
   :data:`CODEC_FILE` for v2 verbs, a ``V1_LINES`` entry in
   :data:`TRANSPORT_FILE` for v1 verbs;
4. at least one client sender — a ``*.call("VERB", ...)`` transport call
   or a legacy ``*._request(...)`` payload starting with the verb.

Layers: ``"service"`` is the base cache protocol served by
``repro.service.server.CacheServer``; ``"cluster"`` is the peer protocol
served by ``repro.cluster.node.ClusterServer`` on top of it.  ``SET`` and
``DEL`` appear in both because the cluster server intercepts them for
owner routing while plain cache servers handle them directly.

Framings: ``"v1"`` is the newline-delimited text protocol, ``"v2"`` the
length-prefixed binary framing (:mod:`repro.service.protocol`).  Most
verbs speak both; the batch verbs (``MGET``/``MSET``/``MDEL``) and the
negotiation probe (``HELLO``) are v2-only — over a v1 connection the
transport emulates batches as sequential singles.

``internal=True`` marks verbs the transport layer itself originates and
answers (today only ``HELLO``, handled before dispatch in
``_handle_frame``); they are exempt from the dispatch-arm and
client-sender checks but still must appear in ``VERB_IDS``.

Every request additionally accepts one optional trace field
``T=<trace-id>/<span-id>`` (:mod:`repro.obs.dist`) — trailing token on a
v1 line, flagged header field in a v2 frame — stripped before dispatch;
it is a field, not a verb, so it has no :class:`Verb` entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: layer name -> repo-relative server file whose dispatch defines the layer
SERVER_FILES = {
    "service": "repro/service/server.py",
    "cluster": "repro/cluster/node.py",
}

#: repo-relative client files whose transport calls / payloads are senders
CLIENT_FILES = (
    "repro/service/client.py",
    "repro/service/transport.py",
    "repro/cluster/node.py",
    "repro/cluster/client.py",
)

#: repo-relative codec file whose ``VERB_IDS`` dict is the v2 framing table
CODEC_FILE = "repro/service/protocol.py"

#: repo-relative transport file whose ``V1_LINES`` dict is the v1 framing table
TRANSPORT_FILE = "repro/service/transport.py"

#: the wire framings a verb may be declared for
FRAMINGS = ("v1", "v2")


@dataclass(frozen=True)
class Verb:
    """One wire verb: name, serving layers, framings, and a summary."""

    name: str
    layers: tuple
    summary: str
    framings: tuple = FRAMINGS
    internal: bool = field(default=False, compare=False)


SPEC = (
    Verb("HELLO", ("service",), "v2 negotiation probe (transport-internal)",
         framings=("v2",), internal=True),
    Verb("GET", ("service",), "read a value by key"),
    Verb("SET", ("service", "cluster"), "store a value (cluster: routed)"),
    Verb("DEL", ("service", "cluster"), "delete a key (cluster: routed)"),
    Verb("MGET", ("service",), "read many keys in one frame",
         framings=("v2",)),
    Verb("MSET", ("service",), "store many pairs in one frame",
         framings=("v2",)),
    Verb("MDEL", ("service",), "delete many keys in one frame",
         framings=("v2",)),
    Verb("STATS", ("service",), "per-shard + aggregate stats snapshot"),
    Verb("METRICS", ("service",), "obs registry in Prometheus text format"),
    Verb("TRACE", ("service",), "drain the node's trace ring (JSONL batch)"),
    Verb("PING", ("service",), "liveness round-trip"),
    Verb("QUIT", ("service",), "close this connection gracefully"),
    Verb("REPL", ("cluster",), "owner pushes a versioned replica to a peer"),
    Verb("INVAL", ("cluster",), "owner invalidates a peer replica up to a version"),
    Verb("PUTS", ("cluster",), "peer tells the owner it dropped its replica"),
    Verb("RGET", ("cluster",), "read a peer's replica copy"),
    Verb("CSTATUS", ("cluster",), "node's cluster-level status block"),
    Verb("DRAIN", ("cluster",), "stop accepting and hand keys off"),
)


def verbs_for_layer(layer: str, framing: str = None) -> set:
    """Names of the verbs declared for ``layer`` (optionally one framing)."""
    return {
        verb.name for verb in SPEC
        if layer in verb.layers
        and (framing is None or framing in verb.framings)
    }


def verbs_for_framing(framing: str) -> set:
    """Every declared verb name that speaks ``framing``, across layers."""
    return {verb.name for verb in SPEC if framing in verb.framings}


def internal_verbs() -> set:
    """Verbs the transport originates itself (dispatch/sender-exempt)."""
    return {verb.name for verb in SPEC if verb.internal}


def documented_verbs() -> set:
    """Every declared verb name, across all layers."""
    return {verb.name for verb in SPEC}
