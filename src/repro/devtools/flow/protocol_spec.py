"""Declarative wire-protocol verb spec — the single source of truth.

FLOW003 (:func:`repro.devtools.flow.checks.check_protocol`) extracts the
verbs the servers actually dispatch and the clients actually send, and
diffs both sets against :data:`SPEC`.  Adding a wire verb therefore takes
three edits that must land together or CI fails:

1. a :class:`Verb` entry here, naming its layer(s);
2. the server dispatch arm (``_serve_request``, comparing the local
   ``cmd`` — the extraction keys on that repo convention);
3. at least one client sender (a ``*._request(...)`` call whose payload
   starts with the verb).

Layers: ``"service"`` is the base cache protocol served by
``repro.service.server.CacheServer``; ``"cluster"`` is the peer protocol
served by ``repro.cluster.node.ClusterServer`` on top of it.  ``SET`` and
``DEL`` appear in both because the cluster server intercepts them for
owner routing while plain cache servers handle them directly.

Every request line additionally accepts one optional trailing trace field
``T=<trace-id>/<span-id>`` (:mod:`repro.obs.dist`), stripped before
dispatch; it is a field, not a verb, so it has no :class:`Verb` entry.
"""

from __future__ import annotations

from dataclasses import dataclass

#: layer name -> repo-relative server file whose dispatch defines the layer
SERVER_FILES = {
    "service": "repro/service/server.py",
    "cluster": "repro/cluster/node.py",
}

#: repo-relative client files whose ``_request`` payloads are senders
CLIENT_FILES = (
    "repro/service/client.py",
    "repro/cluster/node.py",
    "repro/cluster/client.py",
)


@dataclass(frozen=True)
class Verb:
    """One wire verb: its name, the layers that serve it, and a summary."""

    name: str
    layers: tuple
    summary: str


SPEC = (
    Verb("GET", ("service",), "read a value by key"),
    Verb("SET", ("service", "cluster"), "store a value (cluster: routed)"),
    Verb("DEL", ("service", "cluster"), "delete a key (cluster: routed)"),
    Verb("STATS", ("service",), "per-shard + aggregate stats snapshot"),
    Verb("METRICS", ("service",), "obs registry in Prometheus text format"),
    Verb("TRACE", ("service",), "drain the node's trace ring (JSONL batch)"),
    Verb("PING", ("service",), "liveness round-trip"),
    Verb("QUIT", ("service",), "close this connection gracefully"),
    Verb("REPL", ("cluster",), "owner pushes a versioned replica to a peer"),
    Verb("INVAL", ("cluster",), "owner invalidates a peer replica up to a version"),
    Verb("PUTS", ("cluster",), "peer tells the owner it dropped its replica"),
    Verb("RGET", ("cluster",), "read a peer's replica copy"),
    Verb("CSTATUS", ("cluster",), "node's cluster-level status block"),
    Verb("DRAIN", ("cluster",), "stop accepting and hand keys off"),
)


def verbs_for_layer(layer: str) -> set:
    """Names of the verbs declared for ``layer``."""
    return {verb.name for verb in SPEC if layer in verb.layers}


def documented_verbs() -> set:
    """Every declared verb name, across all layers."""
    return {verb.name for verb in SPEC}
