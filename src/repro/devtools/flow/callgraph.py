"""Project call graph: resolve ``self.``-method and module-level calls.

The flow checks inline *one level* of callee effects (a read of shared
state performed inside ``self.version_of(key)`` must count as a read at
the call site), so the engine needs to know which function a call lands
in.  Resolution is deliberately conservative and purely syntactic:

* ``self.m(...)`` inside a method of class ``C`` resolves through ``C``'s
  method table, then through its project base classes (name-matched:
  same module first, else a unique class of that name anywhere in the
  analyzed tree — the repo convention of unique public class names makes
  this exact in practice);
* ``super().m(...)`` resolves starting at the first base class;
* ``f(...)`` resolves to a module-level function of the same module;
* anything else (imported callables, attribute chains on locals, stdlib)
  resolves to ``None`` and contributes no effects.

Unresolved calls are *not* treated as clobbering the world — that would
drown every real finding; the shared-state model already assumes any
suspension can interleave arbitrary shared mutations, which is the sound
part of the approximation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .cfg import dotted_name


@dataclass
class FuncInfo:
    """One function or method of the analyzed project."""

    module: str
    cls: str  # "" for module-level functions
    name: str
    node: object
    is_async: bool

    @property
    def qualname(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name

    @property
    def key(self) -> tuple:
        return (self.module, self.cls, self.name)


@dataclass
class ClassInfo:
    """One class of the analyzed project."""

    module: str
    name: str
    bases: tuple  # base-class *names* (dotted names flattened to last part)
    methods: dict = field(default_factory=dict)  # name -> FuncInfo
    lineno: int = 0

    @property
    def key(self) -> tuple:
        return (self.module, self.name)


class CallGraph:
    """Class/method/function index plus call resolution for a project."""

    def __init__(self, project):
        """``project`` is an iterable of ``(module_name, ast_tree)``."""
        self.classes = {}  # (module, name) -> ClassInfo
        self.by_name = {}  # class name -> [ClassInfo]
        self.functions = {}  # (module, "", name) -> FuncInfo
        for module, tree in project:
            self._index_module(module, tree)

    # -- indexing --------------------------------------------------------------

    def _index_module(self, module: str, tree) -> None:
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                bases = []
                for base in node.bases:
                    name = dotted_name(base)
                    if name:
                        bases.append(name.rsplit(".", 1)[-1])
                info = ClassInfo(
                    module=module, name=node.name, bases=tuple(bases),
                    lineno=node.lineno,
                )
                for child in node.body:
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        info.methods[child.name] = FuncInfo(
                            module=module,
                            cls=node.name,
                            name=child.name,
                            node=child,
                            is_async=isinstance(child, ast.AsyncFunctionDef),
                        )
                self.classes[info.key] = info
                self.by_name.setdefault(node.name, []).append(info)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FuncInfo(
                    module=module, cls="", name=node.name, node=node,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                )
                self.functions[info.key] = info

    # -- class machinery -------------------------------------------------------

    def resolve_class(self, name: str, module: str):
        """The project :class:`ClassInfo` called ``name``, seen from ``module``.

        Prefers a class of that name defined in ``module``; otherwise a
        project-unique class of that name; else ``None`` (external base).
        """
        local = self.classes.get((module, name))
        if local is not None:
            return local
        candidates = self.by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def class_chain(self, cls: ClassInfo):
        """``cls`` followed by its project base classes, MRO-ish order."""
        chain, seen, queue = [], set(), [cls]
        while queue:
            current = queue.pop(0)
            if current.key in seen:
                continue
            seen.add(current.key)
            chain.append(current)
            for base in current.bases:
                resolved = self.resolve_class(base, current.module)
                if resolved is not None:
                    queue.append(resolved)
        return chain

    def find_method(self, cls: ClassInfo, name: str, skip_self: bool = False):
        """Look ``name`` up along the class chain (``skip_self`` = super())."""
        chain = self.class_chain(cls)
        if skip_self and chain:
            chain = chain[1:]
        for info in chain:
            if name in info.methods:
                return info.methods[name]
        return None

    def has_async_method(self, cls: ClassInfo) -> bool:
        """True when the class (or a project base) defines an async method."""
        return any(
            method.is_async
            for info in self.class_chain(cls)
            for method in info.methods.values()
        )

    # -- call resolution -------------------------------------------------------

    def resolve_call(self, call, module: str, cls_name: str):
        """The :class:`FuncInfo` a call lands in, or ``None``.

        ``cls_name`` is the class whose method contains the call (or "").
        """
        func = call.func
        # super().m(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and dotted_name(func.value.func) == "super"
            and cls_name
        ):
            cls = self.classes.get((module, cls_name))
            if cls is not None:
                return self.find_method(cls, func.attr, skip_self=True)
            return None
        name = dotted_name(func)
        if not name:
            return None
        if name.startswith("self.") and name.count(".") == 1 and cls_name:
            cls = self.classes.get((module, cls_name))
            if cls is not None:
                return self.find_method(cls, name.split(".", 1)[1])
            return None
        if "." not in name:
            return self.functions.get((module, "", name))
        return None
