"""The flow analyses: FLOW001 / FLOW002 / FLOW003.

Built on the statement CFGs (:mod:`.cfg`), the project call graph
(:mod:`.callgraph`) and the shared-state model (:mod:`.shared`):

* **FLOW001 async-atomicity** — a read of shared state whose value (or
  branch decision) feeds a later write of the *same* location, with a
  suspension point on some path between read and write.  The window lets
  another coroutine change the location, so the write commits a stale
  view.  Holding the same ``asyncio.Lock`` (structurally: the same
  ``async with`` block) across the gap excuses the pair — and records a
  *reliance* of that location on that lock; ``# repro: atomic=<reason>``
  suppresses with a written invariant.
* **FLOW002 lock discipline** — (a) a lock acquired with ``.acquire()``
  but not released on all exit paths (release must sit in a ``finally``;
  prefer ``async with``); (b) awaiting, while holding a lock, a callee
  that acquires the same lock — ``asyncio.Lock`` is not reentrant, so
  that is a guaranteed deadlock; (c) a write to a location that FLOW001
  excused *because of a lock*, performed without holding that lock —
  the unguarded writer silently breaks the invariant the lock was
  supposed to provide.
* **FLOW003 wire-protocol conformance** — the verb sets actually
  dispatched by the servers and sent by the clients, diffed against the
  declarative spec in :mod:`.protocol_spec`: an undocumented verb, a
  server verb with no client sender, or a spec verb no server handles
  all fail.

Everything is deliberately *syntactic and conservative*: no alias
analysis, one level of call-graph inlining, locks matched structurally
(same ``with`` block) for FLOW001 and by normalized name for FLOW002.
The goal is the PR-6 class of bug — shared owner/replica bookkeeping
mutated around an ``await`` fan-out — not a general race detector.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from ..lint.engine import Finding
from .callgraph import CallGraph
from .cfg import build_cfg, dotted_name, iter_functions, iter_scope
from .shared import MUTATORS, FileAnnotations, SharedModel

#: a with-context / attribute counts as a lock when its last name
#: segment mentions one (self._lock, lock, self._key_lock(key), ...)
_LOCKISH_RE = re.compile(r"lock", re.IGNORECASE)


def is_lockish(name: str) -> bool:
    """True when a normalized context/receiver name looks like a lock."""
    last = name.rstrip("()").rsplit(".", 1)[-1]
    return bool(_LOCKISH_RE.search(last))


# -- rule metadata -----------------------------------------------------------


class FlowRule:
    """Base class carrying the id/name/severity/description metadata."""

    id = "FLOW000"
    name = "abstract-flow-rule"
    description = ""
    severity = "error"


class AsyncAtomicityRule(FlowRule):
    """Read-modify-write of shared state spanning a suspension point.

    Between the read and the dependent write another coroutine can run
    and change the location, so the write commits a stale value (the
    PR-6 bug class: version counters and replica directories mutated
    around an INVAL/ack fan-out).  Hold one ``asyncio.Lock`` across the
    whole gap, or state the protecting invariant with
    ``# repro: atomic=<reason>``.
    """

    id = "FLOW001"
    name = "async-atomicity"
    description = (
        "shared-state read-modify-write spans an await with no lock "
        "held across the gap"
    )


class LockDisciplineRule(FlowRule):
    """Lock acquire/release imbalance, lock-bypassing writes, re-entry.

    Manual ``.acquire()`` must be paired with a ``finally``-guaranteed
    ``.release()`` (or replaced by ``async with``); awaiting a callee
    that takes a lock you already hold deadlocks (asyncio locks are not
    reentrant); and writing a location whose FLOW001 safety argument
    *is* a lock, without holding that lock, breaks the argument.
    """

    id = "FLOW002"
    name = "lock-discipline"
    description = (
        "lock not released on all paths, awaited self-deadlock, or a "
        "write bypassing the lock a FLOW001 region relies on"
    )


class ProtocolConformanceRule(FlowRule):
    """Wire verbs must match the declarative spec on both ends.

    Every verb a server dispatches must be declared in
    ``repro.devtools.flow.protocol_spec`` and have at least one client
    sender; every declared verb must be dispatched.  A new verb lands by
    touching spec, server and client together — drift fails CI.
    """

    id = "FLOW003"
    name = "protocol-conformance"
    description = (
        "server-dispatched / client-sent wire verbs drifted from "
        "protocol_spec.py"
    )


#: rule id -> rule class, in registration order
FLOW_RULES = {
    cls.id: cls
    for cls in (AsyncAtomicityRule, LockDisciplineRule, ProtocolConformanceRule)
}


def default_flow_rules(select=None):
    """Instantiate flow rules; ``select`` limits to the given ids."""
    if select is not None:
        unknown = set(select) - set(FLOW_RULES)
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        return [FLOW_RULES[rid]() for rid in FLOW_RULES if rid in select]
    return [cls() for cls in FLOW_RULES.values()]


# -- per-node effects --------------------------------------------------------


@dataclass
class Effects:
    """What one CFG node does to shared state."""

    reads: tuple = ()  # Locs read (incl. one inlined call level)
    writes: tuple = ()  # Locs written (incl. one inlined call level)
    direct_reads: tuple = ()  # Locs read by this statement itself
    direct_writes: tuple = ()  # Locs written by this statement itself
    used_vars: tuple = ()  # local names read
    assigned_vars: tuple = ()  # local names bound
    awaited_callees: tuple = ()  # resolved FuncInfo keys awaited here
    acquires: tuple = ()  # (lock name, line) of manual .acquire() calls
    releases: tuple = ()  # lock names of .release() calls


@dataclass
class Summary:
    """Direct (non-inlined) effects of a whole function."""

    reads: frozenset = frozenset()
    writes: frozenset = frozenset()
    acquires: frozenset = frozenset()  # lock names taken anywhere inside


class _FunctionContext:
    """Resolution context while scanning one function's statements."""

    def __init__(self, module, cls_name, func, shared, callgraph,
                 summaries=None):
        self.module = module
        self.cls_name = cls_name or ""
        self.func = func
        self.shared = shared
        self.callgraph = callgraph
        self.summaries = summaries if summaries is not None else {}
        self.locals = _locals_of(func)
        self.globals_declared = {
            name
            for sub in ast.walk(func)
            if isinstance(sub, ast.Global)
            for name in sub.names
        }


def _locals_of(func) -> set:
    local = {arg.arg for arg in func.args.args}
    local.update(arg.arg for arg in func.args.kwonlyargs)
    local.update(arg.arg for arg in (func.args.vararg, func.args.kwarg) if arg)
    for sub in ast.walk(func):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            local.add(sub.id)
    for sub in ast.walk(func):
        if isinstance(sub, ast.Global):
            local.difference_update(sub.names)
    return local


def _resolve_base_loc(ctx, expr):
    """The shared :class:`~.shared.Loc` behind an expression, or None.

    Recognizes ``self.attr`` and bare shared-global names; peels
    subscripts (``self.versions[key]`` mutates ``self.versions``).
    """
    while isinstance(expr, ast.Subscript):
        expr = expr.value
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return ctx.shared.attr_loc(ctx.module, ctx.cls_name, expr.attr)
    if isinstance(expr, ast.Name) and (
        expr.id in ctx.globals_declared or expr.id not in ctx.locals
    ):
        return ctx.shared.global_loc(ctx.module, expr.id)
    return None


def scan_reads(ctx, expr):
    """Shared locations read anywhere in ``expr`` (one call level deep)."""
    reads = []
    for sub in iter_scope(expr):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.ctx, ast.Load)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            loc = ctx.shared.attr_loc(ctx.module, ctx.cls_name, sub.attr)
            if loc is not None:
                reads.append(loc)
        elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            loc = ctx.shared.global_loc(ctx.module, sub.id) \
                if sub.id not in ctx.locals or sub.id in ctx.globals_declared \
                else None
            if loc is not None:
                reads.append(loc)
        elif isinstance(sub, ast.Call):
            callee = ctx.callgraph.resolve_call(sub, ctx.module, ctx.cls_name)
            if callee is not None and not callee.is_async:
                summary = _summary_of(ctx, callee)
                reads.extend(summary.reads)
    return reads


def _summary_of(ctx, func_info) -> Summary:
    summary = ctx.summaries.get(func_info.key)
    return summary if summary is not None else Summary()


def compute_summary(module, cls_name, func, shared, callgraph) -> Summary:
    """Direct shared reads/writes and lock acquisitions of a function."""
    from .cfg import function_assigns, normalized_context_name

    ctx = _FunctionContext(module, cls_name, func, shared, callgraph)
    assigns = function_assigns(func)
    reads, writes, acquires = set(), set(), set()
    for sub in iter_scope(func):
        if isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                name = normalized_context_name(item.context_expr, assigns)
                if is_lockish(name):
                    acquires.add(name)
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr == "acquire":
                name = dotted_name(sub.func.value)
                if name and is_lockish(name):
                    acquires.add(name)
            if sub.func.attr in MUTATORS:
                loc = _resolve_base_loc(ctx, sub.func.value)
                if loc is not None:
                    reads.add(loc)
                    writes.add(loc)
        if isinstance(sub, ast.Attribute):
            if (
                isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                loc = ctx.shared.attr_loc(ctx.module, ctx.cls_name, sub.attr)
                if loc is None:
                    continue
                if isinstance(sub.ctx, ast.Load):
                    reads.add(loc)
                else:
                    writes.add(loc)
        elif isinstance(sub, ast.Name):
            loc = ctx.shared.global_loc(ctx.module, sub.id) \
                if sub.id in ctx.globals_declared or sub.id not in ctx.locals \
                else None
            if loc is None:
                continue
            if isinstance(sub.ctx, ast.Load):
                reads.add(loc)
            else:
                writes.add(loc)
        elif isinstance(sub, ast.Subscript) and not isinstance(
            sub.ctx, ast.Load
        ):
            loc = _resolve_base_loc(ctx, sub)
            if loc is not None:
                reads.add(loc)
                writes.add(loc)
        elif isinstance(sub, ast.AugAssign):
            loc = _resolve_base_loc(ctx, sub.target)
            if loc is not None:
                reads.add(loc)
    return Summary(
        reads=frozenset(reads), writes=frozenset(writes),
        acquires=frozenset(acquires),
    )


def node_effects(ctx, node) -> Effects:
    """Shared-state effects of one CFG node (one inlined call level)."""
    reads, writes, direct_reads, direct_writes = [], [], [], []
    used_vars, assigned_vars, awaited, acquires, releases = [], [], [], [], []
    awaited_calls = set()
    for scan in node.scan_nodes:
        for sub in iter_scope(scan):
            if isinstance(sub, ast.Await) and isinstance(sub.value, ast.Call):
                awaited_calls.add(id(sub.value))
    for scan in node.scan_nodes:
        for sub in iter_scope(scan):
            if isinstance(sub, ast.Attribute) and isinstance(
                sub.value, ast.Name
            ) and sub.value.id == "self":
                loc = ctx.shared.attr_loc(ctx.module, ctx.cls_name, sub.attr)
                if loc is not None:
                    if isinstance(sub.ctx, ast.Load):
                        reads.append(loc)
                        direct_reads.append(loc)
                    else:
                        writes.append(loc)
                        direct_writes.append(loc)
            elif isinstance(sub, ast.Name):
                if isinstance(sub.ctx, ast.Load):
                    used_vars.append(sub.id)
                    if (
                        sub.id in ctx.globals_declared
                        or sub.id not in ctx.locals
                    ):
                        loc = ctx.shared.global_loc(ctx.module, sub.id)
                        if loc is not None:
                            reads.append(loc)
                            direct_reads.append(loc)
                else:
                    if sub.id in ctx.globals_declared:
                        loc = ctx.shared.global_loc(ctx.module, sub.id)
                        if loc is not None:
                            writes.append(loc)
                            direct_writes.append(loc)
                    else:
                        assigned_vars.append(sub.id)
            elif isinstance(sub, ast.Subscript) and not isinstance(
                sub.ctx, ast.Load
            ):
                loc = _resolve_base_loc(ctx, sub)
                if loc is not None:
                    reads.append(loc)
                    direct_reads.append(loc)
                    writes.append(loc)
                    direct_writes.append(loc)
            elif isinstance(sub, ast.Call):
                if isinstance(sub.func, ast.Attribute):
                    if sub.func.attr in MUTATORS:
                        loc = _resolve_base_loc(ctx, sub.func.value)
                        if loc is not None:
                            reads.append(loc)
                            direct_reads.append(loc)
                            writes.append(loc)
                            direct_writes.append(loc)
                    elif sub.func.attr == "acquire":
                        name = dotted_name(sub.func.value)
                        if name and is_lockish(name):
                            acquires.append((name, sub.lineno))
                    elif sub.func.attr == "release":
                        name = dotted_name(sub.func.value)
                        if name and is_lockish(name):
                            releases.append(name)
                callee = ctx.callgraph.resolve_call(
                    sub, ctx.module, ctx.cls_name
                )
                if callee is not None:
                    if id(sub) in awaited_calls:
                        awaited.append(callee.key)
                    if not callee.is_async or id(sub) in awaited_calls:
                        summary = _summary_of(ctx, callee)
                        reads.extend(summary.reads)
                        writes.extend(summary.writes)
    # an augmented assignment reads its own target before writing it
    if isinstance(node.stmt, ast.AugAssign):
        loc = _resolve_base_loc(ctx, node.stmt.target)
        if loc is not None:
            reads.append(loc)
            direct_reads.append(loc)
    return Effects(
        reads=tuple(dict.fromkeys(reads)),
        writes=tuple(dict.fromkeys(writes)),
        direct_reads=tuple(dict.fromkeys(direct_reads)),
        direct_writes=tuple(dict.fromkeys(direct_writes)),
        used_vars=tuple(dict.fromkeys(used_vars)),
        assigned_vars=tuple(dict.fromkeys(assigned_vars)),
        awaited_callees=tuple(dict.fromkeys(awaited)),
        acquires=tuple(acquires),
        releases=tuple(dict.fromkeys(releases)),
    )


# -- FLOW001 dataflow --------------------------------------------------------


def _node_locks(node) -> tuple:
    """Lock-ish with-contexts enclosing the node: ((name, with_id), ...)."""
    return tuple(
        (name, with_id)
        for name, with_id, _ in node.withs
        if is_lockish(name)
    )


class FunctionFindings:
    """FLOW001 raw results of one function, pre-annotation-filtering."""

    def __init__(self):
        self.pairs = set()  # (loc, read_line, write_line)
        self.reliances = {}  # loc -> set of lock names


def analyze_flow001(ctx, cfg) -> FunctionFindings:
    """Run the active-reads/taint dataflow to a fixpoint over ``cfg``."""
    out = FunctionFindings()
    for node in cfg.nodes:
        node.effects = node_effects(ctx, node)
        node.lock_pairs = _node_locks(node)
        node.lock_ids = frozenset(i for _, i in node.lock_pairs)
        node.cond_reads = tuple(
            (loc, line)
            for expr, line in node.conditions
            for loc in scan_reads(ctx, expr)
        )
    # state: (active, taint) per node entry
    #   active: {loc: frozenset((read_line, crossed, lock_ids))}
    #   taint:  {var: frozenset((loc, read_line))}
    states = {node.index: ({}, {}) for node in cfg.nodes}
    preds = {node.index: [] for node in cfg.nodes}
    for src, dsts in cfg.succs.items():
        for dst in dsts:
            preds[dst].append(src)
    worklist = list(cfg.entry) + [n.index for n in cfg.nodes]
    out_states = {}
    iterations = 0
    limit = 50 * (len(cfg.nodes) + 1)
    while worklist and iterations < limit:
        iterations += 1
        index = worklist.pop(0)
        node = cfg.nodes[index]
        active, taint = _merge_states(
            [out_states[p] for p in preds[index] if p in out_states]
        )
        new_out = _transfer(node, active, taint, out)
        if out_states.get(index) != new_out:
            out_states[index] = new_out
            worklist.extend(cfg.succs[index])
    return out


def _merge_states(states):
    active, taint = {}, {}
    for st_active, st_taint in states:
        for loc, facts in st_active.items():
            active[loc] = active.get(loc, frozenset()) | facts
        for var, facts in st_taint.items():
            taint[var] = taint.get(var, frozenset()) | facts
    return active, taint


def _transfer(node, active, taint, out: FunctionFindings):
    """One node's transfer function; facts are ``(read_line, crossed,
    lock_ids, is_direct)`` tuples.

    Three pairing refinements keep the check usable (each kills a
    measured false-positive class without losing the target bug shape):

    * **fresh rule** — a same-statement read (``self.c += 1``, a mutator
      call) pairs only with the fact generated *by this visit*, never
      with a stale same-line fact carried around a loop back-edge; a
      counter bumped once per iteration is one atomic RMW per iteration.
    * **all-crossed rule** — a pair is reported only when *every* fact
      for that read point is crossed: a loop that re-executes the read
      each iteration (check-then-pop queues) refreshes its knowledge, so
      only reads that cross a suspension on every path to the write are
      stale.
    * **direct rule** — a pair where both the read and the write happen
      inside *callees* (summary effects on both sides) belongs to the
      callee's own analysis; at least one side must be syntactic in this
      function.
    """
    effects = node.effects
    active = dict(active)
    # 1. new reads become active facts (not yet across a suspension)
    fresh = {}
    for loc in effects.reads:
        fact = (node.line, False, node.lock_ids,
                loc in effects.direct_reads)
        active[loc] = active.get(loc, frozenset()) | {fact}
        fresh[loc] = fact
    # 2. assigned locals inherit the taint of everything the stmt read
    taint_in = taint
    if effects.assigned_vars:
        gen = frozenset()
        for var in effects.used_vars:
            gen |= taint_in.get(var, frozenset())
        gen |= frozenset((loc, node.line) for loc in effects.reads)
        taint = dict(taint_in)
        for var in effects.assigned_vars:
            taint[var] = gen
    # 3. a suspension lets every other coroutine run: facts go stale
    if node.suspends:
        active = {
            loc: frozenset(
                (line, True, locks, direct)
                for line, _, locks, direct in facts
            )
            for loc, facts in active.items()
        }
        fresh = {
            loc: (fact[0], True, fact[2], fact[3])
            for loc, fact in fresh.items()
        }
    # 4. dependent writes against stale facts are findings (or reliances)
    for loc in effects.writes:
        write_direct = loc in effects.direct_writes
        dep_lines = set()
        for var in effects.used_vars:
            dep_lines.update(
                rl for (l, rl) in taint_in.get(var, frozenset()) if l == loc
            )
        if loc in effects.reads:
            dep_lines.add(node.line)
        for cond_loc, cond_line in node.cond_reads:
            if cond_loc == loc:
                dep_lines.add(cond_line)
        if not dep_lines:
            continue
        for read_line in dep_lines:
            if read_line == node.line:
                # fresh rule: a same-statement read is the one made by
                # this very visit, not a loop-carried fact
                facts = [fresh[loc]] if loc in fresh else []
            else:
                facts = [
                    f for f in active.get(loc, frozenset())
                    if f[0] == read_line
                ]
            # direct rule: at least one side syntactic in this function
            facts = [f for f in facts if f[3] or write_direct]
            if not facts or not all(f[1] for f in facts):
                continue  # all-crossed rule
            for _, _, lock_ids, _ in facts:
                common = lock_ids & node.lock_ids
                if common:
                    names = {n for n, i in node.lock_pairs if i in common}
                    out.reliances.setdefault(loc, set()).update(names)
                else:
                    out.pairs.add((loc, read_line, node.line))
    return (
        {loc: frozenset(facts) for loc, facts in active.items()},
        {var: frozenset(facts) for var, facts in taint.items()},
    )


# -- FLOW003 verb extraction -------------------------------------------------

#: names of the dispatch methods the verb extraction keys on; servers must
#: dispatch on a local called ``cmd`` inside these methods (repo convention).
#: ``_serve_request`` dispatches the v1 line framing, ``_serve_frame`` the
#: v2 binary framing.
DISPATCH_METHOD = "_serve_request"
DISPATCH_METHOD_V2 = "_serve_frame"
DISPATCH_VAR = "cmd"

_VERB_RE = re.compile(r"^([A-Z][A-Z0-9]*)")


def _module_string_tuples(tree) -> dict:
    """Module-level ``NAME = ("A", "B", ...)`` constants, by name."""
    consts = {}
    for node in tree.body:
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            continue
        value = node.value
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            consts[node.targets[0].id] = [e.value for e in value.elts]
    return consts


def _module_string_dict_keys(tree) -> dict:
    """Module-level ``NAME = {"A": ..., ...}`` string keys, by name.

    Returns ``{const_name: {key: line}}`` for every module-level dict
    literal whose keys are all string constants — the shape of the
    ``VERB_IDS`` / ``V1_LINES`` framing tables.
    """
    consts = {}
    for node in tree.body:
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            continue
        value = node.value
        if isinstance(value, ast.Dict) and value.keys and all(
            isinstance(k, ast.Constant) and isinstance(k.value, str)
            for k in value.keys
        ):
            consts[node.targets[0].id] = {
                k.value: k.lineno for k in value.keys
            }
    return consts


def has_method(tree, name: str) -> bool:
    """Whether any function in ``tree`` is named ``name``."""
    return any(func.name == name for _, func in iter_functions(tree))


def extract_handled_verbs(tree, method: str = DISPATCH_METHOD) -> dict:
    """Verbs a server file dispatches in one framing: ``{verb: line}``.

    A verb is *handled* when, inside a function named ``method``
    (``_serve_request`` for the v1 line framing, ``_serve_frame`` for the
    v2 binary framing), the local ``cmd`` is compared against a string
    constant (``==``) or against a tuple/list/set of string constants —
    inline or via a module-level constant such as ``CLUSTER_VERBS``
    (``in`` / ``not in``).
    """
    consts = _module_string_tuples(tree)
    handled = {}
    for _, func in iter_functions(tree):
        if func.name != method:
            continue
        for sub in iter_scope(func):
            if not (
                isinstance(sub, ast.Compare)
                and isinstance(sub.left, ast.Name)
                and sub.left.id == DISPATCH_VAR
                and len(sub.ops) == 1
            ):
                continue
            op, comp = sub.ops[0], sub.comparators[0]
            if (
                isinstance(op, ast.Eq)
                and isinstance(comp, ast.Constant)
                and isinstance(comp.value, str)
            ):
                handled.setdefault(comp.value, sub.lineno)
            elif isinstance(op, (ast.In, ast.NotIn)):
                if isinstance(comp, (ast.Tuple, ast.List, ast.Set)) and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in comp.elts
                ):
                    values = [e.value for e in comp.elts]
                elif isinstance(comp, ast.Name):
                    values = consts.get(comp.id, [])
                else:
                    values = []
                for value in values:
                    handled.setdefault(value, sub.lineno)
    return {v: l for v, l in handled.items() if _VERB_RE.match(v)}


def _payload_text(expr, assigns):
    """Best-effort leading text of a ``_request`` payload expression."""
    for _ in range(8):  # peel wrappers; bounded for safety
        if isinstance(expr, ast.Call) and isinstance(
            expr.func, ast.Attribute
        ) and expr.func.attr == "encode":
            expr = expr.func.value
        elif isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mod):
            expr = expr.left
        elif isinstance(expr, ast.Name):
            resolved = assigns.get(expr.id)
            if resolved is None or resolved is expr:
                return None
            expr, assigns = resolved, dict(assigns, **{expr.id: None})
        else:
            break
    if isinstance(expr, ast.JoinedStr):
        if expr.values and isinstance(expr.values[0], ast.Constant):
            expr = expr.values[0]
        else:
            return None
    if isinstance(expr, ast.Constant):
        value = expr.value
        if isinstance(value, bytes):
            try:
                value = value.decode("ascii")
            except UnicodeDecodeError:
                return None
        if isinstance(value, str):
            return value
    return None


def extract_sent_verbs(tree) -> dict:
    """Verbs a client file sends: ``{verb: line}``.

    A verb is *sent* when either

    * the first argument of a ``*.call(...)`` transport call is a string
      constant naming the verb (the v2-era unified API), or
    * the first argument of a legacy ``*._request(...)`` call starts with
      an upper-case token — as a constant, an f-string, a ``%``-formatted
      literal, or a local assigned one of those shapes.
    """
    sent = {}
    for _, func in iter_functions(tree):
        assigns = {}
        for sub in ast.walk(func):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
            ):
                assigns[sub.targets[0].id] = sub.value
        for sub in iter_scope(func):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("_request", "call")
                and sub.args
            ):
                continue
            if sub.func.attr == "call":
                arg = sub.args[0]
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and _VERB_RE.fullmatch(arg.value)
                ):
                    sent.setdefault(arg.value, sub.lineno)
                continue
            text = _payload_text(sub.args[0], assigns)
            if text is None:
                continue
            match = _VERB_RE.match(text.strip())
            if match:
                sent.setdefault(match.group(1), sub.lineno)
    return sent


def check_protocol(files, rule) -> list:
    """FLOW003: diff dispatched/sent verbs against the declarative spec.

    ``files`` is a list of ``(path_str, tree)``.  A layer is checked only
    when its server file is part of the analyzed set; the client-sender
    check additionally needs every spec client file present (a partial
    tree cannot prove the absence of a sender).

    A server file that defines ``_serve_frame`` is *framing-aware*: its
    v1 (``_serve_request``) and v2 (``_serve_frame``) dispatch arms are
    diffed separately against the framings each verb declares, so a verb
    wired into one framing but not the other is a finding.  A file
    without ``_serve_frame`` is checked as a single undifferentiated
    dispatch surface (the pre-v2 behaviour).  The ``VERB_IDS`` /
    ``V1_LINES`` framing tables are cross-checked against the spec when
    their defining files are part of the analyzed set.
    """
    from . import protocol_spec as spec

    def find(suffix):
        for path, tree in files:
            if path.replace("\\", "/").endswith(suffix):
                return path, tree
        return None, None

    findings = []

    def report(path, line, message):
        findings.append(
            Finding(
                rule=rule.id, severity=rule.severity, path=path,
                line=line, col=0, message=message,
            )
        )

    documented = {verb.name for verb in spec.SPEC}
    internal = spec.internal_verbs()
    client_files = [(s,) + find(s) for s in spec.CLIENT_FILES]
    clients_present = [(s, p, t) for s, p, t in client_files if t is not None]
    all_clients_present = len(clients_present) == len(spec.CLIENT_FILES)
    sent = {}  # verb -> (path, line), first sender wins
    for _, path, tree in clients_present:
        for verb, line in extract_sent_verbs(tree).items():
            sent.setdefault(verb, (path, line))

    for layer in sorted(spec.SERVER_FILES):
        server_path, server_tree = find(spec.SERVER_FILES[layer])
        if server_tree is None:
            continue
        handled_v1 = extract_handled_verbs(server_tree)
        if has_method(server_tree, DISPATCH_METHOD_V2):
            handled_v2 = extract_handled_verbs(
                server_tree, DISPATCH_METHOD_V2
            )
            surfaces = [
                ("v1", DISPATCH_METHOD, handled_v1,
                 spec.verbs_for_layer(layer, "v1") - internal),
                ("v2", DISPATCH_METHOD_V2, handled_v2,
                 spec.verbs_for_layer(layer, "v2") - internal),
            ]
        else:
            # legacy single-framing tree: one dispatch method is the
            # whole layer surface, framings are not distinguished
            handled_v2 = {}
            surfaces = [
                (None, DISPATCH_METHOD, handled_v1,
                 spec.verbs_for_layer(layer)),
            ]
        for framing, method, handled, declared in surfaces:
            where = f" in the {framing} framing ({method})" if framing else ""
            for verb in sorted(set(handled) - declared):
                report(
                    server_path, handled[verb],
                    f"server dispatches verb {verb!r}{where} not declared "
                    f"for layer {layer!r} in protocol_spec.py — add a spec "
                    f"entry",
                )
            dispatch_line = min(handled.values()) if handled else 1
            for verb in sorted(declared - set(handled)):
                report(
                    server_path, dispatch_line,
                    f"protocol_spec.py declares verb {verb!r} for layer "
                    f"{layer!r} but this server never dispatches it"
                    f"{where}",
                )
        if all_clients_present:
            handled_any = dict(handled_v2)
            handled_any.update(handled_v1)
            declared_any = spec.verbs_for_layer(layer) - internal
            for verb in sorted(declared_any & set(handled_any)):
                if verb not in sent:
                    report(
                        server_path, handled_any[verb],
                        f"verb {verb!r} is dispatched here but no client "
                        f"ever sends it — dead protocol surface",
                    )
    if any(t is not None for _, _, t in client_files):
        for verb in sorted(set(sent) - documented):
            path, line = sent[verb]
            report(
                path, line,
                f"client sends verb {verb!r} that protocol_spec.py does "
                f"not document — add a spec entry",
            )

    # framing tables: VERB_IDS (v2 ids in the codec) and V1_LINES (v1
    # line templates in the transport) must each cover exactly the verbs
    # the spec declares for that framing
    for suffix, table_name, framing in (
        (spec.CODEC_FILE, "VERB_IDS", "v2"),
        (spec.TRANSPORT_FILE, "V1_LINES", "v1"),
    ):
        table_path, table_tree = find(suffix)
        if table_tree is None:
            continue
        table = _module_string_dict_keys(table_tree).get(table_name)
        if table is None:
            continue  # table absent: nothing to diff (stub trees)
        expected = spec.verbs_for_framing(framing)
        for verb in sorted(set(table) - expected):
            report(
                table_path, table[verb],
                f"{table_name} has an entry for verb {verb!r} that "
                f"protocol_spec.py does not declare for the {framing} "
                f"framing — add/extend a spec entry",
            )
        table_line = min(table.values()) if table else 1
        for verb in sorted(expected - set(table)):
            report(
                table_path, table_line,
                f"protocol_spec.py declares verb {verb!r} for the "
                f"{framing} framing but {table_name} has no entry for it",
            )
    return findings


# -- project orchestration ---------------------------------------------------


@dataclass
class _Unit:
    """One analyzed function with its CFG (effects filled in)."""

    path: str
    module: str
    cls_name: str
    func: object
    cfg: object


class ProjectAnalysis:
    """Run the flow checks over a set of parsed files."""

    def __init__(self, files):
        """``files``: list of ``(path_str, module, tree, source)``."""
        self.files = sorted(files, key=lambda f: f[0])
        self.callgraph = CallGraph((m, t) for _, m, t, _ in self.files)
        self.annotations = {
            m: FileAnnotations(src) for _, m, _, src in self.files
        }
        self.shared = SharedModel(
            ((m, t) for _, m, t, _ in self.files),
            self.callgraph,
            self.annotations,
        )
        self.summaries = {}
        for _, module, tree, _ in self.files:
            for cls_name, func in iter_functions(tree):
                key = (module, cls_name or "", func.name)
                self.summaries[key] = compute_summary(
                    module, cls_name, func, self.shared, self.callgraph
                )
        self.suppressed = 0

    def _suppressed_by_annotation(self, module, func, *lines) -> bool:
        notes = self.annotations.get(module)
        if notes is None:
            return False
        reason = notes.atomic_reason(*(lines + (func.lineno,)))
        if reason is not None:
            self.suppressed += 1
            return True
        return False

    def run(self, rules) -> list:
        """All findings of the selected ``rules``, sorted."""
        by_id = {rule.id: rule for rule in rules}
        findings = []
        units = []
        reliances = {}  # Loc -> set of lock names
        want_flow = "FLOW001" in by_id or "FLOW002" in by_id
        if want_flow:
            for path, module, tree, _ in self.files:
                for cls_name, func in iter_functions(tree):
                    ctx = _FunctionContext(
                        module, cls_name, func, self.shared,
                        self.callgraph, self.summaries,
                    )
                    cfg = build_cfg(func)
                    result = analyze_flow001(ctx, cfg)
                    units.append(_Unit(path, module, cls_name or "", func, cfg))
                    for loc, names in result.reliances.items():
                        reliances.setdefault(loc, set()).update(names)
                    if "FLOW001" not in by_id:
                        continue
                    rule = by_id["FLOW001"]
                    qual = f"{cls_name}.{func.name}" if cls_name else func.name
                    for loc, read_line, write_line in sorted(result.pairs):
                        if self._suppressed_by_annotation(
                            module, func, write_line, read_line
                        ):
                            continue
                        findings.append(
                            Finding(
                                rule=rule.id, severity=rule.severity,
                                path=path, line=write_line, col=0,
                                message=(
                                    f"{qual} reads shared {loc.label} at "
                                    f"line {read_line} and writes it back "
                                    f"here with a suspension point in "
                                    f"between; hold one lock across the "
                                    f"gap or annotate "
                                    f"'# repro: atomic=<reason>'"
                                ),
                            )
                        )
        if "FLOW002" in by_id:
            findings.extend(self._check_flow002(by_id["FLOW002"], units,
                                                reliances))
        if "FLOW003" in by_id:
            findings.extend(
                check_protocol(
                    [(path, tree) for path, _, tree, _ in self.files],
                    by_id["FLOW003"],
                )
            )
        return sorted(findings, key=Finding.sort_key)

    # -- FLOW002 ---------------------------------------------------------------

    def _check_flow002(self, rule, units, reliances) -> list:
        findings = []

        def report(unit, line, message):
            if self._suppressed_by_annotation(unit.module, unit.func, line):
                return
            findings.append(
                Finding(
                    rule=rule.id, severity=rule.severity, path=unit.path,
                    line=line, col=0, message=message,
                )
            )

        for unit in units:
            qual = (
                f"{unit.cls_name}.{unit.func.name}"
                if unit.cls_name else unit.func.name
            )
            acquired = {}  # lock name -> first acquire line
            released_safely = set()
            for node in unit.cfg.nodes:
                for name, line in node.effects.acquires:
                    acquired.setdefault(name, line)
                for name in node.effects.releases:
                    if node.in_finally:
                        released_safely.add(name)
                # (b) awaiting a callee that re-takes a lock held here
                held = {n for n, _ in node.lock_pairs}
                if held:
                    for key in node.effects.awaited_callees:
                        summary = self.summaries.get(key)
                        if summary is None:
                            continue
                        for name in sorted(summary.acquires & held):
                            callee = ".".join(p for p in key[1:] if p)
                            report(
                                unit, node.line,
                                f"{qual} awaits {callee} while holding "
                                f"lock {name}, and the callee acquires "
                                f"the same lock — asyncio locks are not "
                                f"reentrant (deadlock)",
                            )
            # (a) manual acquire without a finally-guaranteed release
            for name in sorted(set(acquired) - released_safely):
                report(
                    unit, acquired[name],
                    f"{qual} acquires lock {name} manually but no "
                    f"release() is guaranteed on every exit path; "
                    f"release it in a finally block or use 'async with'",
                )
        # (c) direct writes bypassing a lock FLOW001 relies on
        for loc in sorted(reliances, key=lambda l: (l.module, l.owner, l.name)):
            locknames = reliances[loc]
            for unit in units:
                if unit.func.name == "__init__":
                    continue  # constructors run before the instance is shared
                qual = (
                    f"{unit.cls_name}.{unit.func.name}"
                    if unit.cls_name else unit.func.name
                )
                for node in unit.cfg.nodes:
                    if loc not in node.effects.direct_writes:
                        continue
                    held = {n for n, _ in node.lock_pairs}
                    if held & locknames:
                        continue
                    report(
                        unit, node.line,
                        f"{qual} writes shared {loc.label} without "
                        f"holding {' or '.join(sorted(locknames))}, but "
                        f"an await-spanning read-modify-write elsewhere "
                        f"relies on that lock; take the lock or annotate "
                        f"'# repro: atomic=<reason>'",
                    )
        return findings
