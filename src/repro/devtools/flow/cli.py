"""``repro analyze`` plumbing: engine façade + baseline ratchet.

The flow analyzer reuses the lint engine's file discovery, finding type
and output formats, so ``repro analyze --format json`` emits the same
schema as ``repro lint --format json`` (version / files_checked / rules /
findings) and drops into the same CI tooling.

The **baseline ratchet** (``--baseline analyze-baseline.json``) makes the
check adoptable on a codebase with known findings: the committed baseline
records a finding *count* per (rule, file) pair; pairs at or below their
recorded count are suppressed, any pair that *grows* fails with all of
its findings shown.  Shrinking counts is always allowed (and the baseline
should then be re-tightened).  The repo's own baseline is empty — every
real finding was fixed or carries a ``# repro: atomic=`` invariant — so
the ratchet only exists to keep it that way.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from ..lint.engine import Finding, LintEngine, module_name_for
from .checks import ProjectAnalysis, default_flow_rules

BASELINE_VERSION = 1


class FlowEngine:
    """Run the flow checks over files or directory trees."""

    def __init__(self, rules=None):
        self.rules = list(rules) if rules is not None else default_flow_rules()
        self.files_checked = 0
        self.suppressed = 0

    def analyze_paths(self, paths) -> list:
        """Analyze every Python file under ``paths``; findings sorted."""
        sources = {}
        for path in LintEngine.iter_python_files(paths):
            sources[str(path)] = path.read_text(encoding="utf-8")
        return self.analyze_sources(sources)

    def analyze_sources(self, sources) -> list:
        """Analyze a ``{path: source}`` mapping as one project."""
        findings = []
        files = []
        for path_str in sorted(sources):
            source = sources[path_str]
            try:
                tree = ast.parse(source, filename=path_str)
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        rule="FLOW000", severity="error", path=path_str,
                        line=exc.lineno or 1, col=exc.offset or 0,
                        message=f"syntax error: {exc.msg}",
                    )
                )
                continue
            files.append(
                (path_str, module_name_for(Path(path_str)), tree, source)
            )
        self.files_checked = len(sources)
        analysis = ProjectAnalysis(files)
        findings.extend(analysis.run(self.rules))
        self.suppressed = analysis.suppressed
        return sorted(findings, key=Finding.sort_key)


def run_analyze(paths, select=None) -> tuple:
    """Convenience: analyze ``paths``; returns ``(findings, engine)``."""
    engine = FlowEngine(default_flow_rules(select))
    return engine.analyze_paths(paths), engine


# -- baseline ratchet --------------------------------------------------------


def load_baseline(path) -> dict:
    """Parse a baseline file; raises ``ValueError`` on a bad shape."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ValueError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline is not valid JSON: {exc}") from None
    if (
        not isinstance(data, dict)
        or data.get("version") != BASELINE_VERSION
        or not isinstance(data.get("counts"), dict)
    ):
        raise ValueError(
            "baseline must be {'version': 1, 'counts': {rule: {path: n}}}"
        )
    return data


def finding_counts(findings) -> dict:
    """``{rule: {path: count}}`` for a finding list (baseline shape)."""
    counts = {}
    for finding in findings:
        by_path = counts.setdefault(finding.rule, {})
        by_path[finding.path] = by_path.get(finding.path, 0) + 1
    return counts


def apply_baseline(findings, baseline) -> tuple:
    """Ratchet ``findings`` against ``baseline``.

    Returns ``(kept, suppressed_count)``: findings of a (rule, path) pair
    whose count stayed at or below the recorded one are suppressed; a
    pair that grew (or is new) keeps *all* of its findings so the report
    shows the full context, not just the delta.
    """
    counts = finding_counts(findings)
    recorded = baseline.get("counts", {})
    kept, suppressed = [], 0
    for finding in findings:
        allowed = recorded.get(finding.rule, {}).get(finding.path, 0)
        if counts[finding.rule][finding.path] <= allowed:
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
