"""Repo-specific lint rules (REP001–REP013).

Each rule targets a hazard class that corrupts simulation results or
serving behaviour *without failing any test*: nondeterminism (REP001,
REP002), event-loop stalls (REP3/4), Python foot-guns (REP005–REP007),
architecture erosion (REP008), observability bypass (REP009),
decentralised parallelism (REP010), unaccounted host timing (REP011),
raw transport outside the serving/cluster stack (REP012) and
manually-managed span/timer lifecycles (REP013).
``docs/devtools.md`` documents the rule set and how to add one.
"""

from __future__ import annotations

import ast

from .engine import Rule, register

#: packages whose results must be bit-reproducible given a seed
SIMULATOR_SCOPE = (
    "repro.cache",
    "repro.coherence",
    "repro.core",
    "repro.dram",
    "repro.hierarchy",
    "repro.metrics",
    "repro.replacement",
    "repro.runner",
    "repro.workloads",
)

#: the serving data path — shares the determinism rules (the admission
#: decision must replay identically) but not the wall-clock ban (stats
#: deliberately time the host, through ``repro.obs.prof.clock``)
SERVICE_SCOPE = ("repro.service",)


def dotted_name(node) -> str:
    """``a.b.c`` for a Name/Attribute chain; ``""`` when not a plain chain."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register
class UnseededRandomRule(Rule):
    """Global/unseeded RNG use makes runs non-replayable.

    Simulator and service code must draw randomness from an explicitly
    seeded generator (``random.Random(seed)`` / ``np.random.default_rng(seed)``)
    that is threaded through constructors, never from the process-global
    state of the ``random`` or ``numpy.random`` modules.
    """

    id = "REP001"
    name = "unseeded-random"
    description = (
        "unseeded or module-global RNG in simulator/service code "
        "(breaks replay determinism)"
    )
    scope = SIMULATOR_SCOPE + SERVICE_SCOPE + ("repro.obs",)

    _GLOBAL_FNS = frozenset(
        {
            "betavariate", "choice", "choices", "expovariate", "gauss",
            "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
            "randbytes", "randint", "random", "randrange", "sample", "seed",
            "shuffle", "triangular", "uniform", "vonmisesvariate",
            "weibullvariate",
        }
    )
    _NP_LEGACY_FNS = frozenset(
        {
            "choice", "normal", "permutation", "rand", "randint", "randn",
            "random", "seed", "shuffle", "uniform",
        }
    )

    def check_Call(self, node: ast.Call, ctx) -> None:
        name = dotted_name(node.func)
        if name == "random.Random" and not node.args and not node.keywords:
            ctx.report(self, node, "random.Random() without an explicit seed")
        elif (
            name in ("numpy.random.default_rng", "np.random.default_rng")
            and not node.args
            and not node.keywords
        ):
            ctx.report(self, node, "default_rng() without an explicit seed")
        elif name.startswith("random.") and name.count(".") == 1:
            fn = name.split(".", 1)[1]
            if fn in self._GLOBAL_FNS:
                ctx.report(
                    self,
                    node,
                    f"module-global random.{fn}() shares unseeded process "
                    "state; use an injected random.Random(seed)",
                )
        elif name.startswith(("numpy.random.", "np.random.")):
            fn = name.rsplit(".", 1)[1]
            if fn in self._NP_LEGACY_FNS:
                ctx.report(
                    self,
                    node,
                    f"legacy global numpy.random.{fn}(); use "
                    "np.random.default_rng(seed)",
                )


@register
class WallClockRule(Rule):
    """Wall-clock reads in simulator code leak real time into results.

    Simulated time must come from the model's own cycle counters; stats
    that genuinely need to time the host use the monotonic interval clock
    behind :func:`repro.obs.prof.clock` (REP011 routes them there).
    """

    id = "REP002"
    name = "wall-clock"
    description = (
        "wall-clock access (time.time / datetime.now) in simulator code"
    )
    scope = SIMULATOR_SCOPE

    def check_Attribute(self, node: ast.Attribute, ctx) -> None:
        name = dotted_name(node)
        if name in ("time.time", "time.time_ns"):
            ctx.report(
                self, node,
                f"{name} reads the wall clock; simulator paths must use "
                "model cycle counts (or repro.obs.prof.clock for host "
                "timing)",
            )
        elif name.endswith((".now", ".utcnow", ".today")) and (
            "datetime" in name or name.startswith("date.")
        ):
            ctx.report(self, node, f"wall-clock {name} in simulator code")


@register
class BlockingInAsyncRule(Rule):
    """Synchronous blocking calls inside ``async def`` stall the event loop.

    One blocked coroutine freezes every connection on the shard — the
    serving path must use ``await asyncio.sleep`` and the streams API.
    """

    id = "REP003"
    name = "blocking-in-async"
    description = "blocking call (time.sleep, sync I/O) inside async def"

    _BLOCKING = frozenset(
        {
            "time.sleep",
            "socket.socket",
            "socket.create_connection",
            "subprocess.run",
            "subprocess.call",
            "subprocess.check_call",
            "subprocess.check_output",
            "subprocess.Popen",
            "urllib.request.urlopen",
            "open",
            "input",
        }
    )

    def check_Call(self, node: ast.Call, ctx) -> None:
        if not ctx.in_async_function:
            return
        name = dotted_name(node.func)
        if name in self._BLOCKING or name.startswith("requests."):
            ctx.report(
                self, node,
                f"blocking {name}() inside async def blocks the event loop "
                "(use the asyncio equivalent or run_in_executor)",
            )


@register
class UnawaitedCoroutineRule(Rule):
    """A coroutine called without ``await`` silently does nothing.

    Flags expression statements whose value is a call to a coroutine
    function defined in the same module (or a well-known asyncio
    coroutine) with the returned coroutine object discarded.  Attribute
    calls only match on ``self.method()`` — an arbitrary receiver (say a
    ``StreamWriter``) may legitimately share a method name, like
    ``close``, with a local ``async def``.
    """

    id = "REP004"
    name = "unawaited-coroutine"
    description = "coroutine called without await (result discarded)"

    _ASYNCIO_COROS = frozenset(
        {
            "asyncio.sleep", "asyncio.wait_for", "asyncio.gather",
            "asyncio.wait", "asyncio.open_connection", "asyncio.start_server",
            "asyncio.to_thread",
        }
    )

    def check_Expr(self, node: ast.Expr, ctx) -> None:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        name = dotted_name(call.func)
        local_coro = (
            name in ctx.async_defs
            or (
                name.startswith("self.")
                and name.count(".") == 1
                and name.split(".", 1)[1] in ctx.async_defs
            )
        )
        if name in self._ASYNCIO_COROS or local_coro:
            ctx.report(
                self, node, f"call to coroutine {name}() is never awaited"
            )


@register
class MutableDefaultRule(Rule):
    """Mutable default arguments alias state across calls."""

    id = "REP005"
    name = "mutable-default"
    description = "mutable default argument (list/dict/set literal or call)"

    def _is_mutable(self, default) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(default, ast.Call)
            and dotted_name(default.func) in ("list", "dict", "set", "bytearray")
        )

    def _check_function(self, node, ctx) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                ctx.report(
                    self, default,
                    f"mutable default in {node.name}(); use None and "
                    "initialise inside the body",
                )

    check_FunctionDef = _check_function
    check_AsyncFunctionDef = _check_function


@register
class FloatEqualityRule(Rule):
    """``==``/``!=`` against float literals is brittle in metrics code.

    Accumulated hit rates, IPC ratios and latency quantiles carry rounding
    error; compare with ``math.isclose`` / ``pytest.approx`` instead.
    """

    id = "REP006"
    name = "float-eq"
    description = "float literal compared with == / != in metrics/stats code"
    scope = ("repro.metrics", "repro.service.stats")

    def check_Compare(self, node: ast.Compare, ctx) -> None:
        operands = [node.left] + list(node.comparators)
        for op, (lhs, rhs) in zip(node.ops, zip(operands, operands[1:])):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (lhs, rhs):
                if isinstance(side, ast.Constant) and isinstance(
                    side.value, float
                ):
                    ctx.report(
                        self, node,
                        f"float literal {side.value!r} compared with "
                        "==/!=; use math.isclose",
                    )
                    break


@register
class BareExceptRule(Rule):
    """``except:`` swallows KeyboardInterrupt/SystemExit and hides bugs."""

    id = "REP007"
    name = "bare-except"
    description = "bare except clause"

    def check_ExceptHandler(self, node: ast.ExceptHandler, ctx) -> None:
        if node.type is None:
            ctx.report(
                self, node,
                "bare except catches SystemExit/KeyboardInterrupt; name "
                "the exceptions you expect",
            )


#: package -> layer index.  An import is legal when it targets a *lower*
#: layer, the same package, or a whitelisted peer pair.  See
#: docs/devtools.md for the rationale of each level.
LAYERS = {
    "repro.utils": 0,
    # the obs CLI (dashboard/export) sits above the simulator and the
    # service it drives; the longer prefix must precede "repro.obs"
    # because layer_package() returns the first match
    "repro.obs.cli": 5,
    "repro.obs": 1,
    "repro.coherence": 1,
    "repro.replacement": 1,
    "repro.workloads": 1,
    "repro.dram": 1,
    "repro.metrics": 1,
    "repro.cache": 2,
    "repro.core": 2,
    "repro.hierarchy": 3,
    # the runner executes simulator cells; the experiment drivers sit on
    # top of it, so they moved up a layer when the engine was introduced
    "repro.runner": 4,
    "repro.service": 4,
    # the cluster composes service nodes behind a hash ring, so it sits
    # one layer above repro.service alongside the experiment drivers
    "repro.cluster": 5,
    "repro.experiments": 5,
    "repro.devtools": 5,
    # perf records *suites of experiments* into baselines, so it sits
    # above the experiment registry; only the CLI shell outranks it
    "repro.perf": 6,
    "repro.__main__": 7,
}

#: same-layer cross-package imports that are explicitly allowed: the
#: decoupled tag/data machinery is shared between the set-associative
#: models (cache) and the reuse cache proper (core)
ALLOWED_PEERS = {
    ("repro.cache", "repro.core"),
    ("repro.core", "repro.cache"),
    # the coherence protocol emits trace events; the obs dashboard
    # reuses the plotting helpers of repro.metrics
    ("repro.coherence", "repro.obs"),
    ("repro.obs", "repro.metrics"),
    # the cluster-scaling experiment drives a LocalCluster; both sit at
    # layer 5, with the experiment registry on the consuming side
    ("repro.experiments", "repro.cluster"),
    # repro top --cluster fans CSTATUS/STATS in through ClusterClient;
    # both sit at layer 5, with the obs CLI on the consuming side
    ("repro.obs.cli", "repro.cluster"),
}


def layer_package(module: str):
    """The ``LAYERS`` key owning dotted ``module``, or ``None``."""
    for prefix in LAYERS:
        if module == prefix or module.startswith(prefix + "."):
            return prefix
    return None


@register
class LayerImportRule(Rule):
    """Cross-layer imports must point downward in the architecture.

    ``repro.cache`` importing ``repro.service`` would let serving concerns
    leak into the simulator; the layering table in this module is the
    single source of truth for what may import what.
    """

    id = "REP008"
    name = "layer-import"
    description = "import that violates the package layering order"
    scope = ("repro",)

    def _check_target(self, node, ctx, target: str) -> None:
        src_pkg = layer_package(ctx.module)
        dst_pkg = layer_package(target)
        if src_pkg is None or dst_pkg is None or src_pkg == dst_pkg:
            return
        if (src_pkg, dst_pkg) in ALLOWED_PEERS:
            return
        if LAYERS[dst_pkg] >= LAYERS[src_pkg]:
            ctx.report(
                self, node,
                f"{ctx.module} (layer {LAYERS[src_pkg]}, {src_pkg}) must "
                f"not import {target} (layer {LAYERS[dst_pkg]}, {dst_pkg})",
            )

    def check_Import(self, node: ast.Import, ctx) -> None:
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                self._check_target(node, ctx, alias.name)

    def check_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        if node.level == 0:
            target = node.module or ""
            if target == "repro" or target.startswith("repro."):
                self._check_target(node, ctx, target)
            return
        # resolve a relative import against the importing module's package
        parts = ctx.module.split(".")
        pkg_parts = parts if ctx.is_package else parts[:-1]
        base = pkg_parts[: len(pkg_parts) - (node.level - 1)]
        if not base:
            return
        target = ".".join(base + node.module.split(".")) if node.module else (
            ".".join(base)
        )
        if node.module is None:
            # ``from . import x`` — each name is a submodule of base
            for alias in node.names:
                self._check_target(node, ctx, target + "." + alias.name)
        else:
            self._check_target(node, ctx, target)


@register
class CounterBypassRule(Rule):
    """Stat counters on *other* objects must go through their recorder API.

    The instrumented modules own their counters behind ``record_*``
    methods (service) or publish them through the obs registry collector
    (simulator); reaching *into* another object and bumping a counter
    attribute directly (``self.stats.hits += 1``) bypasses both, so the
    mutation never shows up in METRICS/STATS and silently diverges from
    the registry.  Plain counters on ``self`` (``self.hits += 1``) stay
    legal — they are the object's own state and the collectors read them.
    Genuinely non-metric nested mutation can opt out with
    ``# repro: noqa=REP009``.
    """

    id = "REP009"
    name = "counter-bypass"
    description = (
        "direct counter mutation on a nested attribute bypasses the "
        "obs registry / stats recorder"
    )
    scope = (
        "repro.cache",
        "repro.core",
        "repro.coherence",
        "repro.hierarchy",
        "repro.service",
    )

    def check_AugAssign(self, node: ast.AugAssign, ctx) -> None:
        target = node.target
        if not isinstance(target, ast.Attribute):
            return
        if not isinstance(target.value, ast.Attribute):
            return
        name = dotted_name(target) or f"<expr>.{target.attr}"
        ctx.report(
            self, node,
            f"augmented assignment to nested attribute {name}; mutate "
            "counters through the owner's record_* API or the obs "
            "registry (# repro: noqa=REP009 if this is not a metric)",
        )


@register
class DecentralisedParallelismRule(Rule):
    """Process-level parallelism belongs to :mod:`repro.runner` alone.

    The engine guarantees that parallel execution is deterministic (cells
    carry their own seeds, results return in submission order) and
    observable (cells run/cached/failed counters, latency histogram).  A
    stray ``ProcessPoolExecutor`` or ``multiprocessing`` pool elsewhere
    would fork work that no cache key covers and no counter counts —
    every fan-out must go through ``Runner.run_cells``.
    """

    id = "REP010"
    name = "decentralised-parallelism"
    description = (
        "multiprocessing / concurrent.futures used outside repro.runner"
    )
    scope = ("repro",)

    _BANNED = ("multiprocessing", "concurrent.futures", "concurrent")

    def _allowed(self, ctx) -> bool:
        return ctx.module == "repro.runner" or ctx.module.startswith(
            "repro.runner."
        )

    def _is_banned(self, module: str) -> bool:
        return any(
            module == root or module.startswith(root + ".")
            for root in self._BANNED
        )

    def check_Import(self, node: ast.Import, ctx) -> None:
        if self._allowed(ctx):
            return
        for alias in node.names:
            if self._is_banned(alias.name):
                ctx.report(
                    self, node,
                    f"import of {alias.name} outside repro.runner; submit "
                    "cells through repro.runner.Runner so parallelism stays "
                    "seeded, cached and counted",
                )

    def check_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        if self._allowed(ctx) or node.level:
            return
        if self._is_banned(node.module or ""):
            ctx.report(
                self, node,
                f"import from {node.module} outside repro.runner; submit "
                "cells through repro.runner.Runner so parallelism stays "
                "seeded, cached and counted",
            )


@register
class UnaccountedHostTimingRule(Rule):
    """Host interval clocks must flow through :mod:`repro.obs.prof`.

    ``repro.obs.prof.clock`` / ``cpu_clock`` are the sanctioned access
    points for ``time.perf_counter`` / ``time.process_time``: timing that
    goes through them can be phase-attributed, land in the obs registry
    and show up in ``BENCH_perf.json`` baselines.  A direct clock read
    anywhere else produces a number no dashboard or baseline will ever
    see — invisible performance work is exactly what the perf observatory
    exists to eliminate.  :mod:`repro.obs` and :mod:`repro.runner` host
    the wrappers and the per-cell measurement loop, so they are exempt;
    a rare justified site elsewhere opts out with
    ``# repro: noqa=REP011``.
    """

    id = "REP011"
    name = "unaccounted-host-timing"
    description = (
        "direct time.perf_counter / time.process_time outside "
        "repro.obs / repro.runner (use repro.obs.prof.clock / cpu_clock)"
    )
    scope = ("repro",)

    _BANNED = frozenset(
        {
            "time.perf_counter", "time.perf_counter_ns",
            "time.process_time", "time.process_time_ns",
        }
    )
    _BANNED_NAMES = frozenset(
        {
            "perf_counter", "perf_counter_ns",
            "process_time", "process_time_ns",
        }
    )

    def _allowed(self, ctx) -> bool:
        return any(
            ctx.module == pkg or ctx.module.startswith(pkg + ".")
            for pkg in ("repro.obs", "repro.runner")
        )

    def check_Attribute(self, node: ast.Attribute, ctx) -> None:
        if self._allowed(ctx):
            return
        name = dotted_name(node)
        if name in self._BANNED:
            ctx.report(
                self, node,
                f"direct {name} bypasses the perf accounting layer; use "
                "repro.obs.prof.clock (wall) or cpu_clock (CPU) so the "
                "interval can be phase-attributed and baselined",
            )

    def check_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        if self._allowed(ctx) or node.level or node.module != "time":
            return
        for alias in node.names:
            if alias.name in self._BANNED_NAMES:
                ctx.report(
                    self, node,
                    f"importing time.{alias.name} bypasses the perf "
                    "accounting layer; use repro.obs.prof.clock / "
                    "cpu_clock instead",
                )


@register
class RawTransportRule(Rule):
    """Network transport belongs to :mod:`repro.service` / :mod:`repro.cluster`.

    The serving stack owns the wire: its framing enforces value/line size
    limits, its connections are counted and drained on shutdown, and its
    requests land in the obs registry and trace lanes.  A stray ``socket``
    or ``asyncio.start_server`` elsewhere opens a transport endpoint none
    of that covers — unbounded frames, connections no DRAIN ever sees,
    traffic invisible to METRICS.  Anything that needs bytes on the wire
    goes through :class:`~repro.service.client.CacheClient`,
    :class:`~repro.cluster.client.ClusterClient` or a server subclass.

    One named exception: :mod:`repro.obs.http`, the read-only
    observability endpoint.  It is itself part of the accountability
    story (bounded request lines, per-path request counts, torn down by
    ``ServiceTelemetry.stop``) and must stay dependency-free, so it is
    a sanctioned second transport rather than a stray one.
    """

    id = "REP012"
    name = "raw-transport"
    description = (
        "socket / asyncio server or connection primitives outside "
        "repro.service and repro.cluster"
    )
    scope = ("repro",)

    _BANNED_CALLS = frozenset(
        {
            "asyncio.start_server",
            "asyncio.start_unix_server",
            "asyncio.open_connection",
            "asyncio.open_unix_connection",
        }
    )

    def _allowed(self, ctx) -> bool:
        if ctx.module == "repro.obs.http":  # the sanctioned obs endpoint
            return True
        return any(
            ctx.module == pkg or ctx.module.startswith(pkg + ".")
            for pkg in ("repro.service", "repro.cluster")
        )

    def check_Import(self, node: ast.Import, ctx) -> None:
        if self._allowed(ctx):
            return
        for alias in node.names:
            if alias.name == "socket" or alias.name.startswith("socket."):
                ctx.report(
                    self, node,
                    "import of socket outside repro.service/repro.cluster; "
                    "talk to the cache through CacheClient/ClusterClient so "
                    "framing limits, drain and metrics apply",
                )

    def check_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        if self._allowed(ctx) or node.level:
            return
        if node.module == "socket" or (node.module or "").startswith("socket."):
            ctx.report(
                self, node,
                "import from socket outside repro.service/repro.cluster; "
                "talk to the cache through CacheClient/ClusterClient so "
                "framing limits, drain and metrics apply",
            )

    def check_Attribute(self, node: ast.Attribute, ctx) -> None:
        if self._allowed(ctx):
            return
        name = dotted_name(node)
        if name in self._BANNED_CALLS:
            ctx.report(
                self, node,
                f"{name} opens a raw transport endpoint outside "
                "repro.service/repro.cluster; use CacheClient/ClusterClient "
                "or subclass CacheServer so the connection is framed, "
                "drained and counted",
            )


@register
class UnscopedSpanRule(Rule):
    """Spans and phase timers must be context-managed outside :mod:`repro.obs`.

    ``tracer.span(...)`` and ``prof.phase(...)`` return context managers
    whose exit records the timed event; calling one without ``with``
    either silently records nothing (the generator never runs) or, with
    a manual ``.start()``/``.stop()`` pair, leaks the span on any
    exception between the two — a trace with holes exactly where the
    interesting failures happened.  :mod:`repro.obs` itself implements
    the managers, so it is exempt.
    """

    id = "REP013"
    name = "unscoped-span"
    description = (
        "tracer span / phase timer used without 'with' (or via manual "
        "start/stop) outside repro.obs"
    )
    scope = ("repro",)

    #: attribute calls that produce a context-managed timing scope
    _SCOPE_FACTORIES = frozenset({"span", "phase"})
    #: receiver-name fragments that mark a manual lifecycle call as a
    #: span/timer object (``span.start()``, ``timer.stop()``)
    _SCOPED_RECEIVERS = ("span", "timer", "phase")

    def _exempt(self, ctx) -> bool:
        return ctx.module == "repro.obs" or ctx.module.startswith("repro.obs.")

    def check_Module(self, node: ast.Module, ctx) -> None:
        # per-file state on a shared rule instance: the context
        # expressions of every with-item, so check_Call can tell
        # ``with tracer.span(...):`` from a bare ``tracer.span(...)``
        self._with_items = {
            id(item.context_expr)
            for wnode in ast.walk(node)
            if isinstance(wnode, (ast.With, ast.AsyncWith))
            for item in wnode.items
        }

    def check_Call(self, node: ast.Call, ctx) -> None:
        if self._exempt(ctx) or not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        if attr in self._SCOPE_FACTORIES:
            if id(node) not in getattr(self, "_with_items", ()):
                ctx.report(
                    self, node,
                    f".{attr}(...) outside a 'with' block records nothing "
                    "(or leaks on exceptions); use "
                    f"'with ...{attr}(...):' so the scope always closes",
                )
        elif attr in ("start", "stop"):
            receiver = dotted_name(node.func.value).rsplit(".", 1)[-1].lower()
            if any(frag in receiver for frag in self._SCOPED_RECEIVERS):
                ctx.report(
                    self, node,
                    f"manual {receiver}.{attr}() lifecycle leaks the scope "
                    "on exceptions; use the context-manager form instead",
                )
