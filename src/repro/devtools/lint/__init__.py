"""AST-based lint framework with repo-specific rules.

Importing this package registers the built-in rule set (REP001–REP008,
see :mod:`repro.devtools.lint.rules`); :func:`run_lint` is the one-call
entry point the CLI and tests use.
"""

from __future__ import annotations

from .engine import (
    Finding,
    LintEngine,
    ModuleContext,
    RULES,
    Rule,
    default_rules,
    format_human,
    format_json,
    module_name_for,
    register,
    run_lint,
)
from . import rules as _builtin_rules  # noqa: F401 - registers REP001-REP008

__all__ = [
    "Finding",
    "LintEngine",
    "ModuleContext",
    "RULES",
    "Rule",
    "default_rules",
    "format_human",
    "format_json",
    "module_name_for",
    "register",
    "run_lint",
]
