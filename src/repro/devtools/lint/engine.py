"""Core of the repo linter: rule plugin API, AST walker, suppression, output.

The engine parses each Python file once and dispatches every AST node to
the rules that declared a handler for its type.  A rule is a subclass of
:class:`Rule` registered with :func:`register`; it declares

* ``id`` — a stable ``REPnnn`` code used in reports and suppressions;
* ``name`` — a kebab-case slug for humans;
* ``severity`` — ``"error"`` or ``"warning"`` (errors drive the exit code);
* ``scope`` — optional tuple of dotted module prefixes the rule applies to
  (``None`` means every file);
* handler methods named ``check_<NodeType>`` (e.g. ``check_Call``), each
  taking ``(node, ctx)`` where ``ctx`` is the per-file
  :class:`ModuleContext`.

Findings on a line carrying ``# repro: noqa=REP001`` (or a comma-separated
list, or a bare ``# repro: noqa`` suppressing every rule) are dropped at
report time.  Output is either human-oriented (``path:line:col: CODE
message``) or machine-readable JSON — see :func:`format_human` and
:func:`format_json`.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path

#: matches ``# repro: noqa`` and ``# repro: noqa=REP001,REP002``
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\s*=\s*([A-Za-z0-9_,\s]+))?")

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One lint violation at a source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        return asdict(self)


class Rule:
    """Base class for lint rules; subclass, set metadata, add handlers."""

    #: stable rule code, e.g. ``"REP001"``
    id: str = "REP000"
    #: kebab-case slug, e.g. ``"unseeded-random"``
    name: str = "abstract-rule"
    #: one-line description shown by ``repro lint --list-rules``
    description: str = ""
    severity: str = "error"
    #: dotted module prefixes this rule applies to; ``None`` = everywhere
    scope: tuple = None

    def applies_to(self, module: str) -> bool:
        """True when the rule is active for dotted module name ``module``."""
        if self.scope is None:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )


#: rule id -> rule class, in registration order
RULES: dict = {}


def register(cls):
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls
    return cls


def default_rules(select=None):
    """Instantiate registered rules; ``select`` limits to the given ids."""
    if select is not None:
        unknown = set(select) - set(RULES)
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        return [RULES[rule_id]() for rule_id in RULES if rule_id in select]
    return [cls() for cls in RULES.values()]


def module_name_for(path: Path) -> str:
    """Infer the dotted module name of ``path`` from its ``repro`` ancestry.

    ``.../src/repro/cache/vway.py`` -> ``repro.cache.vway``; a file outside
    any ``repro`` tree falls back to its bare stem.  ``__init__.py``
    resolves to the package name itself.
    """
    parts = list(path.parts)
    anchors = [i for i, part in enumerate(parts) if part == "repro"]
    if anchors:
        parts = parts[anchors[-1]:]
    else:
        parts = [path.name]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


class ModuleContext:
    """Per-file state shared by every rule handler during one walk."""

    def __init__(self, path: Path, source: str, tree: ast.Module):
        self.path = path
        self.module = module_name_for(path)
        self.is_package = path.name == "__init__.py"
        self.tree = tree
        self.lines = source.splitlines()
        self.findings: list = []
        self.suppressed: int = 0
        #: names of every ``async def`` in the module (incl. methods)
        self.async_defs = {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.AsyncFunctionDef)
        }
        #: stack of enclosing function nodes maintained by the engine
        self.function_stack: list = []

    @property
    def in_async_function(self) -> bool:
        """True when the current node sits directly inside an ``async def``
        (a nested synchronous ``def`` resets the context)."""
        if not self.function_stack:
            return False
        return isinstance(self.function_stack[-1], ast.AsyncFunctionDef)

    def _suppressed_codes(self, line: int):
        """Codes suppressed on physical ``line``; ``None`` = not suppressed,
        empty tuple = all codes suppressed."""
        if not 1 <= line <= len(self.lines):
            return None
        match = _NOQA_RE.search(self.lines[line - 1])
        if match is None:
            return None
        codes = match.group(1)
        if codes is None:
            return ()
        return tuple(c.strip().upper() for c in codes.split(",") if c.strip())

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        """Record a finding unless a ``# repro: noqa`` comment suppresses it."""
        line = getattr(node, "lineno", 1)
        codes = self._suppressed_codes(line)
        if codes is not None and (codes == () or rule.id in codes):
            self.suppressed += 1
            return
        self.findings.append(
            Finding(
                rule=rule.id,
                severity=rule.severity,
                path=str(self.path),
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )


class LintEngine:
    """Run a set of rules over files or directory trees."""

    def __init__(self, rules=None):
        self.rules = list(rules) if rules is not None else default_rules()
        # node-type name -> [(rule, bound handler)]
        self._handlers: dict = {}
        for rule in self.rules:
            for attr in dir(rule):
                if attr.startswith("check_"):
                    node_type = attr[len("check_"):]
                    self._handlers.setdefault(node_type, []).append(
                        (rule, getattr(rule, attr))
                    )
        self.files_checked = 0
        self.suppressed = 0

    # -- file discovery --------------------------------------------------------

    @staticmethod
    def iter_python_files(paths):
        """Yield ``.py`` files under ``paths``, skipping caches/hidden dirs."""
        for raw in paths:
            path = Path(raw)
            if path.is_file():
                if path.suffix == ".py":
                    yield path
                continue
            for sub in sorted(path.rglob("*.py")):
                if any(
                    part == "__pycache__" or part.startswith(".")
                    for part in sub.parts
                ):
                    continue
                yield sub

    # -- linting ---------------------------------------------------------------

    def lint_source(self, source: str, path) -> list:
        """Lint a source string as if it lived at ``path``."""
        path = Path(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [
                Finding(
                    rule="REP000",
                    severity="error",
                    path=str(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            ]
        ctx = ModuleContext(path, source, tree)
        active = {
            node_type: [
                (rule, handler)
                for rule, handler in handlers
                if rule.applies_to(ctx.module)
            ]
            for node_type, handlers in self._handlers.items()
        }
        self._walk(tree, ctx, active)
        self.suppressed += ctx.suppressed
        return ctx.findings

    def lint_file(self, path) -> list:
        """Lint one file from disk."""
        path = Path(path)
        self.files_checked += 1
        return self.lint_source(path.read_text(encoding="utf-8"), path)

    def lint_paths(self, paths) -> list:
        """Lint every Python file under ``paths``; findings sorted."""
        findings = []
        for path in self.iter_python_files(paths):
            findings.extend(self.lint_file(path))
        return sorted(findings, key=Finding.sort_key)

    def _walk(self, node: ast.AST, ctx: ModuleContext, active: dict) -> None:
        for rule, handler in active.get(type(node).__name__, ()):
            handler(node, ctx)
        is_function = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if is_function:
            ctx.function_stack.append(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child, ctx, active)
        if is_function:
            ctx.function_stack.pop()


# -- output -----------------------------------------------------------------


def format_human(findings, files_checked: int) -> str:
    """Grep-friendly report, one finding per line."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity}] {f.message}"
        for f in findings
    ]
    noun = "file" if files_checked == 1 else "files"
    lines.append(
        f"{len(findings)} finding(s) in {files_checked} {noun} checked"
    )
    return "\n".join(lines)


def format_json(findings, files_checked: int, rules) -> str:
    """Machine-readable report (schema asserted in tests/test_lint.py)."""
    return json.dumps(
        {
            "version": 1,
            "files_checked": files_checked,
            "rules": [
                {
                    "id": rule.id,
                    "name": rule.name,
                    "severity": rule.severity,
                    "description": rule.description,
                }
                for rule in rules
            ],
            "findings": [f.to_dict() for f in findings],
        },
        indent=2,
    )


def run_lint(paths, select=None) -> tuple:
    """Convenience: lint ``paths``; returns ``(findings, engine)``."""
    engine = LintEngine(default_rules(select))
    return engine.lint_paths(paths), engine
