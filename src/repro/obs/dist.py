"""Distributed causal tracing: wire context, cross-node merge, key audit.

PR 6 made the cache multi-node; this module makes a multi-node operation
*one* observable object.  A SET that fans INVALs out to two peers used to
appear as three unrelated span fragments in three per-node ring buffers —
now every wire request can carry an optional trailing trace field
(``T=<trace-id>/<span-id>``, see :func:`wire_token`), each server opens a
child span under it, and the merged Chrome trace renders owner-write →
INVAL-fan-out → peer-ack as a single causal tree with cross-node flow
arrows.

The pieces, bottom up:

* :class:`TraceContext` / :class:`SpanIds` — span identity.  Ids are
  allocated from a per-node counter (``node0.17``), never from a clock or
  RNG: deterministic replays produce deterministic trees (and REP001 bans
  unseeded randomness anyway);
* :func:`wire_token` / :func:`pop_trace_token` — the optional trailing
  request-line field.  Absent token costs one ``startswith`` per request,
  which keeps the obs-off path inside the <5% overhead budget;
* :func:`current_context` / :func:`use_context` — a :mod:`contextvars`
  slot carrying the active request span through the async call chain, so
  fan-outs started deep inside :class:`~repro.cluster.node.ClusterNode`
  parent themselves correctly without threading a ``ctx`` argument through
  every signature;
* :func:`span_args` / :func:`leaf_args` — the ``args`` vocabulary events
  use to declare identity (``trace``/``span``/``parent``).  A *span* owns
  an id; a *leaf* (decision-audit instant) only points at its parent;
* :func:`merge_node_traces` — per-node event lists → one Chrome trace:
  one process lane per node (``process_name`` metadata), plus ``s``/``f``
  flow events (``cat="xnode"``) for every parent/child edge that crosses
  nodes — the happens-before arrows of the INVAL-before-ack protocol;
* :func:`trace_topology` — the merged tree reduced to a normalized
  multiset of root-to-event paths (ids and timestamps stripped), so two
  deterministic runs can be compared for identical causal shape;
* :func:`explain_key` / :func:`format_explain` — the per-key lifecycle
  (tag-only alloc, reuse detected, admission denied/granted, eviction,
  replica invalidation) extracted from a collected trace: the paper's
  selective allocation made inspectable per key, across nodes.

Layer note: this module stays at layer 1 (stdlib + :mod:`repro.obs`
siblings only); servers and CLIs import *it*, never the reverse.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager

from .tracing import DATA_REPL, REUSE_DETECTED, TAG_ONLY_ALLOC, TAG_REPL

#: wire prefix of the optional trailing trace field on request lines
TRACE_FIELD_PREFIX = "T="

#: category of the cross-node flow arrows in a merged trace (CI greps it)
CAT_XNODE = "xnode"
#: category of per-key decision-audit instants
CAT_AUDIT = "audit"

# -- decision-audit event names (extend the tracing taxonomy) -----------------

#: a SET was declined by the reuse filter (value tagged, not stored)
ADMISSION_DENIED = "AdmissionDenied"
#: a SET passed the admission filter and the value was stored
ADMITTED = "Admitted"
#: a SET updated an already-stored value in place
UPDATED = "Updated"
#: a DEL removed a stored value (tag dropped too)
DELETED = "Deleted"
#: a peer dropped its replica on an owner's INVAL
REPLICA_INVALIDATED = "ReplicaInvalidated"

#: store decision kind -> audit event name (see ReuseStore.decision_listener)
DECISION_EVENTS = {
    "tag_alloc": TAG_ONLY_ALLOC,
    "reuse": REUSE_DETECTED,
    "deny": ADMISSION_DENIED,
    "admit": ADMITTED,
    "update": UPDATED,
    "delete": DELETED,
    "evict_data": DATA_REPL,
    "evict_tag": TAG_REPL,
}


class TraceContext:
    """Identity of one span: its trace, its own id, its parent's id."""

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: str, span_id: str, parent_id: str | None = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def __repr__(self) -> str:
        return (f"TraceContext(trace={self.trace_id!r}, span={self.span_id!r}, "
                f"parent={self.parent_id!r})")

    def __eq__(self, other) -> bool:
        return (isinstance(other, TraceContext)
                and self.trace_id == other.trace_id
                and self.span_id == other.span_id
                and self.parent_id == other.parent_id)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.parent_id))


class SpanIds:
    """Deterministic span-id allocator: ``<prefix>.<n>`` from a counter.

    One allocator per node (the cluster passes the node name as prefix)
    keeps ids unique across the node's request spans and its fan-out
    spans; a root span's id doubles as the trace id.
    """

    __slots__ = ("prefix", "_next")

    def __init__(self, prefix: str):
        self.prefix = str(prefix)
        self._next = 0

    def _new_id(self) -> str:
        self._next += 1
        return f"{self.prefix}.{self._next}"

    def root(self) -> TraceContext:
        """Start a new trace (no incoming context)."""
        span_id = self._new_id()
        return TraceContext(span_id, span_id, None)

    def child(self, parent: TraceContext) -> TraceContext:
        """A span continuing ``parent``'s trace."""
        return TraceContext(parent.trace_id, self._new_id(), parent.span_id)

    def begin(self, parent: TraceContext | None) -> TraceContext:
        """Child of ``parent`` when given, fresh root otherwise."""
        return self.child(parent) if parent is not None else self.root()


# -- wire field ----------------------------------------------------------------


def wire_token(ctx: TraceContext) -> str:
    """The trailing request-line field propagating ``ctx`` to a server."""
    return f"{TRACE_FIELD_PREFIX}{ctx.trace_id}/{ctx.span_id}"


def parse_token(token: str) -> TraceContext | None:
    """Parse one ``T=<trace>/<span>`` token; None when it is not one."""
    if not token.startswith(TRACE_FIELD_PREFIX):
        return None
    trace_id, sep, span_id = token[len(TRACE_FIELD_PREFIX):].partition("/")
    if not sep or not trace_id or not span_id:
        return None
    return TraceContext(trace_id, span_id, None)


def pop_trace_token(parts: list) -> tuple:
    """Strip a trailing trace field from split request-line ``parts``.

    Returns ``(parts_without_token, TraceContext | None)``.  Stripping
    happens *before* arity checks, so every verb accepts the optional
    field without its usage message changing.  A key that itself looks
    like a trace field (``T=<x>/<y>`` in final position) would be eaten;
    the wire doc reserves that trailing shape.
    """
    if parts and parts[-1].startswith(TRACE_FIELD_PREFIX):
        ctx = parse_token(parts[-1])
        if ctx is not None:
            return parts[:-1], ctx
    return parts, None


# -- active-context propagation ------------------------------------------------

_ACTIVE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> TraceContext | None:
    """The request span active on this async call chain, if any."""
    return _ACTIVE.get()


@contextmanager
def use_context(ctx: TraceContext | None):
    """Make ``ctx`` the active context for the duration of the block."""
    token = _ACTIVE.set(ctx)
    try:
        yield ctx
    finally:
        _ACTIVE.reset(token)


def span_args(ctx: TraceContext | None, **extra) -> dict | None:
    """Event ``args`` for a span that *owns* ``ctx``'s id."""
    args = dict(extra)
    if ctx is not None:
        args["trace"] = ctx.trace_id
        args["span"] = ctx.span_id
        if ctx.parent_id is not None:
            args["parent"] = ctx.parent_id
    return args or None


def leaf_args(ctx: TraceContext | None, **extra) -> dict | None:
    """Event ``args`` for an instant *attached to* the active span.

    Leaves carry ``parent`` (the enclosing span) but no ``span`` of their
    own — they are evidence on a span, not tree nodes.
    """
    args = dict(extra)
    if ctx is not None:
        args["trace"] = ctx.trace_id
        args["parent"] = ctx.span_id
    return args or None


# -- cross-node merge ----------------------------------------------------------


def _event_list(doc) -> list:
    """The event array of a Chrome-trace document (dict or bare list)."""
    if isinstance(doc, dict):
        return doc.get("traceEvents") or []
    return doc if isinstance(doc, list) else []


def _process_names(events) -> dict:
    """pid -> node name, from ``process_name`` metadata events."""
    names = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            args = event.get("args") or {}
            if "name" in args:
                names[event.get("pid")] = args["name"]
    return names


def merge_node_traces(node_events: dict, time_unit: str = "s") -> dict:
    """Merge per-node Chrome event lists into one causal cluster trace.

    ``node_events`` maps node name -> list of exported event dicts (the
    output of the ``TRACE`` verb).  Each node becomes one Chrome *process*
    lane (named via ``process_name`` metadata); every parent/child span
    edge whose endpoints live on different nodes gains an ``s``/``f``
    flow-event pair with ``cat="xnode"`` — the rendered happens-before
    arrow of the INVAL-before-ack protocol.
    """
    names = sorted(node_events)
    merged = []
    # span id -> (pid, tid, ts) of the event that owns it
    span_home = {}
    for pid, node in enumerate(names):
        merged.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "ts": 0, "args": {"name": node},
        })
    for pid, node in enumerate(names):
        for event in node_events[node]:
            event = dict(event)
            event["pid"] = pid
            merged.append(event)
            args = event.get("args")
            if isinstance(args, dict) and "span" in args:
                span_home[args["span"]] = (
                    pid, event.get("tid", 0), event.get("ts", 0.0),
                )
    edges = 0
    flows = []
    for event in merged:
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        parent = args.get("parent")
        if parent is None:
            continue
        home = span_home.get(parent)
        if home is None or home[0] == event["pid"]:
            continue
        edges += 1
        flows.append({
            "ph": "s", "cat": CAT_XNODE, "name": "causal", "id": edges,
            "pid": home[0], "tid": home[1], "ts": home[2],
        })
        flows.append({
            "ph": "f", "bp": "e", "cat": CAT_XNODE, "name": "causal",
            "id": edges, "pid": event["pid"], "tid": event.get("tid", 0),
            "ts": event.get("ts", 0.0),
        })
    merged.extend(flows)
    return {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "otherData": {
            "nodes": names,
            "cross_node_edges": edges,
            "time_unit": time_unit,
        },
    }


# -- topology normalization ----------------------------------------------------


def trace_topology(doc) -> list:
    """The causal shape of a trace as a sorted multiset of path strings.

    Each span/leaf event is reduced to a signature ``node:name:key`` (no
    ids, no timestamps, no connection lanes) and replaced by its
    root-to-event signature path.  Two deterministic runs of the same
    workload must produce *equal* topologies even though every id and
    timestamp differs.  Events whose parent is missing are prefixed
    ``ORPHAN/`` (a causally complete trace has none); parent cycles are
    cut with a ``CYCLE/`` prefix.
    """
    events = [e for e in _event_list(doc)
              if isinstance(e, dict) and e.get("ph") != "M"
              and e.get("cat") != CAT_XNODE]
    names = _process_names(_event_list(doc))

    def sig(event) -> str:
        args = event.get("args") or {}
        node = names.get(event.get("pid"), event.get("pid"))
        return f"{node}:{event.get('name')}:{args.get('key', '')}"

    owner = {}
    for event in events:
        args = event.get("args")
        if isinstance(args, dict) and "span" in args:
            owner[args["span"]] = event

    memo = {}  # id(event) -> path string

    def path(event, trail) -> str:
        key = id(event)
        if key in memo:
            return memo[key]
        args = event.get("args") or {}
        parent = args.get("parent")
        if parent is None:
            out = sig(event)
        elif key in trail:
            out = "CYCLE/" + sig(event)
        else:
            parent_event = owner.get(parent)
            if parent_event is None:
                out = "ORPHAN/" + sig(event)
            else:
                trail.add(key)
                out = path(parent_event, trail) + "/" + sig(event)
                trail.discard(key)
        memo[key] = out
        return out

    return sorted(path(event, set()) for event in events)


# -- per-key lifecycle ---------------------------------------------------------


def explain_key(doc, key: str) -> list:
    """Every recorded event about ``key``, time-ordered across nodes.

    Returns dicts with ``ts``/``node``/``name``/``cat``/``dur``/``trace``
    and a ``detail`` dict of the remaining args (trace plumbing stripped).
    """
    events = _event_list(doc)
    names = _process_names(events)
    records = []
    for event in events:
        if not isinstance(event, dict) or event.get("ph") == "M":
            continue
        args = event.get("args")
        if not isinstance(args, dict) or args.get("key") != key:
            continue
        detail = {k: v for k, v in args.items()
                  if k not in ("trace", "span", "parent", "key")}
        records.append({
            "ts": event.get("ts", 0.0),
            "node": names.get(event.get("pid"), event.get("pid")),
            "name": event.get("name"),
            "cat": event.get("cat", ""),
            "dur": event.get("dur"),
            "trace": args.get("trace"),
            "detail": detail,
        })
    records.sort(key=lambda r: (r["ts"], str(r["node"]), str(r["name"])))
    return records


#: audit event name -> one-line meaning shown by ``repro explain``
_EXPLAIN_GLOSS = {
    TAG_ONLY_ALLOC: "first touch: tag allocated, no data (I -> TO)",
    REUSE_DETECTED: "second miss on a live tag: admission armed (TO reuse)",
    ADMISSION_DENIED: "SET declined by the reuse filter (stayed tag-only)",
    ADMITTED: "SET admitted into the data store (TO -> S)",
    UPDATED: "SET updated the stored value in place",
    DELETED: "stored value dropped by DEL",
    DATA_REPL: "data-array eviction, tag kept with history (S -> TO)",
    TAG_REPL: "tag eviction: everything dropped (* -> I)",
    REPLICA_INVALIDATED: "replica holder dropped its copy on the owner's INVAL",
}


def format_explain(key: str, records: list) -> str:
    """Human-readable lifecycle report for ``repro explain --key K``."""
    if not records:
        return (f"repro explain: no events recorded for key {key!r} "
                "(never touched, sampled out, or drained earlier)")
    lines = [f"repro explain — key {key!r}: {len(records)} event(s)"]
    counts = {}
    for rec in records:
        counts[rec["name"]] = counts.get(rec["name"], 0) + 1
        gloss = _EXPLAIN_GLOSS.get(rec["name"], "")
        detail = " ".join(f"{k}={v}" for k, v in sorted(rec["detail"].items()))
        node = str(rec["node"])
        lines.append(
            f"  {rec['ts']:>14.1f}us  {node:<10} {rec['name']:<20}"
            + (f" {detail}" if detail else "")
            + (f"   # {gloss}" if gloss else "")
        )
    audited = [(name, counts[name]) for name in _EXPLAIN_GLOSS if name in counts]
    if audited:
        lines.append("lifecycle: " + ", ".join(
            f"{count}x {name}" for name, count in audited
        ))
    return "\n".join(lines)
