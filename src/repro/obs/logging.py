"""One logging setup for the whole repo: ``repro.obs.logging.configure()``.

Every entry point (the ``repro`` CLI, the serving stack, ad-hoc experiment
scripts) calls :func:`configure` once instead of rolling its own
``logging.basicConfig`` variant, so log lines share one format and one
knob: the ``REPRO_LOG_LEVEL`` environment variable (or an explicit
``level=`` argument, which wins).

The default level is WARNING: experiment drivers and benchmarks print their
results on stdout, and logs go to stderr only when something deserves
attention.  ``REPRO_LOG_LEVEL=INFO`` narrates server lifecycle and
experiment progress; ``DEBUG`` adds per-connection detail.

Modules obtain loggers with :func:`get_logger`, which anchors them under the
``repro`` hierarchy so :func:`configure` governs them all::

    from ..obs.logging import get_logger
    log = get_logger(__name__)
"""

from __future__ import annotations

import logging
import os
import sys

#: single line format shared by every repro logger
LOG_FORMAT = "%(asctime)s %(levelname).1s %(name)s: %(message)s"
DATE_FORMAT = "%H:%M:%S"

#: environment variable consulted when ``configure(level=None)``
LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"

_configured = False


def _resolve_level(level) -> int:
    if level is None:
        level = os.environ.get(LEVEL_ENV_VAR, "WARNING")
    if isinstance(level, int):
        return level
    name = str(level).strip().upper()
    resolved = logging.getLevelName(name)
    if not isinstance(resolved, int):
        raise ValueError(
            f"unknown log level {level!r} (set {LEVEL_ENV_VAR} to "
            "DEBUG/INFO/WARNING/ERROR)"
        )
    return resolved


def configure(level=None, stream=None, force: bool = False) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy; returns the root logger.

    Idempotent: repeat calls only adjust the level unless ``force=True``
    (which also rebuilds the handler, e.g. after redirecting stderr in
    tests).  ``level`` accepts a name or numeric level and defaults to the
    ``REPRO_LOG_LEVEL`` environment variable, then WARNING.
    """
    global _configured
    root = logging.getLogger("repro")
    resolved = _resolve_level(level)
    if _configured and not force:
        root.setLevel(resolved)
        return root
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT, DATE_FORMAT))
    root.handlers[:] = [handler]
    root.setLevel(resolved)
    root.propagate = False
    _configured = True
    return root


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.`` prefixed if needed)."""
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)
