"""Deterministic, zero-dependency profiling for simulator and service code.

Three instruments, all opt-in and none able to change a result:

* **phase timers** — ``with prof.phase("simulate")`` wraps a coarse region
  (building a workload, running a cell, serving a request).  Phases nest;
  each exit records one observation under the slash-joined path of the
  enclosing phases (``cell/simulate``) into an in-memory aggregate and,
  when a registry is attached, into the labelled histogram
  ``repro_phase_seconds{phase=...}``.  The disabled timer hands out one
  shared no-op context manager, so instrumented code needs no guards and
  the cost of an inactive site is a method call;
* **deterministic sampling profiler** — :class:`DeterministicSampler`
  drives ``sys.setprofile`` and samples every Nth Python *call event*
  rather than every T milliseconds.  Because the trigger is a call count,
  two identical runs sample identical stacks: the collapsed-stack output
  (``a;b;c 42`` lines, the flamegraph.pl / speedscope interchange format)
  is byte-reproducible, which makes flamegraphs diffable across commits;
* **cProfile wrapper** — :class:`ProfileSession` runs a callable under the
  stdlib's deterministic tracer and exports ``pstats`` rows as JSON for
  machine consumption (``repro perf`` attaches it on demand).

This module is also the repo's sanctioned host-clock access point:
:func:`clock` and :func:`cpu_clock` wrap ``time.perf_counter`` /
``time.process_time`` so that lint rule REP011 can ban direct calls
everywhere outside :mod:`repro.obs` and :mod:`repro.runner` — host timing
that does not flow through here cannot land in the registry or in
``BENCH_perf.json``.  Simulated time is unaffected: it comes from model
cycle counters (REP002), never from these clocks.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
import time

try:  # unix-only; Windows callers see zeros rather than an ImportError
    import resource as _resource
except ImportError:  # pragma: no cover - non-posix platform
    _resource = None

#: histogram bounds for phase durations: 1 µs .. ~65 s, factor 4
PHASE_SECONDS_BOUNDS = tuple(1e-6 * 4 ** i for i in range(13))


def clock() -> float:
    """Monotonic wall-clock seconds (``time.perf_counter``).

    The one sanctioned wall-clock read for interval timing outside
    :mod:`repro.obs` / :mod:`repro.runner` (lint rule REP011).
    """
    return time.perf_counter()


def cpu_clock() -> float:
    """Process CPU seconds (``time.process_time``); REP011's CPU twin."""
    return time.process_time()


def peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (0 where unknown).

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; normalise to
    KiB so baselines recorded on either are comparable.
    """
    if _resource is None:
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        peak //= 1024
    return int(peak)


def process_resources() -> dict:
    """Point-in-time resource snapshot of this process.

    ``cpu_s`` is cumulative process CPU time, ``peak_rss_kb`` the
    high-water resident set — the pair every resource account in the repo
    (runner cells, service STATS, perf baselines) is built from.
    """
    return {"cpu_s": cpu_clock(), "peak_rss_kb": peak_rss_kb()}


# -- phase timers -------------------------------------------------------------


class _NullPhase:
    """Shared no-op context manager handed out by a disabled timer."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _NullPhase()


class _Phase:
    """Context manager for one phase entry (pooled per nesting level)."""

    __slots__ = ("timer", "name", "start")

    def __init__(self, timer: "PhaseTimer"):
        self.timer = timer
        self.name = ""
        self.start = 0.0

    def __enter__(self):
        self.timer._stack.append(self.name)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        elapsed = time.perf_counter() - self.start
        self.timer._record(elapsed)
        return False


class PhaseTimer:
    """Nestable named timers aggregated by slash-joined phase path.

    One timer instance per logical scope (a cell execution, a server).
    ``enabled=False`` (or :data:`NULL_PHASE_TIMER`) makes :meth:`phase`
    return a shared no-op so call sites never need guards.  A timer is not
    thread-safe — cells own one each, and the asyncio server runs on one
    loop — which keeps the hot path to a list append and two clock reads.
    """

    __slots__ = ("enabled", "registry", "_stack", "_agg", "_pool")

    def __init__(self, enabled: bool = True, registry=None):
        self.enabled = enabled
        #: optional MetricsRegistry receiving repro_phase_seconds
        self.registry = registry
        self._stack: list = []
        #: path -> [count, total_seconds] in first-entry order
        self._agg: dict = {}
        self._pool: list = []

    def phase(self, name: str):
        """Context manager timing the block as phase ``name`` (nestable)."""
        if not self.enabled:
            return _NULL_PHASE
        depth = len(self._stack)
        while len(self._pool) <= depth:
            self._pool.append(_Phase(self))
        ctx = self._pool[depth]
        ctx.name = name
        return ctx

    def _record(self, elapsed: float) -> None:
        path = "/".join(self._stack)
        self._stack.pop()
        slot = self._agg.get(path)
        if slot is None:
            self._agg[path] = [1, elapsed]
        else:
            slot[0] += 1
            slot[1] += elapsed
        if self.registry is not None:
            self.registry.histogram(
                "repro_phase_seconds",
                help="duration of profiled phases, by slash-joined path",
                bounds=PHASE_SECONDS_BOUNDS,
                phase=path,
            ).observe(elapsed)

    # -- views -----------------------------------------------------------------

    def table(self) -> dict:
        """Flat ``path -> {"count", "seconds"}`` in first-entry order."""
        return {
            path: {"count": count, "seconds": seconds}
            for path, (count, seconds) in self._agg.items()
        }

    def tree(self) -> dict:
        """Nested ``name -> {"count", "seconds", "children"}`` view.

        Structure and counts are deterministic for a deterministic program;
        only the ``seconds`` values carry timing noise (the determinism
        tests compare trees with :func:`phase_shape`).
        """
        root: dict = {}
        for path, (count, seconds) in self._agg.items():
            node, children = None, root
            for part in path.split("/"):
                node = children.setdefault(
                    part, {"count": 0, "seconds": 0.0, "children": {}}
                )
                children = node["children"]
            node["count"] += count
            node["seconds"] += seconds
        return root

    def clear(self) -> None:
        """Drop every aggregate (the stack must be empty)."""
        if self._stack:
            raise RuntimeError(f"phases still open: {self._stack}")
        self._agg.clear()


#: the shared disabled timer (what Observability.disabled() carries)
NULL_PHASE_TIMER = PhaseTimer(enabled=False)


def phase_shape(tree: dict) -> dict:
    """``tree()`` with the timing noise stripped: names and counts only."""
    return {
        name: {"count": node["count"],
               "children": phase_shape(node["children"])}
        for name, node in tree.items()
    }


def merge_phase_tables(tables) -> dict:
    """Sum flat phase tables (e.g. one per cell) path-by-path."""
    out: dict = {}
    for table in tables:
        for path, row in table.items():
            slot = out.setdefault(path, {"count": 0, "seconds": 0.0})
            slot["count"] += row["count"]
            slot["seconds"] += row["seconds"]
    return out


# -- deterministic sampling profiler ------------------------------------------


class DeterministicSampler:
    """Count-triggered stack sampler with reproducible output.

    Installs a ``sys.setprofile`` hook and captures the Python stack on
    every ``period``-th *call event*.  Sampling on a call count instead of
    a timer means an identical run produces identical samples — the
    collapsed-stack output diffs cleanly between commits, at the price of
    over-weighting call-heavy regions relative to tight loops (the right
    trade for regression hunting; use :class:`ProfileSession` for exact
    per-function times).

    The profile hook itself costs one integer increment per Python call,
    plus a stack walk on the sampled ones, so keep it out of measured
    baselines: ``repro perf record`` runs it on a separate pass.
    """

    #: frames above this depth are truncated (guards pathological recursion)
    MAX_DEPTH = 64

    def __init__(self, period: int = 997):
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.period = period
        self.calls = 0
        self.samples = 0
        self._counts: dict = {}
        self._active = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Install the profile hook (refuses to stack on another hook)."""
        if self._active:
            raise RuntimeError("sampler already started")
        if sys.getprofile() is not None:
            raise RuntimeError("another sys.setprofile hook is installed")
        self._active = True
        sys.setprofile(self._hook)

    def stop(self) -> None:
        """Remove the profile hook."""
        if self._active:
            sys.setprofile(None)
            self._active = False

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False

    # -- the hook --------------------------------------------------------------

    def _hook(self, frame, event, arg) -> None:
        if event != "call":
            return
        self.calls += 1
        if self.calls % self.period:
            return
        stack = []
        depth = 0
        while frame is not None and depth < self.MAX_DEPTH:
            code = frame.f_code
            module = frame.f_globals.get("__name__", "?")
            if module != __name__:  # the sampler never profiles itself
                stack.append(f"{module}:{code.co_name}")
            frame = frame.f_back
            depth += 1
        stack.reverse()
        key = ";".join(stack)
        self._counts[key] = self._counts.get(key, 0) + 1
        self.samples += 1

    # -- output ----------------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack text (``root;child;leaf count`` per line).

        Sorted by stack string so identical runs emit identical bytes;
        render with flamegraph.pl, speedscope or any flamegraph viewer.
        """
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(self._counts.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def counts(self) -> dict:
        """Raw ``stack -> samples`` mapping (a copy)."""
        return dict(self._counts)

    def clear(self) -> None:
        """Reset call and sample state."""
        self.calls = 0
        self.samples = 0
        self._counts.clear()


def profile_collapsed(fn, period: int = 997) -> tuple:
    """Run ``fn()`` under a :class:`DeterministicSampler`.

    Returns ``(fn's result, collapsed-stack text)``.
    """
    sampler = DeterministicSampler(period=period)
    with sampler:
        result = fn()
    return result, sampler.collapsed()


# -- cProfile wrapper ----------------------------------------------------------


class ProfileSession:
    """Self-profiling ``cProfile`` run with pstats→JSON export.

    Exact deterministic per-function timing counts (every call traced, no
    sampling), for the cases where the collapsed-stack view is too coarse::

        session = ProfileSession()
        result = session.run(spec.execute, params)
        session.write_json("profile.json", top=50)
    """

    def __init__(self):
        self._profile = cProfile.Profile()
        self.ran = False

    def run(self, fn, *args, **kwargs):
        """Execute ``fn(*args, **kwargs)`` under the profiler."""
        self.ran = True
        return self._profile.runcall(fn, *args, **kwargs)

    def rows(self, top: int | None = None) -> list:
        """pstats rows as dicts, heaviest cumulative time first."""
        stats = pstats.Stats(self._profile)
        rows = []
        for (filename, line, name), (cc, nc, tt, ct, _callers) in (
            stats.stats.items()
        ):
            rows.append(
                {
                    "function": f"{filename}:{line}({name})",
                    "ncalls": nc,
                    "primitive_calls": cc,
                    "tottime_s": tt,
                    "cumtime_s": ct,
                }
            )
        rows.sort(key=lambda r: (-r["cumtime_s"], r["function"]))
        return rows[:top] if top else rows

    def write_json(self, path, top: int | None = 50) -> None:
        """Dump the heaviest ``top`` rows as an indented JSON document."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"schema": 1, "rows": self.rows(top)}, fh, indent=2)
