"""repro.obs — observability shared by the simulator and the serving stack.

The paper's claims are claims about *event counts* — reuses detected,
tag-only allocations, ``DataRepl`` demotions, memory refetches — and the
ROADMAP's performance goals need per-path measurements to aim at.  This
package is the one place both live:

* :mod:`repro.obs.registry` — named counters/gauges/log-bucketed histograms
  with labels, snapshot/diff/merge, Prometheus-text and JSON exporters;
* :mod:`repro.obs.tracing` — typed event tracing through a sampling ring
  buffer, exported as JSONL or Chrome ``trace_event`` JSON (opens directly
  in ``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.logging` — the repo-wide ``configure()`` /
  ``get_logger()`` helpers (``REPRO_LOG_LEVEL`` env var);
* :mod:`repro.obs.dist` — distributed causal tracing: the wire trace
  field, per-node span ids, cross-node trace merging, topology
  normalization and the per-key ``repro explain`` audit;
* :mod:`repro.obs.top` — renders the live ``repro top`` dashboard (and
  its ``--cluster`` variant) from STATS/CSTATUS snapshots (the CLI loops
  live in :mod:`repro.obs.cli`);
* :mod:`repro.obs.timeseries` — delta-encoded, tier-downsampled history
  of registry samples, queryable as ``(metric, labels) → [(t, value)]``;
* :mod:`repro.obs.alerts` — declarative alert rules (threshold / delta /
  rate / ratio over trailing windows, for-duration + hysteresis) driven
  through a ``pending → firing → resolved`` lifecycle;
* :mod:`repro.obs.http` — the dependency-free ``--obs-port`` HTTP
  endpoint (``/metrics`` ``/healthz`` ``/readyz`` ``/varz`` ``/history``
  ``/alertz``);
* :mod:`repro.obs.flight` — the crash flight recorder: atomic forensic
  bundles of time-series tail + trace ring + stats, rendered by
  ``repro obs flight``.

:class:`Observability` bundles one registry and one tracer so constructors
thread a single handle.  The disabled bundle is a true no-op: null metrics,
a disabled tracer, and hot paths that only pay an attribute load plus a
branch (asserted by ``tests/test_obs_overhead.py``).

Instrumented layers: :mod:`repro.core.reuse_cache`,
:mod:`repro.cache.conventional`, :mod:`repro.cache.ncid`,
:mod:`repro.coherence.protocol`, :mod:`repro.hierarchy.system` and the whole
request path of :mod:`repro.service`.  See ``docs/observability.md``.
"""

from __future__ import annotations

from .alerts import AlertEngine, AlertRule, AlertState, builtin_rules
from .dist import (
    ADMISSION_DENIED,
    ADMITTED,
    DELETED,
    REPLICA_INVALIDATED,
    UPDATED,
    SpanIds,
    TraceContext,
    current_context,
    explain_key,
    format_explain,
    merge_node_traces,
    trace_topology,
    use_context,
)
from .flight import FlightRecorder, load_flight, render_flight
from .http import ObsHTTPServer
from .prof import (
    NULL_PHASE_TIMER,
    DeterministicSampler,
    PhaseTimer,
    ProfileSession,
    merge_phase_tables,
    phase_shape,
    profile_collapsed,
)
from .registry import (
    LATENCY_BOUNDS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SLOTracker,
    diff_snapshots,
    format_prometheus,
    log_bounds,
    merge_registry_snapshots,
)
from .timeseries import (
    DEFAULT_TIERS,
    TelemetrySampler,
    Tier,
    TimeSeriesStore,
)
from .tracing import (
    COHERENCE_TRANSITION,
    DATA_REPL,
    EVICTION,
    FILL,
    NULL_TRACER,
    REUSE_DETECTED,
    TAG_ONLY_ALLOC,
    TAG_REPL,
    TraceEvent,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
    "PhaseTimer",
    "NULL_PHASE_TIMER",
    "DeterministicSampler",
    "ProfileSession",
    "merge_phase_tables",
    "phase_shape",
    "profile_collapsed",
    "diff_snapshots",
    "merge_registry_snapshots",
    "format_prometheus",
    "log_bounds",
    "validate_chrome_trace",
    "LATENCY_BOUNDS_S",
    "REUSE_DETECTED",
    "TAG_ONLY_ALLOC",
    "DATA_REPL",
    "TAG_REPL",
    "FILL",
    "EVICTION",
    "COHERENCE_TRANSITION",
    "SLOTracker",
    "TraceContext",
    "SpanIds",
    "current_context",
    "use_context",
    "merge_node_traces",
    "trace_topology",
    "explain_key",
    "format_explain",
    "ADMISSION_DENIED",
    "ADMITTED",
    "UPDATED",
    "DELETED",
    "REPLICA_INVALIDATED",
    "TimeSeriesStore",
    "TelemetrySampler",
    "Tier",
    "DEFAULT_TIERS",
    "AlertRule",
    "AlertEngine",
    "AlertState",
    "builtin_rules",
    "ObsHTTPServer",
    "FlightRecorder",
    "load_flight",
    "render_flight",
]


class Observability:
    """One registry + one tracer + one phase timer, threaded as a unit."""

    def __init__(self, registry: MetricsRegistry, tracer, prof=None):
        self.registry = registry
        self.tracer = tracer
        #: phase timer (``with obs.prof.phase("simulate")``); defaults to
        #: the shared no-op so existing two-argument callers stay valid
        self.prof = prof if prof is not None else NULL_PHASE_TIMER

    @classmethod
    def disabled(cls) -> "Observability":
        """The no-op bundle: null metrics, disabled tracer, null phases."""
        return cls(MetricsRegistry(enabled=False), NULL_TRACER,
                   NULL_PHASE_TIMER)

    @classmethod
    def enabled(
        cls,
        tracing: bool = False,
        trace_capacity: int = 65536,
        sample_every: int = 1,
        time_unit: str = "cycles",
        profile: bool = False,
    ) -> "Observability":
        """Metrics on; tracing and phase profiling optional.

        With ``profile=True`` the bundle carries a live
        :class:`~repro.obs.prof.PhaseTimer` feeding the registry's
        ``repro_phase_seconds`` histograms.
        """
        registry = MetricsRegistry(enabled=True)
        tracer = (
            Tracer(
                capacity=trace_capacity,
                sample_every=sample_every,
                time_unit=time_unit,
            )
            if tracing
            else NULL_TRACER
        )
        prof = (
            PhaseTimer(enabled=True, registry=registry)
            if profile
            else NULL_PHASE_TIMER
        )
        return cls(registry, tracer, prof)

    @property
    def active(self) -> bool:
        """True when the registry, tracer or phase timer does real work."""
        return self.registry.enabled or self.tracer.enabled or self.prof.enabled
