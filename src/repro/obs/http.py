"""Dependency-free asyncio HTTP endpoint for live observability.

A deliberately small HTTP/1.0-style server (every response carries
``Connection: close``) that makes a running node scrapeable by standard
tooling — Prometheus, Grafana agents, ``curl``, a k8s liveness probe —
without adding a web framework.  Routes:

===========  ==============================================================
path         payload
===========  ==============================================================
/metrics     Prometheus text exposition — byte-identical to
             :func:`repro.obs.registry.MetricsRegistry.to_prometheus`
/healthz     liveness: 200 ``{"healthy": true}`` / 503 when down/draining
/readyz      readiness: 200 only when serving and not draining
/varz        JSON snapshot: server info + registry snapshot + alert states
/history     time-series query: ``?metric=NAME[&label.k=v][&window=SECS]``
/alertz      alert rules, current states, and the transition timeline
===========  ==============================================================

Only ``GET`` (and ``HEAD``) are served: the endpoint is strictly
read-only, so exposing it is safe even on nodes doing real traffic.

The routing core is :meth:`ObsHTTPServer.handle_path`, a pure function
from path to ``(status, content-type, body)`` — tests exercise every
route without opening a socket.  The asyncio wrapper around it is the
only raw-transport user outside ``repro.service``/``repro.cluster`` and
is allow-listed by REP012 as such.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

__all__ = ["ObsHTTPServer"]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}

#: Prometheus text exposition content type
_PROM_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_JSON_TYPE = "application/json; charset=utf-8"

_MAX_REQUEST_BYTES = 8192


def _json_body(obj) -> bytes:
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


class ObsHTTPServer:
    """Read-only observability endpoint over a registry + telemetry stack.

    Every collaborator is optional: a missing piece turns its routes
    into 404s rather than crashing the server, so the endpoint works
    identically for a bare server, a telemetry-enabled one, and tests
    that fake single pieces.

    ``health`` is a zero-arg callable returning a dict with at least
    ``healthy`` and ``ready`` booleans (extra keys pass through to the
    response body) — the serving stack binds it to live server state so
    DRAIN flips ``/healthz`` without any polling.
    """

    def __init__(self, registry=None, timeseries=None, alerts=None,
                 health=None, varz=None, host="127.0.0.1", port=0):
        self.registry = registry
        self.timeseries = timeseries
        self.alerts = alerts
        self._health = health
        self._varz = varz
        self.host = host
        self.port = port
        self._server = None
        #: requests served, by path (for /varz and tests)
        self.requests_served = {}

    # -- routing (pure: no sockets, fully unit-testable) ----------------------

    def health_snapshot(self) -> dict:
        if self._health is None:
            return {"healthy": True, "ready": True}
        return dict(self._health())

    def handle_path(self, path: str):
        """Route one request path → ``(status, content_type, body_bytes)``."""
        split = urlsplit(path)
        route = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        if route == "/metrics":
            if self.registry is None:
                return 404, _JSON_TYPE, _json_body({"error": "no registry"})
            return 200, _PROM_TYPE, self.registry.to_prometheus().encode("utf-8")
        if route == "/healthz":
            health = self.health_snapshot()
            status = 200 if health.get("healthy") else 503
            return status, _JSON_TYPE, _json_body(health)
        if route == "/readyz":
            health = self.health_snapshot()
            status = 200 if health.get("ready") else 503
            return status, _JSON_TYPE, _json_body(health)
        if route == "/varz":
            return 200, _JSON_TYPE, _json_body(self._varz_payload())
        if route == "/history":
            return self._history(query)
        if route == "/alertz":
            if self.alerts is None:
                return 404, _JSON_TYPE, _json_body({"error": "no alert engine"})
            return 200, _JSON_TYPE, _json_body(self.alerts.to_dict())
        if route == "/":
            routes = ["/metrics", "/healthz", "/readyz", "/varz",
                      "/history", "/alertz"]
            return 200, _JSON_TYPE, _json_body({"routes": routes})
        return 404, _JSON_TYPE, _json_body({"error": f"no route {route}"})

    def _varz_payload(self) -> dict:
        payload = {"health": self.health_snapshot()}
        if self._varz is not None:
            payload["server"] = self._varz()
        if self.registry is not None and getattr(self.registry, "enabled", False):
            payload["metrics"] = self.registry.snapshot()
        if self.timeseries is not None:
            payload["timeseries"] = {
                "samples_taken": self.timeseries.samples_taken,
                "series": len(self.timeseries.series()),
            }
        if self.alerts is not None:
            payload["alerts"] = self.alerts.states()
        payload["requests_served"] = dict(self.requests_served)
        return payload

    def _history(self, query):
        if self.timeseries is None:
            return 404, _JSON_TYPE, _json_body({"error": "no time-series store"})
        metric = query.get("metric", [None])[0]
        if not metric:
            return 400, _JSON_TYPE, _json_body(
                {"error": "missing ?metric=", "series": self.timeseries.series()}
            )
        labels = {
            key[len("label."):]: values[0]
            for key, values in query.items() if key.startswith("label.")
        } or None
        try:
            window = float(query.get("window", ["60"])[0])
        except ValueError:
            return 400, _JSON_TYPE, _json_body({"error": "bad window"})
        points = self.timeseries.window(metric, labels, duration=window)
        return 200, _JSON_TYPE, _json_body(
            {"metric": metric, "labels": labels, "window_s": window,
             "points": points}
        )

    # -- asyncio transport -----------------------------------------------------

    def respond(self, request_line: str):
        """Full response bytes for one request line (pure helper)."""
        parts = request_line.split()
        if len(parts) < 2 or parts[0] not in ("GET", "HEAD"):
            status, ctype, body = 405, _JSON_TYPE, _json_body(
                {"error": "only GET is served"})
        else:
            status, ctype, body = self.handle_path(parts[1])
            path = urlsplit(parts[1]).path.rstrip("/") or "/"
            self.requests_served[path] = self.requests_served.get(path, 0) + 1
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        if parts and parts[0] == "HEAD":
            return head
        return head + body

    async def _handle(self, reader, writer):
        try:
            request_line = await reader.readline()
            if not request_line or len(request_line) > _MAX_REQUEST_BYTES:
                return
            # drain headers so well-behaved clients aren't reset mid-send
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            writer.write(self.respond(request_line.decode("ascii", "replace")))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        # swap before the first await so a concurrent stop() sees None
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
