"""Zero-dependency metrics registry: counters, gauges, log-bucketed histograms.

The registry is the single sink for every number the repo wants to expose —
simulator event counts, serving hit rates, latency distributions — behind a
uniform naming/labelling scheme and two exporters (Prometheus text and
JSON).  Design constraints, in order:

1. **hot paths stay hot** — code on the simulator's per-access path never
   calls the registry per event.  Instead it keeps plain int counters (the
   existing idiom) and registers a *collector*, a callback the registry runs
   at snapshot time to mirror those ints into metrics.  Per-event calls
   (``Counter.inc``, ``Histogram.observe``) are reserved for paths that can
   afford a method call, such as the service's per-request accounting;
2. **no-op mode is near-free** — a registry built with ``enabled=False``
   hands out shared null metrics whose methods do nothing, registers no
   collectors, and snapshots to an empty dict, so instrumented code needs no
   ``if`` guards;
3. **snapshots are values** — :meth:`MetricsRegistry.snapshot` returns a
   plain JSON-safe dict; :func:`diff_snapshots` and :func:`merge_snapshots`
   operate on those dicts, so rate computation ("requests since the last
   ``repro top`` frame") and cross-process aggregation need no live registry.

Metric identity is ``(name, labels)``; all series of one name form a family
sharing a type and help string, exactly the Prometheus data model.
"""

from __future__ import annotations

import json
import math

#: metric family types understood by the exporters
METRIC_TYPES = ("counter", "gauge", "histogram")


def log_bounds(lo: float, hi: float, growth: float = 2.0) -> tuple:
    """Geometric histogram bucket bounds from ``lo`` up to at least ``hi``.

    ``log_bounds(1e-6, 1.0)`` gives power-of-two buckets spanning a microsecond
    to a second — 21 buckets instead of the thousands a linear grid would need
    for the same dynamic range.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if growth <= 1.0:
        raise ValueError(f"growth must exceed 1, got {growth}")
    bounds = []
    bound = lo
    while bound < hi * (1.0 - 1e-12):
        bounds.append(bound)
        bound *= growth
    bounds.append(bound)
    return tuple(bounds)


#: default request-latency buckets: 1 µs .. ~16 s, factor 2
LATENCY_BOUNDS_S = log_bounds(1e-6, 16.0)


class Counter:
    """Monotonically increasing count (requests served, events seen)."""

    __slots__ = ("name", "labels", "value")

    metric_type = "counter"

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount

    def set_total(self, value) -> None:
        """Overwrite the running total.

        For *collectors only*: a collector mirroring a plain int counter
        (e.g. ``ReuseCache.to_hits``) re-states the authoritative total each
        snapshot rather than tracking increments.
        """
        self.value = value

    def sample(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Point-in-time value (bytes stored, open connections, loop lag)."""

    __slots__ = ("name", "labels", "value", "fn")

    metric_type = "gauge"

    def __init__(self, name: str, labels: dict, fn=None):
        self.name = name
        self.labels = labels
        self.value = 0.0
        #: optional callable polled at sample time (callback gauge)
        self.fn = fn

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def sample(self) -> dict:
        value = self.fn() if self.fn is not None else self.value
        return {"value": value}


class Histogram:
    """Log-bucketed distribution (latencies, value sizes).

    Buckets are cumulative-at-export like Prometheus, but stored per-bucket;
    an implicit ``+Inf`` bucket catches overflows.  :meth:`quantile` gives a
    bucket-interpolated estimate good to one bucket's relative width (a
    factor-2 grid bounds the error at 2x, plenty for dashboards; exact
    quantiles stay with the reservoir in :mod:`repro.service.stats`).
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")

    metric_type = "histogram"

    def __init__(self, name: str, labels: dict, bounds=LATENCY_BOUNDS_S):
        bounds = tuple(bounds)
        if not bounds or any(nxt <= prev for prev, nxt in zip(bounds, bounds[1:])):
            raise ValueError(f"bounds must be strictly increasing, got {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        # linear scan: bounds are few (~20) and observations cluster low,
        # so this beats bisect's call overhead for latency-shaped data
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                hi = self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
                lo = self.bounds[i - 1] if i > 0 else 0.0
                frac = (rank - previous) / bucket_count
                return lo + (hi - lo) * min(1.0, max(0.0, frac))
        return self.bounds[-1]

    def sample(self) -> dict:
        cumulative = 0
        buckets = []
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            cumulative += bucket_count
            buckets.append([bound, cumulative])
        buckets.append(["+Inf", self.count])
        return {"count": self.count, "sum": self.sum, "buckets": buckets}


class _NullMetric:
    """Shared do-nothing metric handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass

    def set(self, value):
        pass

    def set_total(self, value):
        pass

    def observe(self, value):
        pass

    def quantile(self, q):
        return 0.0


NULL_METRIC = _NullMetric()


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named, labelled metrics with collectors and two exporters."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families = {}  # name -> (type, help)
        self._metrics = {}  # (name, label_key) -> metric
        self._collectors = []

    # -- creation / lookup ----------------------------------------------------

    def _get_or_create(self, cls, name, help_text, labels, **kwargs):
        if not self.enabled:
            return NULL_METRIC
        family = self._families.get(name)
        if family is None:
            self._families[name] = (cls.metric_type, help_text)
        elif family[0] != cls.metric_type:
            raise ValueError(
                f"metric {name!r} already registered as a {family[0]}, "
                f"cannot re-register as a {cls.metric_type}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, {str(k): str(v) for k, v in labels.items()}, **kwargs)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get_or_create(Gauge, name, help, labels)

    def gauge_callback(self, name: str, fn, help: str = "", **labels) -> Gauge:
        """A gauge whose value is read from ``fn()`` at sample time."""
        gauge = self._get_or_create(Gauge, name, help, labels)
        if gauge is not NULL_METRIC:
            gauge.fn = fn
        return gauge

    def histogram(
        self, name: str, help: str = "", bounds=LATENCY_BOUNDS_S, **labels
    ) -> Histogram:
        """Get or create the log-bucketed histogram ``name`` with ``labels``."""
        return self._get_or_create(Histogram, name, help, labels, bounds=bounds)

    # -- collectors ------------------------------------------------------------

    def register_collector(self, fn) -> None:
        """Add ``fn(registry)``, run before every snapshot/export.

        Collectors mirror externally-owned counters (simulator stats dicts,
        per-shard ``ShardStats``) into the registry without putting registry
        calls on the owners' hot paths.  Registering the same function twice
        is a no-op, so re-entrant wiring (e.g. server restart) stays safe.
        """
        if not self.enabled:
            return
        if fn not in self._collectors:
            self._collectors.append(fn)

    def collect(self) -> None:
        """Run every registered collector once."""
        for fn in self._collectors:
            fn(self)

    # -- snapshots --------------------------------------------------------------

    def snapshot(self, run_collectors: bool = True) -> dict:
        """JSON-safe view: ``{name: {type, help, series: [...]}}``."""
        if not self.enabled:
            return {}
        if run_collectors:
            self.collect()
        out = {}
        for (name, _), metric in sorted(self._metrics.items()):
            family_type, help_text = self._families[name]
            family = out.setdefault(
                name, {"type": family_type, "help": help_text, "series": []}
            )
            family["series"].append({"labels": metric.labels, **metric.sample()})
        return out

    # -- exporters ---------------------------------------------------------------

    def to_json(self, run_collectors: bool = True) -> str:
        """The snapshot as an indented JSON document."""
        return json.dumps(self.snapshot(run_collectors), indent=2)

    def to_prometheus(self, run_collectors: bool = True) -> str:
        """Prometheus text exposition format (``/metrics`` payload)."""
        return format_prometheus(self.snapshot(run_collectors))


class SLOTracker:
    """Error-budget burn rate for one service-level objective.

    ``objective`` is the target good/total ratio (e.g. ``0.999`` for
    "99.9% of reads are not stale").  Feed it cumulative ``(good, total)``
    counters with :meth:`observe`; the burn rate is the observed error
    rate divided by the budgeted error rate, so ``1.0`` means the budget
    is being consumed exactly on schedule, ``>1`` means faster (a burn
    rate of 10 exhausts a 30-day budget in 3 days), and ``0`` means no
    errors at all.  With a ``registry`` the *windowed* rate — computed
    from the delta between consecutive observations — is published as
    the gauge ``repro_slo_burn_rate{slo=<name>}``, which is what the
    ``repro top --cluster`` burn-gauge line and the ``slo_burn`` alert
    read.  A window with no new requests publishes ``0.0`` (healthy):
    quiet is not burning, and carrying a stale lifetime ratio forward
    would hold an alert firing forever after traffic stops.
    :meth:`observe` still *returns* the lifetime rate, which is the
    end-of-run summary number.
    """

    __slots__ = ("name", "objective", "good", "total", "_gauge",
                 "_prev_good", "_prev_total", "window_burn")

    def __init__(self, name: str, objective: float, registry=None, **labels):
        if not 0.0 < objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {objective} for {name!r}"
            )
        self.name = name
        self.objective = objective
        self.good = 0
        self.total = 0
        self._prev_good = 0
        self._prev_total = 0
        #: burn rate of the most recent observation window (0.0 when the
        #: window saw no traffic)
        self.window_burn = 0.0
        self._gauge = None
        if registry is not None:
            self._gauge = registry.gauge(
                "repro_slo_burn_rate",
                help="error-budget burn rate (1.0 = on budget)",
                slo=name, **labels,
            )

    def observe(self, good, total) -> float:
        """Record cumulative counters; returns the current burn rate.

        ``good``/``total`` are lifetime totals (the natural shape of
        CSTATUS/STATS counters), not deltas — each call replaces the
        previous observation.
        """
        if total < good:
            raise ValueError(f"good ({good}) cannot exceed total ({total})")
        self._prev_good, self._prev_total = self.good, self.total
        self.good = good
        self.total = total
        window_total = max(0, total - self._prev_total)
        window_good = max(0, good - self._prev_good)
        if window_total == 0:
            self.window_burn = 0.0  # zero-request window: healthy
        else:
            window_bad = window_total - min(window_good, window_total)
            self.window_burn = (
                (window_bad / window_total) / (1.0 - self.objective)
            )
        if self._gauge is not None:
            self._gauge.set(self.window_burn)
        return self.burn_rate

    @property
    def error_rate(self) -> float:
        """Observed bad/total ratio (0.0 before any traffic)."""
        if self.total == 0:
            return 0.0
        return (self.total - self.good) / self.total

    @property
    def burn_rate(self) -> float:
        """``error_rate / (1 - objective)`` — how fast the budget burns."""
        return self.error_rate / (1.0 - self.objective)


# -- snapshot algebra ---------------------------------------------------------


def _series_map(family: dict) -> dict:
    return {_label_key(s["labels"]): s for s in family["series"]}


def _sub_series(new: dict, old: dict | None) -> dict:
    out = {"labels": new["labels"]}
    if "buckets" in new:
        old_buckets = {}
        if old is not None:
            old_buckets = {str(le): c for le, c in old["buckets"]}
        out["count"] = new["count"] - (old["count"] if old else 0)
        out["sum"] = new["sum"] - (old["sum"] if old else 0.0)
        out["buckets"] = [
            [le, c - old_buckets.get(str(le), 0)] for le, c in new["buckets"]
        ]
    else:
        out["value"] = new["value"] - (old["value"] if old else 0)
    return out


def diff_snapshots(new: dict, old: dict) -> dict:
    """Counter/histogram deltas ``new - old``; gauges keep their new value.

    The basis of rate displays: diff two STATS/METRICS polls and divide by
    the interval.  Series present only in ``new`` diff against zero.
    """
    out = {}
    for name, family in new.items():
        old_series = _series_map(old[name]) if name in old else {}
        if family["type"] == "gauge":
            out[name] = {**family, "series": [dict(s) for s in family["series"]]}
            continue
        out[name] = {
            **family,
            "series": [
                _sub_series(s, old_series.get(_label_key(s["labels"])))
                for s in family["series"]
            ],
        }
    return out


def merge_registry_snapshots(snapshots) -> dict:
    """Sum counters/histograms (and gauges) across snapshots, matching series
    by ``(name, labels)`` — aggregation across shards or processes."""
    out = {}
    for snap in snapshots:
        for name, family in snap.items():
            target = out.setdefault(
                name, {"type": family["type"], "help": family["help"], "series": []}
            )
            merged = _series_map(target)
            for series in family["series"]:
                key = _label_key(series["labels"])
                if key not in merged:
                    target["series"].append(json.loads(json.dumps(series)))
                    continue
                acc = merged[key]
                if "buckets" in series:
                    acc["count"] += series["count"]
                    acc["sum"] += series["sum"]
                    old = {str(le): c for le, c in acc["buckets"]}
                    acc["buckets"] = [
                        [le, old.get(str(le), 0) + c] for le, c in series["buckets"]
                    ]
                else:
                    acc["value"] += series["value"]
    return out


# -- Prometheus text format ----------------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _label_str(labels: dict, extra: dict | None = None) -> str:
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(items.items())
    )
    return "{" + inner + "}"


def _fmt_value(value) -> str:
    if isinstance(value, float) and (math.isinf(value) or math.isnan(value)):
        return str(value)
    return repr(value) if isinstance(value, float) else str(value)


def format_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot in Prometheus text exposition format."""
    lines = []
    for name, family in snapshot.items():
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        for series in family["series"]:
            labels = series["labels"]
            if "buckets" in series:
                for le, count in series["buckets"]:
                    lines.append(
                        f"{name}_bucket{_label_str(labels, {'le': le})} {count}"
                    )
                lines.append(f"{name}_sum{_label_str(labels)} {_fmt_value(series['sum'])}")
                lines.append(f"{name}_count{_label_str(labels)} {series['count']}")
            else:
                lines.append(
                    f"{name}{_label_str(labels)} {_fmt_value(series['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
