"""Render the ``repro top`` dashboard from server STATS snapshots.

Pure formatting: :func:`render_dashboard` maps one (optionally two
consecutive) ``stats_snapshot()`` dicts to the text frame the ``repro top``
loop prints.  Keeping it snapshot-in/string-out makes the dashboard testable
without sockets and reusable against recorded STATS dumps.

With a previous snapshot and the poll interval, per-shard request rates are
derived from counter deltas; without one, the frame shows lifetime totals
only.  Layout: a cluster header, a per-shard table (hit rate, p50/p99,
occupancy, evictions, request rate) and a hit-rate bar chart per shard
(:func:`repro.metrics.textplot.bar_chart`).
"""

from __future__ import annotations

from ..metrics.textplot import bar_chart, sparkline

#: ANSI sequence that clears the screen and homes the cursor
CLEAR_SCREEN = "\x1b[2J\x1b[H"


def _rate(new: dict, old: dict | None, key: str, interval) -> float:
    if old is None or not interval:
        return 0.0
    return max(0.0, (new.get(key, 0) - old.get(key, 0)) / interval)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}GiB"


def _fmt_uptime(seconds: float) -> str:
    seconds = int(max(0, seconds))
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}"


def render_dashboard(
    snapshot: dict,
    prev: dict | None = None,
    interval: float | None = None,
    width: int = 36,
    spark: dict | None = None,
) -> str:
    """One dashboard frame for a ``stats_snapshot()`` dict.

    ``prev``/``interval`` (the snapshot one poll earlier and the seconds
    between polls) turn monotonic counters into rates; both default to off.
    ``spark`` maps series label -> recent values (the ``repro top`` loop
    feeds windowed hit rate and req/s from its local
    :class:`~repro.obs.timeseries.TimeSeriesStore`); each renders as a
    sparkline row, newest value printed alongside.
    """
    shards = snapshot.get("shards", [])
    total = snapshot.get("total", {})
    prev_shards = prev.get("shards", []) if prev else []
    prev_total = prev.get("total") if prev else None

    total_rps = _rate(total, prev_total, "gets", interval) + _rate(
        total, prev_total, "reuse_admissions", interval
    )
    lines = [
        "repro top — reuse-cache service"
        + (f"  (refresh {interval:g}s)" if interval else ""),
        (
            f"shards {snapshot.get('num_shards', len(shards))}"
            f" · admission {snapshot.get('admission', '?')}"
            f" · entries {snapshot.get('stored_entries', 0)}"
            f"/{snapshot.get('data_capacity', 0)}"
            f" · bytes {_fmt_bytes(total.get('bytes_stored', 0))}"
            f" · gets {total.get('gets', 0)}"
            + (f" · ~{total_rps:.0f} req/s" if prev_total else "")
        ),
        "",
        f"{'shard':>5} {'gets':>9} {'hit rate':>9} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'busy s':>7} {'occup':>6} {'tagged':>8} {'evict':>7} {'req/s':>8}",
    ]
    for i, shard in enumerate(shards):
        old = prev_shards[i] if i < len(prev_shards) else None
        rps = _rate(shard, old, "gets", interval)
        occupancy = shard.get("reservoir_occupancy", shard.get("latency_samples", 0))
        lines.append(
            f"{i:>5} {shard.get('gets', 0):>9} {shard.get('hit_rate', 0.0):>9.4f} "
            f"{shard.get('p50_s', 0.0) * 1e3:>8.3f} "
            f"{shard.get('p99_s', 0.0) * 1e3:>8.3f} "
            f"{shard.get('busy_s', 0.0):>7.2f} "
            f"{occupancy:>6} {shard.get('tag_only_sets', 0):>8} "
            f"{shard.get('data_evictions', 0) + shard.get('tag_evictions', 0):>7} "
            f"{rps:>8.0f}"
        )
    if total:
        lines.append(
            f"{'all':>5} {total.get('gets', 0):>9} {total.get('hit_rate', 0.0):>9.4f} "
            f"{total.get('p50_s', 0.0) * 1e3:>8.3f} "
            f"{total.get('p99_s', 0.0) * 1e3:>8.3f} "
            f"{total.get('busy_s', 0.0):>7.2f} "
            f"{total.get('latency_samples', 0):>6} "
            f"{total.get('tag_only_sets', 0):>8} "
            f"{total.get('data_evictions', 0) + total.get('tag_evictions', 0):>7} "
            f"{total_rps:>8.0f}"
        )
    if shards:
        lines.append("")
        lines.append(
            bar_chart(
                [
                    (f"shard {i}", shard.get("hit_rate", 0.0))
                    for i, shard in enumerate(shards)
                ],
                width=width,
                fmt="{:.4f}",
                title="hit rate by shard",
            )
        )
    server = snapshot.get("server")
    if server is not None:
        total_conns = (server.get("connections_v1", 0)
                       + server.get("connections_v2", 0))
        lines.append("")
        lines.append(
            f"uptime {_fmt_uptime(server.get('uptime_s', 0.0))} · "
            f"conns {total_conns} "
            f"(v1 {server.get('connections_v1', 0)} / "
            f"v2 {server.get('connections_v2', 0)}, "
            f"open {server.get('connections_open', 0)})"
            + (" · DRAINING" if server.get("draining") else "")
        )
    if spark:
        lines.append("")
        label_w = max(len(label) for label in spark)
        for label in sorted(spark):
            values = list(spark[label])
            if not values:
                continue
            lines.append(
                f"{label:>{label_w}} {sparkline(values, width=width):<{width}}"
                f" {values[-1]:.4g}"
            )
    process = snapshot.get("process")
    if process is not None:
        lines.append("")
        lines.append(
            f"process {process.get('pid', '?')} · "
            f"cpu {process.get('cpu_s', 0.0):.1f}s · "
            f"peak rss {_fmt_bytes(process.get('peak_rss_kb', 0) * 1024)}"
        )
    obs = snapshot.get("obs")
    # an empty-but-present obs block still renders (zeros), so a freshly
    # started server shows the panel instead of a blank frame
    if obs is not None:
        lag = _gauge_value(obs, "repro_service_eventloop_lag_seconds")
        conns = _gauge_value(obs, "repro_service_connections")
        inflight = _gauge_value(obs, "repro_service_inflight")
        count, mean_s, p99_s = _histogram_summary(
            obs, "repro_service_request_latency_seconds"
        )
        lines.append("")
        lines.append(
            f"connections {conns:g} · inflight {inflight:g} · "
            f"event-loop lag {lag * 1e3:.2f} ms"
        )
        lines.append(
            f"requests {count} · mean {mean_s * 1e3:.3f} ms · "
            f"~p99 {p99_s * 1e3:.3f} ms"
        )
    return "\n".join(lines)


def render_cluster_dashboard(
    summary: dict,
    stats: dict | None = None,
    interval: float | None = None,
    burn: dict | None = None,
) -> str:
    """One ``repro top --cluster`` frame from a ``cstatus_summary()`` dict.

    Pure like :func:`render_dashboard`: summary in, text out.  ``summary``
    node blocks may additionally carry a ``stale_polls`` count (added by
    the poll loop when it re-uses the last good CSTATUS of a node that
    stopped answering) — such nodes render with their stale data flagged
    rather than vanishing from the table.  ``stats`` is an optional
    ``ClusterClient.stats()`` aggregate for the hit-rate line; ``burn``
    maps SLO name -> current burn rate.
    """
    nodes = summary.get("nodes", {})
    totals = summary.get("totals", {})
    unreachable = summary.get("unreachable", [])
    draining = summary.get("draining", [])
    reachable = len(nodes) - len(unreachable)
    lines = [
        "repro top — cache cluster"
        + (f"  (refresh {interval:g}s)" if interval else ""),
        (
            f"nodes {len(nodes)} ({reachable} reachable"
            + (f", {len(draining)} draining" if draining else "")
            + ")"
            f" · stored {totals.get('stored', 0)}"
            f"/{totals.get('data_capacity', 0)}"
            f" · replicas held {totals.get('replicas_held', 0)}"
        ),
        (
            f"pending-INVAL debt {totals.get('pending_invals', 0)}"
            f" · stale pushes fenced {totals.get('stale_rejects', 0)}"
            f" · protocol races {totals.get('protocol_races', 0)}"
        ),
    ]
    if stats is not None:
        total = stats.get("total", {})
        lines.append(
            f"cluster hit rate {total.get('hit_rate', 0.0):.4f}"
            f" · hits {total.get('hits', 0)}"
            f" · misses {total.get('misses', 0)}"
        )
    if burn:
        lines.append(
            "slo burn  "
            + "  ·  ".join(
                f"{name} {rate:.2f}x" for name, rate in sorted(burn.items())
            )
        )
    lines.append("")
    lines.append(
        f"{'node':>8} {'state':>9} {'stored':>12} {'repl':>6} {'pendI':>6} "
        f"{'stale':>6} {'races':>6} {'loop ms':>8} {'wire v1/v2':>11} "
        f"{'up':>8}"
    )
    for name in sorted(nodes):
        block = nodes[name]
        if block.get("unreachable") and "stored" not in block:
            # down before we ever got a CSTATUS: nothing cached to show
            lines.append(f"{name:>8} {'DOWN':>9} {'-':>12} {'-':>6} {'-':>6} "
                         f"{'-':>6} {'-':>6} {'-':>8} {'-':>11} {'-':>8}")
            continue
        if block.get("unreachable"):
            state = f"DOWN*{block.get('stale_polls', 0)}"
        elif block.get("draining"):
            state = "draining"
        else:
            state = "ok"
        stored = f"{block.get('stored', 0)}/{block.get('data_capacity', 0)}"
        wire = (f"{block.get('connections_v1', 0)}"
                f"/{block.get('connections_v2', 0)}")
        lines.append(
            f"{name:>8} {state:>9} {stored:>12} "
            f"{block.get('replicas_held', 0):>6} "
            f"{block.get('pending_invals', 0):>6} "
            f"{block.get('stale_rejects', 0):>6} "
            f"{block.get('protocol_races', 0):>6} "
            f"{block.get('eventloop_lag_s', 0.0) * 1e3:>8.2f} "
            f"{wire:>11} "
            f"{_fmt_uptime(block.get('uptime_s', 0.0)):>8}"
        )
    if unreachable:
        lines.append("")
        lines.append(
            "* DOWN rows show the last CSTATUS each node answered; the "
            "suffix counts polls since"
        )
    return "\n".join(lines)


def _gauge_value(obs_snapshot: dict, name: str) -> float:
    family = obs_snapshot.get(name)
    if not family or not family.get("series"):
        return 0.0
    return float(family["series"][0].get("value", 0.0))


def _histogram_summary(obs_snapshot: dict, name: str) -> tuple:
    """(count, mean seconds, ~p99 seconds) summed over a family's series.

    Zeros when the family is absent or has no samples yet — the dashboard
    shows an idle server as zeros, never as a missing panel.
    """
    family = obs_snapshot.get(name)
    if not family or not family.get("series"):
        return 0, 0.0, 0.0
    count = 0
    total_s = 0.0
    merged: dict = {}
    for series in family["series"]:
        count += series.get("count", 0)
        total_s += series.get("sum", 0.0)
        cumulative_prev = 0
        for bound, cumulative in series.get("buckets", []):
            merged[bound] = merged.get(bound, 0) + (cumulative - cumulative_prev)
            cumulative_prev = cumulative
    if count == 0:
        return 0, 0.0, 0.0
    # bucket-interpolated p99 over the merged per-bucket counts
    rank = 0.99 * count
    cumulative = 0
    p99 = 0.0
    lo = 0.0
    for bound, bucket_count in merged.items():
        cumulative += bucket_count
        hi = lo if bound == "+Inf" else float(bound)
        if cumulative >= rank:
            p99 = hi
            break
        lo = hi
    else:
        p99 = lo
    return count, total_s / count, p99
