"""CLI commands for observability: ``repro top`` and ``repro obs ...``.

``top`` is the live dashboard: it polls a running ``repro serve`` instance's
STATS verb and redraws :func:`repro.obs.top.render_dashboard` every
``--interval`` seconds — per-shard hit rates, latency quantiles and request
rates derived from successive snapshots.

``obs export`` runs a short instrumented simulation (the fig6 reuse-cache
configuration by default) with tracing enabled and writes the event stream
as Chrome ``trace_event`` JSON (open in ``chrome://tracing`` or
https://ui.perfetto.dev) or JSONL; ``--metrics-out`` additionally dumps the
metrics registry in Prometheus text format.  ``obs validate`` checks that a
trace file will load in those viewers (the CI smoke job gates on it).

This module sits at the CLI layer (it imports the simulator and the service
client); the rest of :mod:`repro.obs` stays importable from layer 1.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from ..hierarchy.config import LLCSpec, SystemConfig
from ..hierarchy.system import System
from ..service.client import CacheClient
from ..workloads.mixes import EXAMPLE_MIX, build_workload
from . import Observability
from .logging import configure as configure_logging
from .tracing import validate_chrome_trace
from .top import CLEAR_SCREEN, render_dashboard

#: CLI names handled by this module (dispatched from repro.__main__)
OBS_COMMANDS = ("top", "obs")


def build_obs_parser() -> argparse.ArgumentParser:
    """Argument parser for the observability subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Observability tools of the reuse-cache reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    top = sub.add_parser("top", help="live dashboard over a running server")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=9876)
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between STATS polls")
    top.add_argument("--iterations", type=int, default=0,
                     help="frames to draw (0 = until interrupted)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of clearing the screen")

    obs = sub.add_parser("obs", help="trace export / validation")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    export = obs_sub.add_parser(
        "export", help="run a traced simulation and write the event stream"
    )
    export.add_argument("--format", choices=("chrome-trace", "jsonl"),
                        default="chrome-trace")
    export.add_argument("--out", metavar="FILE", default="trace.json",
                        help="trace output path")
    export.add_argument("--refs", type=int, default=5000,
                        help="memory references per core")
    export.add_argument("--scale", type=int, default=32,
                        help="capacity divisor (matches the experiments)")
    export.add_argument("--seed", type=int, default=2013)
    export.add_argument("--tag-mbeq", type=float, default=8.0,
                        help="reuse-cache tag array size (MBeq)")
    export.add_argument("--data-mb", type=float, default=4.0,
                        help="reuse-cache data array size (MB)")
    export.add_argument("--sample-every", type=int, default=1,
                        help="record every Nth event")
    export.add_argument("--trace-capacity", type=int, default=1 << 18,
                        help="ring-buffer capacity (older events drop)")
    export.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="also dump the metrics registry (Prometheus text)")

    validate = obs_sub.add_parser(
        "validate", help="check a Chrome-trace file for viewer compatibility"
    )
    validate.add_argument("file", help="trace JSON file to validate")
    return parser


# -- repro top ---------------------------------------------------------------


async def _top_loop(args) -> int:
    client = CacheClient(args.host, args.port)
    prev = None
    frames = 0
    try:
        while True:
            snapshot = await client.stats()
            frame = render_dashboard(
                snapshot, prev, interval=args.interval if prev else None
            )
            if not args.no_clear:
                sys.stdout.write(CLEAR_SCREEN)
            print(frame, flush=True)
            prev = snapshot
            frames += 1
            if args.iterations and frames >= args.iterations:
                return 0
            await asyncio.sleep(args.interval)
    finally:
        await client.close()


def cmd_top(args) -> int:
    """Poll STATS and redraw the dashboard until interrupted."""
    try:
        return asyncio.run(_top_loop(args))
    except KeyboardInterrupt:
        return 0
    except ConnectionError as exc:
        print(f"repro top: cannot reach {args.host}:{args.port} ({exc})",
              file=sys.stderr)
        return 1


# -- repro obs export / validate ---------------------------------------------


def cmd_export(args) -> int:
    """Run one traced simulation and write its event stream."""
    obs = Observability.enabled(
        tracing=True,
        trace_capacity=args.trace_capacity,
        sample_every=args.sample_every,
        time_unit="cycles",
    )
    workload = build_workload(
        EXAMPLE_MIX, n_refs=args.refs, seed=args.seed, scale=args.scale
    )
    spec = LLCSpec.reuse(args.tag_mbeq, args.data_mb)
    config = SystemConfig(
        llc=spec, num_cores=workload.num_cores, scale=args.scale,
        seed=args.seed,
    )
    result = System(config, workload, obs=obs).run()
    tracer = obs.tracer
    tracer.write(args.out, fmt=args.format)
    print(f"{spec.label} on {workload.name}: IPC {result.performance:.3f}, "
          f"{tracer.recorded} event(s) recorded "
          f"({tracer.dropped} dropped by the ring)")
    print(f"wrote {args.out} [{args.format}]"
          + (" — open in chrome://tracing or ui.perfetto.dev"
             if args.format == "chrome-trace" else ""))
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(obs.registry.to_prometheus())
        print(f"wrote {args.metrics_out} [prometheus]")
    return 0


def cmd_validate(args) -> int:
    """Validate a Chrome-trace file; exit 1 when a viewer would reject it."""
    try:
        with open(args.file, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro obs validate: {args.file}: {exc}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(doc)
    if problems:
        for problem in problems:
            print(f"{args.file}: {problem}", file=sys.stderr)
        return 1
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    print(f"{args.file}: OK ({len(events)} event(s))")
    return 0


def main(argv) -> int:
    """Entry point for the observability subcommands."""
    configure_logging()
    args = build_obs_parser().parse_args(argv)
    if args.command == "top":
        return cmd_top(args)
    if args.obs_command == "export":
        return cmd_export(args)
    return cmd_validate(args)
