"""CLI commands for observability: ``repro top``, ``repro obs ...``,
``repro explain``.

``top`` is the live dashboard: it polls a running ``repro serve`` instance's
STATS verb and redraws :func:`repro.obs.top.render_dashboard` every
``--interval`` seconds — per-shard hit rates, latency quantiles and request
rates derived from successive snapshots.  With ``--cluster`` (plus
repeatable ``--node NAME=HOST:PORT``) it fans CSTATUS/STATS in across a
whole cluster instead and renders
:func:`repro.obs.top.render_cluster_dashboard`: aggregate hit rate,
pending-INVAL debt, the stale-push fence counter, per-node event-loop lag
and SLO burn-rate gauges.  A node that stops answering mid-drain keeps its
last good row on screen (flagged ``DOWN*n``) rather than crashing the
frame loop.

``obs export`` runs a short instrumented simulation (the fig6 reuse-cache
configuration by default) with tracing enabled and writes the event stream
as Chrome ``trace_event`` JSON (open in ``chrome://tracing`` or
https://ui.perfetto.dev) or JSONL; ``--metrics-out`` additionally dumps the
metrics registry in Prometheus text format.  ``obs validate`` checks that a
trace file will load in those viewers (the CI smoke job gates on it);
``--causal`` additionally rejects traces whose span graph has orphan
parents or cycles.  ``obs collect`` merges per-node trace drains (one
JSONL/Chrome file per node, node name taken from the file stem) into one
causal cluster trace via :func:`repro.obs.dist.merge_node_traces`.

``explain`` is the decision audit: given a collected trace and ``--key``,
it prints the key's cross-node lifecycle — tag-only allocation, reuse
detection, admission verdicts, eviction, replication and invalidation —
glossed against the paper's I/TO/S state machine.

``obs flight`` pretty-prints a flight-recorder bundle (written by a
serving node on SIGUSR2 or a fatal error — see
:mod:`repro.obs.flight`): firing alerts, the alert timeline, sparklined
metric tails, the trace-ring summary and per-shard stats.

``obs alert-replay`` is the deterministic incident rehearsal: it drives
a seeded hot-set → scan-flood → hot-set traffic pattern through an
in-process :class:`~repro.service.sharding.ShardedStore` under a
*logical* clock, sampling the registry and evaluating the built-in alert
rules each tick.  The scan flood collapses the windowed hit rate, the
``hit_rate_drop`` alert fires, the hot set returns, the alert resolves —
and because no wall clock ever enters a decision path, two runs with the
same seed emit byte-identical alert timelines (the CI gate ``cmp``-s
exactly that).

This module sits at the CLI layer (it imports the simulator, the service
client and the cluster client); the rest of :mod:`repro.obs` stays
importable from layer 1.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from ..cluster.client import ClusterClient
from ..hierarchy.config import LLCSpec, SystemConfig
from ..hierarchy.system import System
from ..service.client import CacheClient
from ..workloads.mixes import EXAMPLE_MIX, build_workload
from . import Observability
from .alerts import AlertEngine, builtin_rules
from .dist import explain_key, format_explain, merge_node_traces
from .flight import load_flight, render_flight
from .logging import configure as configure_logging
from .registry import MetricsRegistry, SLOTracker
from .timeseries import TimeSeriesStore
from .tracing import validate_chrome_trace
from .top import CLEAR_SCREEN, render_cluster_dashboard, render_dashboard

#: CLI names handled by this module (dispatched from repro.__main__)
OBS_COMMANDS = ("top", "obs", "explain")


def build_obs_parser() -> argparse.ArgumentParser:
    """Argument parser for the observability subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Observability tools of the reuse-cache reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    top = sub.add_parser("top", help="live dashboard over a running server "
                                     "or a whole cluster")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=9876)
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between STATS polls")
    top.add_argument("--iterations", type=int, default=0,
                     help="frames to draw (0 = until interrupted)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of clearing the screen")
    top.add_argument("--cluster", action="store_true",
                     help="cluster dashboard: fan CSTATUS/STATS in over "
                          "every --node")
    top.add_argument("--node", action="append", default=None,
                     metavar="NAME=HOST:PORT",
                     help="cluster node address (repeatable, with --cluster)")
    top.add_argument("--seed", type=int, default=2013,
                     help="ring seed (must match the cluster's)")

    obs = sub.add_parser("obs", help="trace export / validation / collection")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    export = obs_sub.add_parser(
        "export", help="run a traced simulation and write the event stream"
    )
    export.add_argument("--format", choices=("chrome-trace", "jsonl"),
                        default="chrome-trace")
    export.add_argument("--out", metavar="FILE", default="trace.json",
                        help="trace output path")
    export.add_argument("--refs", type=int, default=5000,
                        help="memory references per core")
    export.add_argument("--scale", type=int, default=32,
                        help="capacity divisor (matches the experiments)")
    export.add_argument("--seed", type=int, default=2013)
    export.add_argument("--tag-mbeq", type=float, default=8.0,
                        help="reuse-cache tag array size (MBeq)")
    export.add_argument("--data-mb", type=float, default=4.0,
                        help="reuse-cache data array size (MB)")
    export.add_argument("--sample-every", type=int, default=1,
                        help="record every Nth event")
    export.add_argument("--trace-capacity", type=int, default=1 << 18,
                        help="ring-buffer capacity (older events drop)")
    export.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="also dump the metrics registry (Prometheus text)")

    validate = obs_sub.add_parser(
        "validate", help="check a Chrome-trace file for viewer compatibility"
    )
    validate.add_argument("file", help="trace JSON file to validate")
    validate.add_argument("--causal", action="store_true",
                          help="also reject orphan parents and span cycles")

    collect = obs_sub.add_parser(
        "collect",
        help="merge per-node trace drains into one causal cluster trace",
    )
    collect.add_argument("files", nargs="+", metavar="NODE_TRACE",
                         help="one JSONL or Chrome-trace file per node; "
                              "the node name is the file stem")
    collect.add_argument("--out", metavar="FILE", default="cluster-trace.json",
                         help="merged Chrome trace output path")

    flight = obs_sub.add_parser(
        "flight", help="pretty-print a flight-recorder bundle"
    )
    flight.add_argument("file", help="flight bundle JSON (written on "
                                     "SIGUSR2 or a fatal server error)")
    flight.add_argument("--width", type=int, default=72,
                        help="render width in columns")

    replay = obs_sub.add_parser(
        "alert-replay",
        help="deterministic hit-rate-collapse rehearsal: seeded scan "
             "flood under a logical clock; the hit_rate_drop alert must "
             "fire and resolve identically every run",
    )
    replay.add_argument("--seed", type=int, default=2013)
    replay.add_argument("--ticks", type=int, default=90,
                        help="logical seconds to simulate")
    replay.add_argument("--ops-per-tick", type=int, default=50)
    replay.add_argument("--json", metavar="FILE", default=None,
                        help="write the full timeline/state report here")

    explain = sub.add_parser(
        "explain", help="per-key lifecycle audit from a collected trace"
    )
    explain.add_argument("file", help="trace JSON/JSONL file (e.g. the "
                                      "output of 'repro cluster trace')")
    explain.add_argument("--key", required=True,
                         help="cache key whose lifecycle to report")
    return parser


# -- repro top ---------------------------------------------------------------


#: sparkline history shown by ``repro top`` (seconds of trailing window)
_SPARK_WINDOW_S = 60.0


def _spark_feed(history: TimeSeriesStore, snapshot, prev, interval, t):
    """Record windowed hit rate + ops/s into the local history store.

    The loop keeps its own :class:`TimeSeriesStore` under a *logical*
    clock (frame number × interval), derived entirely from STATS counter
    deltas — so the sparklines show recent behaviour, not lifetime
    averages, and the renderer stays pure.
    """
    if prev is None or not interval:
        return
    total = snapshot.get("total", {})
    prev_total = prev.get("total", {})
    d_hits = total.get("hits", 0) - prev_total.get("hits", 0)
    d_misses = total.get("misses", 0) - prev_total.get("misses", 0)
    if d_hits + d_misses > 0:
        history.record("hit_rate", {}, d_hits / (d_hits + d_misses), now=t)
    d_gets = total.get("gets", 0) - prev_total.get("gets", 0)
    d_sets = (total.get("reuse_admissions", 0) + total.get("tag_only_sets", 0)
              - prev_total.get("reuse_admissions", 0)
              - prev_total.get("tag_only_sets", 0))
    history.record("ops_per_s", {},
                   max(0.0, (d_gets + d_sets) / interval), now=t)


def _spark_columns(history: TimeSeriesStore, t) -> dict:
    spark = {}
    for label in ("hit_rate", "ops_per_s"):
        points = history.window(label, {}, duration=_SPARK_WINDOW_S, now=t)
        if points:
            spark[label] = [v for _, v in points]
    return spark


async def _top_loop(args) -> int:
    client = CacheClient(args.host, args.port)
    prev = None
    frames = 0
    history = TimeSeriesStore(clock=lambda: 0.0)
    try:
        while True:
            snapshot = await client.stats()
            t = frames * args.interval
            _spark_feed(history, snapshot, prev, args.interval, t)
            frame = render_dashboard(
                snapshot, prev, interval=args.interval if prev else None,
                spark=_spark_columns(history, t),
            )
            if not args.no_clear:
                sys.stdout.write(CLEAR_SCREEN)
            print(frame, flush=True)
            prev = snapshot
            frames += 1
            if args.iterations and frames >= args.iterations:
                return 0
            await asyncio.sleep(args.interval)
    finally:
        await client.close()


def _parse_node_specs(specs) -> dict:
    nodes = {}
    for spec in specs:
        try:
            name, addr = spec.split("=", 1)
            host, port = addr.rsplit(":", 1)
            nodes[name] = (host, int(port))
        except ValueError:
            raise SystemExit(
                f"bad --node {spec!r}; expected NAME=HOST:PORT"
            ) from None
    return nodes


async def _top_cluster_loop(args) -> int:
    """Poll CSTATUS/STATS across the cluster and redraw the dashboard.

    Degradation contract (a dashboard must outlive the incidents it is
    watching): ``cstatus_summary`` already reports down nodes instead of
    raising; on top of that this loop keeps each node's *last good*
    CSTATUS block on screen, flagged with how many polls ago it was
    taken, and treats a failed STATS fan-in as "no hit-rate line this
    frame" rather than a crash.
    """
    nodes = _parse_node_specs(args.node)
    registry = MetricsRegistry(enabled=True)
    slos = {
        # fraction of node-polls answered: burns when nodes are down
        "availability": SLOTracker("availability", 0.99, registry=registry),
        # fraction of lookups NOT saved from staleness by the version
        # fence: burns when INVAL debt turns into fenced stale pushes
        "freshness": SLOTracker("freshness", 0.999, registry=registry),
    }
    polls_total = polls_ok = 0
    last_good = {}  # name -> last reachable CSTATUS block
    stale_polls = {}  # name -> consecutive polls served from last_good
    frames = 0
    async with ClusterClient(nodes, seed=args.seed) as client:
        while True:
            summary = await client.cstatus_summary()
            for name, block in summary["nodes"].items():
                if block.get("unreachable"):
                    stale_polls[name] = stale_polls.get(name, 0) + 1
                    if name in last_good:
                        summary["nodes"][name] = {
                            **last_good[name],
                            "unreachable": True,
                            "stale_polls": stale_polls[name],
                        }
                else:
                    last_good[name] = block
                    stale_polls[name] = 0
            polls_total += len(summary["nodes"])
            polls_ok += len(summary["nodes"]) - len(summary["unreachable"])
            try:
                stats = await client.stats()
            except (ConnectionError, asyncio.TimeoutError, OSError):
                stats = None  # mid-drain node: skip the hit-rate line
            # display the *windowed* burn (this poll's delta): a healthy
            # window shows 0.0x even if the lifetime ratio is scarred
            slos["availability"].observe(polls_ok, polls_total)
            burn = {"availability": slos["availability"].window_burn}
            if stats is not None:
                total = stats.get("total", {})
                lookups = total.get("hits", 0) + total.get("misses", 0)
                fenced = min(
                    summary["totals"].get("stale_rejects", 0), lookups
                )
                slos["freshness"].observe(lookups - fenced, lookups)
                burn["freshness"] = slos["freshness"].window_burn
            frame = render_cluster_dashboard(
                summary, stats=stats,
                interval=args.interval if frames else None, burn=burn,
            )
            if not args.no_clear:
                sys.stdout.write(CLEAR_SCREEN)
            print(frame, flush=True)
            frames += 1
            if args.iterations and frames >= args.iterations:
                return 0
            await asyncio.sleep(args.interval)


def cmd_top(args) -> int:
    """Poll STATS (or cluster CSTATUS) and redraw until interrupted."""
    if args.cluster:
        if not args.node:
            print("repro top: --cluster needs at least one "
                  "--node NAME=HOST:PORT", file=sys.stderr)
            return 2
        try:
            return asyncio.run(_top_cluster_loop(args))
        except KeyboardInterrupt:
            return 0
    try:
        return asyncio.run(_top_loop(args))
    except KeyboardInterrupt:
        return 0
    except ConnectionError as exc:
        print(f"repro top: cannot reach {args.host}:{args.port} ({exc})",
              file=sys.stderr)
        return 1


# -- repro obs export / validate / collect ------------------------------------


def cmd_export(args) -> int:
    """Run one traced simulation and write its event stream."""
    obs = Observability.enabled(
        tracing=True,
        trace_capacity=args.trace_capacity,
        sample_every=args.sample_every,
        time_unit="cycles",
    )
    workload = build_workload(
        EXAMPLE_MIX, n_refs=args.refs, seed=args.seed, scale=args.scale
    )
    spec = LLCSpec.reuse(args.tag_mbeq, args.data_mb)
    config = SystemConfig(
        llc=spec, num_cores=workload.num_cores, scale=args.scale,
        seed=args.seed,
    )
    result = System(config, workload, obs=obs).run()
    tracer = obs.tracer
    tracer.write(args.out, fmt=args.format)
    print(f"{spec.label} on {workload.name}: IPC {result.performance:.3f}, "
          f"{tracer.recorded} event(s) recorded "
          f"({tracer.dropped} dropped by the ring)")
    print(f"wrote {args.out} [{args.format}]"
          + (" — open in chrome://tracing or ui.perfetto.dev"
             if args.format == "chrome-trace" else ""))
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(obs.registry.to_prometheus())
        print(f"wrote {args.metrics_out} [prometheus]")
    return 0


def cmd_validate(args) -> int:
    """Validate a Chrome-trace file; exit 1 when a viewer would reject it."""
    try:
        with open(args.file, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro obs validate: {args.file}: {exc}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(doc, causal=args.causal)
    if problems:
        for problem in problems:
            print(f"{args.file}: {problem}", file=sys.stderr)
        return 1
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    print(f"{args.file}: OK ({len(events)} event(s)"
          + (", causally complete" if args.causal else "") + ")")
    return 0


def _load_trace_events(path: Path) -> list:
    """Event dicts from either a JSONL drain or a Chrome-trace document."""
    text = path.read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("["):
        return json.loads(text)
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            pass  # not one document: fall through to JSONL, line per event
        else:
            events = doc.get("traceEvents")
            if isinstance(events, list):
                return events
            if "ph" in doc:  # a one-line JSONL drain: one bare event
                return [doc]
            raise ValueError("object has no 'traceEvents' list")
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def cmd_collect(args) -> int:
    """Merge per-node trace files into one causally-validated trace."""
    node_events = {}
    for spec in args.files:
        path = Path(spec)
        name = path.stem
        if name in node_events:
            print(f"repro obs collect: duplicate node name {name!r} "
                  f"(from {spec})", file=sys.stderr)
            return 1
        try:
            node_events[name] = _load_trace_events(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro obs collect: {spec}: {exc}", file=sys.stderr)
            return 1
    merged = merge_node_traces(node_events, time_unit="s")
    problems = validate_chrome_trace(merged, causal=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=1)
    other = merged["otherData"]
    print(f"collected {len(merged['traceEvents'])} event(s) from "
          f"{len(other['nodes'])} node(s), "
          f"{other['cross_node_edges']} cross-node edge(s)")
    print(f"wrote {args.out}")
    if problems:
        for problem in problems[:10]:
            print(f"{args.out}: {problem}", file=sys.stderr)
        return 1
    return 0


# -- repro obs flight / alert-replay ------------------------------------------


def cmd_flight(args) -> int:
    """Render one flight-recorder bundle for human eyes."""
    try:
        bundle = load_flight(args.file)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro obs flight: {args.file}: {exc}", file=sys.stderr)
        return 1
    sys.stdout.write(render_flight(bundle, width=args.width))
    return 0


def cmd_alert_replay(args) -> int:
    """Seeded hit-rate-collapse rehearsal under a logical clock.

    Three acts over ``--ticks`` logical seconds: a hot set the reuse
    cache learns, a scan flood of never-repeating keys (the adversarial
    pattern the paper's selective allocation defends the data array
    against — but which still collapses the *observed* hit rate), then
    the hot set again.  The built-in ``hit_rate_drop`` rule must fire
    during the flood and resolve after it; exit is non-zero otherwise.
    All randomness is ``random.Random(--seed)``, all time is the tick
    counter, so the emitted timeline is byte-identical across runs.
    """
    import random

    from ..service.sharding import ShardedStore

    obs = Observability.enabled()
    store = ShardedStore(
        num_shards=2, data_capacity=128, admission="reuse",
        seed=args.seed, obs=obs,
    )
    ts = TimeSeriesStore(registry=obs.registry, clock=lambda: 0.0)
    engine = AlertEngine(ts, builtin_rules(window_s=30.0))
    rng = random.Random(args.seed)
    hot_keys = [f"hot:{i}" for i in range(64)]
    scan_next = 0
    act_len = max(1, args.ticks // 3)
    for tick in range(args.ticks):
        scanning = act_len <= tick < 2 * act_len
        for _ in range(args.ops_per_tick):
            if scanning:
                key = f"scan:{scan_next}"
                scan_next += 1
            else:
                key = rng.choice(hot_keys)
            if store.get(key) is None:
                store.set(key, b"v" * 32)
        t = float(tick + 1)
        ts.sample(now=t)
        engine.evaluate(now=t)
    fired = any(e["alert"] == "hit_rate_drop" and e["to"] == "firing"
                for e in engine.timeline)
    resolved = any(e["alert"] == "hit_rate_drop" and e["to"] == "resolved"
                   for e in engine.timeline)
    report = {
        "seed": args.seed,
        "ticks": args.ticks,
        "ops_per_tick": args.ops_per_tick,
        "fired": fired,
        "resolved": resolved,
        "timeline": engine.timeline,
        "states": engine.states(),
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    for event in engine.timeline:
        print(f"t={event['t']:<6g} {event['alert']:<22} "
              f"{event['from']} -> {event['to']} "
              f"(value={event['value']})")
    verdict = ("fired and resolved" if fired and resolved
               else "fired only" if fired else "never fired")
    alerts_seen = len({e["alert"] for e in engine.timeline})
    print(f"hit_rate_drop: {verdict} "
          f"({len(engine.timeline)} transition(s), {alerts_seen} alert(s))")
    return 0 if fired and resolved else 1


# -- repro explain ------------------------------------------------------------


def cmd_explain(args) -> int:
    """Print one key's cross-node lifecycle from a collected trace."""
    try:
        doc = _load_trace_events(Path(args.file))
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro explain: {args.file}: {exc}", file=sys.stderr)
        return 1
    # _load_trace_events flattens to an event list, which loses the
    # process_name metadata lookup only if absent; merged traces keep
    # their metadata events in the list, so node names still resolve
    records = explain_key(doc, args.key)
    print(format_explain(args.key, records))
    return 0 if records else 1


def main(argv) -> int:
    """Entry point for the observability subcommands."""
    configure_logging()
    args = build_obs_parser().parse_args(argv)
    if args.command == "top":
        return cmd_top(args)
    if args.command == "explain":
        return cmd_explain(args)
    if args.obs_command == "export":
        return cmd_export(args)
    if args.obs_command == "collect":
        return cmd_collect(args)
    if args.obs_command == "flight":
        return cmd_flight(args)
    if args.obs_command == "alert-replay":
        return cmd_alert_replay(args)
    return cmd_validate(args)
