"""Structured event tracing: a sampling ring buffer with Chrome-trace export.

The simulator's interesting moments are *events*, not aggregates: a tag-only
allocation here, a ``DataRepl`` demotion there, a request span on shard 3.
:class:`Tracer` records them as lightweight typed events into a bounded ring
buffer (old events are overwritten, tracing never grows without bound) with
optional 1-in-N sampling, and exports two formats:

* **JSONL** — one event object per line, grep/pandas friendly;
* **Chrome ``trace_event``** — a JSON document that Chrome's
  ``chrome://tracing`` and https://ui.perfetto.dev open directly, with the
  bank/shard as the *process* lane and the core/connection as the *thread*
  lane, so a simulation run becomes a scrollable timeline.

Hot-path contract: emitting costs one attribute load and a branch when the
tracer is disabled.  Instrumented code holds a tracer unconditionally
(:data:`NULL_TRACER` by default) and guards the argument construction::

    tr = self.tracer
    if tr.enabled:
        tr.emit(TAG_ONLY_ALLOC, ts=now, pid=self.trace_pid, tid=core,
                args={"addr": addr})

Timestamps are caller-supplied: simulator events pass cycle counts
(``time_unit="cycles"``, exported as microseconds 1:1 so Perfetto renders
cycles as µs), service events pass ``time.perf_counter()`` seconds
(``time_unit="s"``).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from time import perf_counter

# -- event taxonomy (docs/observability.md documents each) --------------------

#: hit on a tag-only entry: the paper's reuse detection (cat ``sim``)
REUSE_DETECTED = "ReuseDetected"
#: tag miss allocated a tag without data: selective allocation at work
TAG_ONLY_ALLOC = "TagOnlyAlloc"
#: data-array eviction demoting its tag to TO (``S/M --DataRepl--> TO``)
DATA_REPL = "DataRepl"
#: tag-array eviction (``* --TagRepl--> I``), frees any data entry too
TAG_REPL = "TagRepl"
#: non-selective fill: tag+data allocated together (conventional/NCID normal)
FILL = "Fill"
#: conventional-cache eviction (tags and data are coupled)
EVICTION = "Eviction"
#: one (state, event) -> state' step of the TO-MSI table (cat ``coherence``)
COHERENCE_TRANSITION = "CoherenceTransition"

#: category used by the server's request spans
CAT_REQUEST = "request"
CAT_SIM = "sim"
CAT_COHERENCE = "coherence"


class TraceEvent:
    """One recorded event (phase ``i`` instant, or ``X`` span when ``dur``)."""

    __slots__ = ("name", "cat", "ts", "pid", "tid", "dur", "args")

    def __init__(self, name, cat, ts, pid, tid, dur, args):
        self.name = name
        self.cat = cat
        self.ts = ts
        self.pid = pid
        self.tid = tid
        self.dur = dur
        self.args = args

    def to_dict(self, ts_scale: float = 1.0) -> dict:
        """Chrome ``trace_event`` dict (``ts``/``dur`` in microseconds)."""
        event = {
            "name": self.name,
            "cat": self.cat,
            "ph": "i" if self.dur is None else "X",
            "ts": self.ts * ts_scale,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.dur is None:
            event["s"] = "t"  # instant scoped to its thread lane
        else:
            event["dur"] = self.dur * ts_scale
        if self.args:
            event["args"] = self.args
        return event


class Tracer:
    """Bounded, optionally sampling event recorder."""

    def __init__(
        self,
        capacity: int = 65536,
        sample_every: int = 1,
        time_unit: str = "cycles",
        enabled: bool = True,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        if time_unit not in ("cycles", "s"):
            raise ValueError(f"time_unit must be 'cycles' or 's', got {time_unit!r}")
        self.capacity = capacity
        self.sample_every = sample_every
        self.time_unit = time_unit
        self.enabled = enabled
        self._buf = [None] * capacity
        self._pos = 0
        self._recorded = 0  # events written into the ring, ever
        self._offered = 0  # events offered (pre-sampling)

    # -- recording -------------------------------------------------------------

    def emit(
        self, name, cat=CAT_SIM, ts=0.0, pid=0, tid=0, dur=None, args=None
    ) -> None:
        """Record one event (dropped when disabled or sampled out)."""
        if not self.enabled:
            return
        self._offered += 1
        if self.sample_every > 1 and self._offered % self.sample_every:
            return
        self._buf[self._pos] = TraceEvent(name, cat, ts, pid, tid, dur, args)
        self._pos = (self._pos + 1) % self.capacity
        self._recorded += 1

    @contextmanager
    def span(self, name, cat=CAT_REQUEST, pid=0, tid=0, args=None):
        """Wrap a block as a complete ('X') event timed with perf_counter.

        Only meaningful on ``time_unit="s"`` tracers (the service side);
        simulator spans should pass explicit cycle timestamps to :meth:`emit`.
        """
        start = perf_counter()
        try:
            yield
        finally:
            self.emit(
                name, cat=cat, ts=start, pid=pid, tid=tid,
                dur=perf_counter() - start, args=args,
            )

    # -- introspection -----------------------------------------------------------

    @property
    def recorded(self) -> int:
        """Events written into the ring over the tracer's lifetime."""
        return self._recorded

    @property
    def dropped(self) -> int:
        """Recorded events overwritten because the ring wrapped."""
        return max(0, self._recorded - self.capacity)

    def events(self) -> list:
        """Retained events, oldest first."""
        if self._recorded < self.capacity:
            return [e for e in self._buf[: self._pos]]
        return self._buf[self._pos:] + self._buf[: self._pos]

    def clear(self) -> None:
        """Drop every retained event and reset the drop accounting."""
        self._buf = [None] * self.capacity
        self._pos = 0
        self._recorded = 0
        self._offered = 0

    # -- export ------------------------------------------------------------------

    @property
    def _ts_scale(self) -> float:
        # cycles export 1:1 as µs; wall-clock seconds scale to µs
        return 1e6 if self.time_unit == "s" else 1.0

    def to_chrome(self) -> dict:
        """The retained events as a Chrome ``trace_event`` JSON object."""
        scale = self._ts_scale
        return {
            "traceEvents": [e.to_dict(scale) for e in self.events()],
            "displayTimeUnit": "ms",
            "otherData": {
                "time_unit": self.time_unit,
                "recorded": self._recorded,
                "dropped": self.dropped,
                "sample_every": self.sample_every,
            },
        }

    def to_jsonl(self) -> str:
        """The retained events as newline-delimited JSON."""
        scale = self._ts_scale
        return "\n".join(
            json.dumps(e.to_dict(scale)) for e in self.events()
        ) + ("\n" if self._recorded else "")

    def write(self, path, fmt: str = "chrome-trace") -> None:
        """Write the retained events to ``path`` as chrome-trace or jsonl."""
        if fmt == "chrome-trace":
            payload = json.dumps(self.to_chrome(), indent=1)
        elif fmt == "jsonl":
            payload = self.to_jsonl()
        else:
            raise ValueError(f"unknown trace format {fmt!r}")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload)

    def drain(self) -> str:
        """Export the retained events as JSONL and clear the ring.

        Backs the wire ``TRACE`` verb: each drain hands the collector a
        disjoint batch, so repeated collection never double-counts.
        """
        payload = self.to_jsonl()
        self.clear()
        return payload


class _NullTracer:
    """Disabled tracer: the default attached to instrumented objects."""

    __slots__ = ()

    enabled = False
    recorded = 0
    dropped = 0

    def emit(self, name, cat=CAT_SIM, ts=0.0, pid=0, tid=0, dur=None, args=None):
        pass

    @contextmanager
    def span(self, name, cat=CAT_REQUEST, pid=0, tid=0, args=None):
        yield

    def events(self):
        return []

    def clear(self):
        pass

    def drain(self):
        return ""


NULL_TRACER = _NullTracer()


# -- trace_event schema validation ---------------------------------------------

#: phases of the trace_event format we may emit or accept
_VALID_PHASES = frozenset("BEXiIsnteSTpFbfMNODPvRc(){}")


def validate_chrome_trace(doc, causal: bool = False) -> list:
    """Validate a parsed Chrome-trace document; returns a list of problems.

    Checks the shape CI gates on: a ``traceEvents`` list (or a bare event
    list, which the format also allows) whose entries carry ``ph``/``ts``/
    ``pid`` keys with sane types.  An empty problem list means Perfetto and
    ``chrome://tracing`` will load the file.

    With ``causal=True`` the span graph declared in event ``args``
    (``span``/``parent``, see :mod:`repro.obs.dist`) is checked too: every
    referenced parent must exist somewhere in the document (no orphans —
    a dangling INVAL span means its originating write was lost), and the
    parent links must not cycle.
    """
    problems = []
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' list"]
    elif isinstance(doc, list):
        events = doc
    else:
        return [f"trace must be a JSON object or array, got {type(doc).__name__}"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("ph", "ts", "pid"):
            if key not in event:
                problems.append(f"event {i}: missing required key {key!r}")
        phase = event.get("ph")
        if phase is not None and (
            not isinstance(phase, str) or phase not in _VALID_PHASES
        ):
            problems.append(f"event {i}: invalid phase {phase!r}")
        ts = event.get("ts")
        if ts is not None and not isinstance(ts, (int, float)):
            problems.append(f"event {i}: ts must be numeric, got {ts!r}")
        if event.get("ph") == "X" and not isinstance(
            event.get("dur"), (int, float)
        ):
            problems.append(f"event {i}: 'X' event needs a numeric dur")
        if len(problems) >= 50:
            problems.append("... (validation stopped after 50 problems)")
            break
    if causal and not problems:
        problems.extend(_causal_problems(events))
    return problems


def _causal_problems(events) -> list:
    """Orphan-parent and parent-cycle findings over the span graph."""
    problems = []
    parent_of = {}  # span id -> its declared parent (or None)
    for event in events:
        if not isinstance(event, dict):
            continue
        args = event.get("args")
        if isinstance(args, dict) and "span" in args:
            parent_of[args["span"]] = args.get("parent")
    orphans = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            continue
        args = event.get("args")
        parent = args.get("parent") if isinstance(args, dict) else None
        if parent is not None and parent not in parent_of:
            orphans += 1
            if orphans <= 10:
                problems.append(
                    f"event {i} ({event.get('name')!r}): orphan — parent "
                    f"span {parent!r} is nowhere in the trace"
                )
    if orphans > 10:
        problems.append(f"... ({orphans} orphan event(s) in total)")
    verified = set()  # spans proven to reach a root without cycling
    flagged = set()
    for span in parent_of:
        chain = []
        seen = set()
        cur = span
        while cur is not None and cur in parent_of and cur not in verified:
            if cur in seen:
                if cur not in flagged:
                    flagged.add(cur)
                    problems.append(
                        f"span {cur!r}: parent links form a cycle "
                        "(causal order is unsatisfiable)"
                    )
                break
            seen.add(cur)
            chain.append(cur)
            cur = parent_of[cur]
        else:
            verified.update(chain)
    return problems
