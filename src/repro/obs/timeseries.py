"""In-process metric time-series: sampled registry history with retention.

Every view the repo had before this module was point-in-time — a STATS
poll, a METRICS scrape, one ``repro top`` frame.  :class:`TimeSeriesStore`
retains *history*: it periodically samples a
:class:`~repro.obs.registry.MetricsRegistry` snapshot into per-series
windows and answers ``(metric, labels) -> [(t, value)]`` queries, which is
what windowed alerting (:mod:`repro.obs.alerts`), the ``/history`` HTTP
endpoint (:mod:`repro.obs.http`), the flight recorder
(:mod:`repro.obs.flight`) and the ``repro top`` sparklines read.

Design constraints, in order:

1. **bounded memory** — samples land in tiered windows
   (:data:`DEFAULT_TIERS`: one second of resolution for five minutes, ten
   seconds for an hour) and each tier keeps *the last sample per
   resolution bucket*, so retention is a hard cap independent of sample
   rate;
2. **cheap storage** — within a window only the first point is stored
   absolute; every later point is a ``(dt, dv)`` delta against its
   predecessor (timestamps march by the sampling interval and counters
   move by small increments, so deltas stay tiny), and trimming the
   oldest point just folds its delta into the base;
3. **deterministic by injection** — the store never reads a wall clock on
   its own behalf unless asked: :meth:`TimeSeriesStore.sample` and
   :meth:`TimeSeriesStore.record` take an explicit ``now``, and the
   fallback ``clock`` is injected at construction (defaulting to the
   sanctioned :func:`repro.obs.prof.clock`).  Tests and the deterministic
   alert replay drive logical time and get byte-identical histories.

Histogram families sample as two derived series, ``<name>_count`` and
``<name>_sum`` — the Prometheus convention, and enough to derive windowed
rates and means.
"""

from __future__ import annotations

import json
from collections import deque, namedtuple

from .prof import clock as _wall_clock

#: one retention tier: keep ``length`` samples at ``resolution_s`` spacing
Tier = namedtuple("Tier", ("resolution_s", "length"))

#: 1s resolution for 5 minutes, 10s resolution for 1 hour
DEFAULT_TIERS = (Tier(1.0, 300), Tier(10.0, 360))


class _TierWindow:
    """One bounded, delta-encoded window of ``(t, value)`` points.

    Downsampling is *keep-last-per-bucket*: a sample landing in the same
    ``resolution_s`` bucket as the window's newest point replaces it, so
    the coarse tiers always hold the freshest value each bucket saw.
    """

    __slots__ = ("resolution", "length", "_t0", "_v0", "_dts", "_dvs",
                 "_last_t", "_last_v", "_last_bucket")

    def __init__(self, tier: Tier):
        self.resolution = float(tier.resolution_s)
        self.length = int(tier.length)
        self._t0 = None  # base point, stored absolute
        self._v0 = None
        self._dts = deque()  # deltas between consecutive points
        self._dvs = deque()
        self._last_t = None  # newest point, decoded (avoids re-summing)
        self._last_v = None
        self._last_bucket = None

    def __len__(self) -> int:
        return 0 if self._t0 is None else 1 + len(self._dts)

    @property
    def span_s(self) -> float:
        """Seconds of history this tier can hold when full."""
        return self.resolution * self.length

    def record(self, t: float, value) -> None:
        bucket = int(t // self.resolution)
        if self._t0 is None:
            self._t0 = self._v0 = None  # keep slots symmetric
            self._t0, self._v0 = t, value
            self._last_t, self._last_v = t, value
            self._last_bucket = bucket
            return
        if bucket == self._last_bucket:
            # same bucket: replace the newest point in place
            if not self._dts:
                self._t0, self._v0 = t, value
            else:
                prev_t = self._last_t - self._dts[-1]
                prev_v = self._last_v - self._dvs[-1]
                self._dts[-1] = t - prev_t
                self._dvs[-1] = value - prev_v
            self._last_t, self._last_v = t, value
            return
        self._dts.append(t - self._last_t)
        self._dvs.append(value - self._last_v)
        self._last_t, self._last_v = t, value
        self._last_bucket = bucket
        while 1 + len(self._dts) > self.length:
            # trim oldest: fold its delta into the base point
            self._t0 += self._dts.popleft()
            self._v0 += self._dvs.popleft()

    def points(self, since=None) -> list:
        """Decoded ``[t, value]`` pairs, oldest first."""
        if self._t0 is None:
            return []
        out = []
        t, v = self._t0, self._v0
        if since is None or t >= since:
            out.append([t, v])
        for dt, dv in zip(self._dts, self._dvs):
            t += dt
            v += dv
            if since is None or t >= since:
                out.append([t, v])
        return out

    def latest(self):
        """``(t, value)`` of the newest point, or ``None``."""
        if self._t0 is None:
            return None
        return (self._last_t, self._last_v)


class _Series:
    """One ``(metric, labels)`` identity across every retention tier."""

    __slots__ = ("labels", "windows")

    def __init__(self, labels: dict, tiers):
        self.labels = labels
        self.windows = [_TierWindow(t) for t in tiers]

    def record(self, t: float, value) -> None:
        for window in self.windows:
            window.record(t, value)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class TimeSeriesStore:
    """Tiered history of registry samples, queryable per (metric, labels).

    ``registry`` is optional: :meth:`record` accepts points directly, so
    the store also serves derived series (the ``repro top`` loop feeds it
    hit-rate and request-rate numbers it computes from STATS deltas).
    """

    def __init__(self, registry=None, tiers=DEFAULT_TIERS, clock=None):
        if not tiers:
            raise ValueError("need at least one retention tier")
        self.registry = registry
        self.tiers = tuple(Tier(float(r), int(n)) for r, n in tiers)
        self._clock = clock if clock is not None else _wall_clock
        self._series = {}  # (name, label_key) -> _Series
        #: samples taken (sample() calls), for /varz and tests
        self.samples_taken = 0

    # -- ingest ---------------------------------------------------------------

    def now(self) -> float:
        """The injected clock (wall by default, logical under test)."""
        return self._clock()

    def record(self, name: str, labels: dict, value, now=None) -> None:
        """Record one explicit point for ``(name, labels)``."""
        t = self.now() if now is None else now
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Series(
                {str(k): str(v) for k, v in labels.items()}, self.tiers
            )
        series.record(t, value)

    def sample(self, now=None) -> float:
        """Sample the attached registry once; returns the sample time.

        Counter and gauge series record their value; histogram series
        record ``<name>_count`` and ``<name>_sum``.  A disabled (or
        absent) registry samples nothing but still advances
        ``samples_taken`` so callers can assert liveness.
        """
        t = self.now() if now is None else now
        self.samples_taken += 1
        if self.registry is None or not getattr(self.registry, "enabled", False):
            return t
        snapshot = self.registry.snapshot()
        for name, family in snapshot.items():
            for series in family["series"]:
                labels = series["labels"]
                if "buckets" in series:
                    self.record(name + "_count", labels, series["count"], now=t)
                    self.record(name + "_sum", labels, series["sum"], now=t)
                else:
                    self.record(name, labels, series["value"], now=t)
        return t

    # -- query ----------------------------------------------------------------

    def series(self) -> list:
        """Sorted ``(name, labels)`` identities currently retained."""
        return [
            (name, self._series[(name, key)].labels)
            for name, key in sorted(self._series)
        ]

    def _matching(self, name: str, labels) -> list:
        if labels is not None:
            series = self._series.get((name, _label_key(labels)))
            return [series] if series is not None else []
        return [s for (n, _), s in sorted(self._series.items()) if n == name]

    def query(self, name: str, labels=None, tier: int = 0, since=None) -> list:
        """``[[t, value], ...]`` for a metric, oldest first.

        With ``labels`` the exact series is returned; without, every
        series of the family is summed pointwise by timestamp (all series
        of one sample share its ``t``), which is the natural reading for
        per-shard and per-node counters.
        """
        matching = self._matching(name, labels)
        if not matching:
            return []
        if len(matching) == 1:
            return matching[0].windows[tier].points(since)
        summed = {}
        for series in matching:
            for t, v in series.windows[tier].points(since):
                summed[t] = summed.get(t, 0) + v
        return [[t, summed[t]] for t in sorted(summed)]

    def window(self, name: str, labels=None, duration=60.0, now=None) -> list:
        """Points from the last ``duration`` seconds, finest tier that
        covers it (falling back to the coarsest)."""
        t = self.now() if now is None else now
        tier = len(self.tiers) - 1
        for i, spec in enumerate(self.tiers):
            if spec.resolution_s * spec.length >= duration:
                tier = i
                break
        return self.query(name, labels, tier=tier, since=t - duration)

    def latest(self, name: str, labels=None):
        """The newest value of a metric (summed across series), or None."""
        matching = self._matching(name, labels)
        newest = [s.windows[0].latest() for s in matching]
        newest = [p for p in newest if p is not None]
        if not newest:
            return None
        return sum(v for _, v in newest)

    # -- export ---------------------------------------------------------------

    def to_dict(self, window_s=None, now=None, tier: int = 0) -> dict:
        """JSON-safe dump ``{name: [{labels, points}, ...]}``.

        ``window_s`` bounds the dump to the trailing window (what the
        flight recorder persists); ``None`` dumps the whole tier.
        """
        t = self.now() if now is None else now
        since = None if window_s is None else t - window_s
        out = {}
        for (name, _), series in sorted(self._series.items()):
            points = series.windows[tier].points(since)
            if not points:
                continue
            out.setdefault(name, []).append(
                {"labels": series.labels, "points": points}
            )
        return out

    def to_json(self, window_s=None, now=None) -> str:
        return json.dumps(self.to_dict(window_s=window_s, now=now))


class TelemetrySampler:
    """Async loop feeding a :class:`TimeSeriesStore` (and optional hooks).

    ``on_sample(t)`` callbacks run after each sample — the serving stack
    hangs alert evaluation there, so alerting advances in lockstep with
    the history it reads.
    """

    def __init__(self, store: TimeSeriesStore, interval: float = 1.0):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.store = store
        self.interval = interval
        self._hooks = []
        self._task = None

    def on_sample(self, fn) -> None:
        """Register ``fn(t)`` to run after every sample."""
        self._hooks.append(fn)

    def tick(self, now=None) -> float:
        """One synchronous sample + hook pass (what the loop repeats)."""
        t = self.store.sample(now=now)
        for fn in self._hooks:
            fn(t)
        return t

    async def run(self) -> None:
        """Sample forever at ``interval``; cancellation stops cleanly."""
        import asyncio

        try:
            while True:
                await asyncio.sleep(self.interval)
                self.tick()
        except asyncio.CancelledError:
            pass

    def start(self) -> None:
        """Spawn the sampling task on the running loop."""
        import asyncio

        if self._task is None:
            self._task = asyncio.ensure_future(self.run())

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
