"""Crash flight recorder: atomic forensic bundles for post-incident work.

When a node degrades or dies, the telemetry that explains *why* is in
process memory — the time-series tail, the trace ring, per-shard stats,
which alerts were firing.  The :class:`FlightRecorder` freezes all of it
into one JSON bundle (format tag ``repro-flight/1``) and writes it
atomically (tmp file + :func:`os.replace`), so a bundle on disk is always
complete — never a torn write from a dying process.

Triggers are wired by :class:`repro.service.telemetry.ServiceTelemetry`:
``SIGUSR2`` (operator-requested snapshot of a live node) and fatal server
errors (last-gasp dump on the way down).  ``repro obs flight <bundle>``
pretty-prints a bundle: header, firing alerts, alert timeline, sparklined
metric tails, trace-ring summary, per-shard stats.

Reading state is non-destructive: the recorder snapshots
``tracer.events()`` (not ``drain()``), so dumping a bundle never clears
the live ring.  Filenames carry a wall-clock stamp plus the trigger
reason — the one place wall time belongs, since bundles exist to be
correlated with external logs.
"""

from __future__ import annotations

import json
import os
import time

from ..metrics.textplot import sparkline

__all__ = ["FlightRecorder", "load_flight", "render_flight"]

FLIGHT_FORMAT = "repro-flight/1"

#: series worth sparklining first when rendering (most diagnostic value)
_RENDER_PRIORITY = (
    "repro_service_shard_hits",
    "repro_service_shard_misses",
    "repro_service_shard_hit_rate",
    "repro_service_requests_total",
    "repro_service_eventloop_lag_seconds",
    "repro_cluster_pending_invals",
    "repro_slo_burn_rate",
)


class FlightRecorder:
    """Bundles process telemetry into atomic, timestamped JSON dumps.

    Every collaborator is optional — a recorder with only a time-series
    store still produces a useful bundle.  ``stats_fn`` is a zero-arg
    callable returning the server's STATS payload (JSON-safe dict).
    """

    def __init__(self, out_dir=".", timeseries=None, tracer=None,
                 alerts=None, stats_fn=None, window_s=300.0, clock=None):
        self.out_dir = out_dir
        self.timeseries = timeseries
        self.tracer = tracer
        self.alerts = alerts
        self.stats_fn = stats_fn
        self.window_s = float(window_s)
        self._clock = clock
        #: paths of bundles written by this recorder, oldest first
        self.dumped = []

    def bundle(self, reason="manual", now=None) -> dict:
        """Assemble the in-memory bundle (no I/O)."""
        if now is None:
            if self._clock is not None:
                now = self._clock()
            elif self.timeseries is not None:
                now = self.timeseries.now()
        out = {
            "format": FLIGHT_FORMAT,
            "reason": reason,
            "window_s": self.window_s,
            "t": now,
        }
        if self.timeseries is not None:
            out["timeseries"] = self.timeseries.to_dict(
                window_s=self.window_s, now=now
            )
            out["samples_taken"] = self.timeseries.samples_taken
        if self.tracer is not None:
            events = self.tracer.events()
            scale = getattr(self.tracer, "_ts_scale", 1.0)
            out["trace"] = {
                "events": [e.to_dict(scale) for e in events],
                "dropped": getattr(self.tracer, "dropped", 0),
            }
        if self.alerts is not None:
            out["alerts"] = self.alerts.to_dict()
        if self.stats_fn is not None:
            try:
                out["stats"] = self.stats_fn()
            except Exception as exc:  # a dying server must still dump
                out["stats"] = {"error": repr(exc)}
        return out

    def dump(self, reason="manual", now=None) -> str:
        """Write one bundle atomically; returns its path."""
        data = self.bundle(reason=reason, now=now)
        # wall stamp for filename correlation with external logs only —
        # nothing inside the bundle derives from it
        stamp = time.strftime("%Y%m%d-%H%M%S")
        safe_reason = "".join(
            c if c.isalnum() or c in "-_" else "-" for c in reason
        )
        base = f"flight-{stamp}-{safe_reason}.json"
        path = os.path.join(self.out_dir, base)
        n = 1
        while os.path.exists(path):  # same-second dumps must not clobber
            path = os.path.join(self.out_dir, f"flight-{stamp}-{safe_reason}.{n}.json")
            n += 1
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(data, fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.dumped.append(path)
        return path


def load_flight(path: str) -> dict:
    """Load and format-check a bundle written by :class:`FlightRecorder`."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    fmt = data.get("format")
    if fmt != FLIGHT_FORMAT:
        raise ValueError(
            f"{path}: not a flight bundle (format {fmt!r}, "
            f"expected {FLIGHT_FORMAT!r})"
        )
    return data


def _series_order(timeseries: dict) -> list:
    names = list(timeseries)
    prio = {name: i for i, name in enumerate(_RENDER_PRIORITY)}
    return sorted(names, key=lambda n: (prio.get(n, len(prio)), n))


def render_flight(bundle: dict, width: int = 72, max_series: int = 16) -> str:
    """Human-readable rendering of a flight bundle (pure function)."""
    lines = []
    reason = bundle.get("reason", "?")
    lines.append(f"flight bundle · reason={reason} · t={bundle.get('t')}")
    lines.append("=" * width)

    alerts = bundle.get("alerts") or {}
    states = alerts.get("states") or []
    firing = [s for s in states if s["state"] == "firing"]
    lines.append(f"alerts: {len(firing)} firing / {len(states)} rules")
    for s in states:
        marker = "!!" if s["state"] == "firing" else "  "
        value = s.get("value")
        shown = f"{value:.4g}" if isinstance(value, (int, float)) else "-"
        lines.append(
            f" {marker} {s['alert']:<22} {s['state']:<9} value={shown}"
            f"  [{s.get('severity', '?')}]"
        )
    timeline = alerts.get("timeline") or []
    if timeline:
        lines.append(f"timeline ({len(timeline)} transitions):")
        for ev in timeline[-20:]:
            lines.append(
                f"   t={ev['t']:<10.4g} {ev['alert']:<22} "
                f"{ev['from']} -> {ev['to']}"
            )

    timeseries = bundle.get("timeseries") or {}
    if timeseries:
        lines.append("-" * width)
        lines.append(
            f"time-series tail ({bundle.get('window_s')}s window, "
            f"{len(timeseries)} metrics):"
        )
        for name in _series_order(timeseries)[:max_series]:
            entries = timeseries[name]
            # sum across label sets for the overview sparkline
            summed = {}
            for entry in entries:
                for t, v in entry["points"]:
                    summed[t] = summed.get(t, 0) + v
            values = [summed[t] for t in sorted(summed)]
            if not values:
                continue
            lines.append(
                f"  {name:<44} last={values[-1]:.6g}"
            )
            lines.append(f"    {sparkline(values, width=min(60, width - 6))}")
        if len(timeseries) > max_series:
            lines.append(f"  … {len(timeseries) - max_series} more metrics")

    trace = bundle.get("trace") or {}
    events = trace.get("events") or []
    if trace:
        lines.append("-" * width)
        lines.append(
            f"trace ring: {len(events)} events retained, "
            f"{trace.get('dropped', 0)} dropped"
        )
        by_cat = {}
        for ev in events:
            by_cat[ev.get("cat", "?")] = by_cat.get(ev.get("cat", "?"), 0) + 1
        for cat in sorted(by_cat):
            lines.append(f"   {cat:<20} {by_cat[cat]}")

    stats = bundle.get("stats")
    if stats:
        lines.append("-" * width)
        lines.append("server stats:")
        for line in json.dumps(stats, indent=2, sort_keys=True).splitlines():
            lines.append(f"  {line}")
    return "\n".join(lines) + "\n"
