"""Declarative alerting over :mod:`repro.obs.timeseries` windows.

An :class:`AlertRule` is a predicate over a trailing time-series window —
threshold on the latest value, delta across the window, per-second rate,
or a ratio of counter deltas — plus the temporal shaping that separates a
page from noise: ``for_s`` (the condition must hold that long before the
alert fires) and hysteresis (``resolve_threshold`` lets the resolve bound
sit away from the firing bound so a metric hovering at the line doesn't
flap).

The :class:`AlertEngine` evaluates every rule against a
:class:`~repro.obs.timeseries.TimeSeriesStore` at the times it is given —
never a wall clock it reads itself — and drives each rule through the
``ok → pending → firing → resolved`` lifecycle, appending every
transition to an append-only ``timeline``.  Fed a deterministic history
and a logical clock (as ``repro obs alert-replay`` and the tests do), two
runs produce byte-identical timelines.

:func:`builtin_rules` encodes the degradations this repo actually
exhibits: windowed hit-rate collapse (the scan-flood signature selective
allocation exists to resist), pending-INVAL debt growth on cluster
nodes, event-loop lag, and the PR 8 SLO burn rates.
"""

from __future__ import annotations

__all__ = [
    "AlertRule",
    "AlertEngine",
    "AlertState",
    "builtin_rules",
]

_KINDS = ("threshold", "delta", "rate", "ratio")
_OPS = {
    ">": lambda value, bound: value > bound,
    "<": lambda value, bound: value < bound,
}


class AlertState:
    """Lifecycle states (plain strings so timelines are JSON-safe)."""

    OK = "ok"
    PENDING = "pending"
    FIRING = "firing"
    RESOLVED = "resolved"


class AlertRule:
    """One declarative predicate over a trailing metric window.

    kind
        ``threshold`` — compare the window's newest value;
        ``delta`` — compare ``newest - oldest`` across the window;
        ``rate`` — compare the delta divided by the window's time span;
        ``ratio`` — compare ``delta(metric) / sum(delta(d) for d in
        divisors)`` (e.g. hits over hits+misses).  A zero-total ratio
        window is *healthy*: no traffic is not a degradation.
    op, threshold
        The comparison that means "bad": ``op(value, threshold)`` true
        starts the pending timer.
    resolve_threshold
        Hysteresis bound: once firing, the alert resolves only when
        ``op(value, resolve_threshold)`` is false.  Defaults to
        ``threshold`` (no hysteresis).  For ``<`` rules it must be >=
        threshold, for ``>`` rules <= threshold.
    for_s
        The condition must hold continuously this long before firing.
    window_s
        Length of the trailing window the value is computed over.
    """

    __slots__ = ("name", "metric", "kind", "op", "threshold",
                 "resolve_threshold", "window_s", "for_s", "labels",
                 "divisors", "severity", "description")

    def __init__(self, name, metric, kind="threshold", op=">", threshold=0.0,
                 resolve_threshold=None, window_s=60.0, for_s=0.0,
                 labels=None, divisors=(), severity="warning",
                 description=""):
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        if op not in _OPS:
            raise ValueError(f"op must be one of {tuple(_OPS)}, got {op!r}")
        if kind == "ratio" and not divisors:
            raise ValueError("ratio rules need at least one divisor metric")
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if for_s < 0:
            raise ValueError(f"for_s must be >= 0, got {for_s}")
        self.name = name
        self.metric = metric
        self.kind = kind
        self.op = op
        self.threshold = float(threshold)
        self.resolve_threshold = (
            self.threshold if resolve_threshold is None
            else float(resolve_threshold)
        )
        if op == "<" and self.resolve_threshold < self.threshold:
            raise ValueError(
                f"{name}: resolve_threshold {self.resolve_threshold} must be "
                f">= threshold {self.threshold} for op '<'"
            )
        if op == ">" and self.resolve_threshold > self.threshold:
            raise ValueError(
                f"{name}: resolve_threshold {self.resolve_threshold} must be "
                f"<= threshold {self.threshold} for op '>'"
            )
        self.window_s = float(window_s)
        self.for_s = float(for_s)
        self.labels = dict(labels) if labels else None
        self.divisors = tuple(divisors)
        self.severity = severity
        self.description = description

    def value(self, store, now):
        """The rule's current value over its window, or None (no data)."""
        points = store.window(self.metric, self.labels, self.window_s, now=now)
        if not points:
            return None
        if self.kind == "threshold":
            return points[-1][1]
        if len(points) < 2:
            return None  # a delta needs two points
        delta = points[-1][1] - points[0][1]
        if self.kind == "delta":
            return delta
        if self.kind == "rate":
            span = points[-1][0] - points[0][0]
            return delta / span if span > 0 else None
        total = delta
        for name in self.divisors:
            dpoints = store.window(name, self.labels, self.window_s, now=now)
            if len(dpoints) >= 2:
                total += dpoints[-1][1] - dpoints[0][1]
        if self.kind == "ratio" and self.metric in self.divisors:
            total -= delta  # metric already counted via divisors
        if total <= 0:
            return None  # no traffic in the window: healthy, not 0/0
        return delta / total

    def breaches(self, value) -> bool:
        return value is not None and _OPS[self.op](value, self.threshold)

    def recovered(self, value) -> bool:
        """True when a firing alert may resolve (hysteresis bound)."""
        return value is None or not _OPS[self.op](value, self.resolve_threshold)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "kind": self.kind,
            "op": self.op,
            "threshold": self.threshold,
            "resolve_threshold": self.resolve_threshold,
            "window_s": self.window_s,
            "for_s": self.for_s,
            "labels": self.labels,
            "divisors": list(self.divisors),
            "severity": self.severity,
            "description": self.description,
        }


class _RuleState:
    __slots__ = ("state", "pending_since", "fired_at", "last_value")

    def __init__(self):
        self.state = AlertState.OK
        self.pending_since = None
        self.fired_at = None
        self.last_value = None


class AlertEngine:
    """Drives rules through ok → pending → firing → resolved.

    ``evaluate(now)`` is the only mutator; it touches no clock of its
    own, so callers control time entirely.  Transitions are returned and
    appended to ``timeline``; ``on_transition(fn)`` hooks (the serving
    stack logs from one) see each transition as it happens.
    """

    def __init__(self, store, rules=()):
        self.store = store
        self.rules = list(rules)
        self._states = {r.name: _RuleState() for r in self.rules}
        #: append-only [{"t","alert","from","to","value","severity"}]
        self.timeline = []
        self._hooks = []

    def add_rule(self, rule: AlertRule) -> None:
        if rule.name in self._states:
            raise ValueError(f"duplicate alert rule {rule.name!r}")
        self.rules.append(rule)
        self._states[rule.name] = _RuleState()

    def on_transition(self, fn) -> None:
        """Register ``fn(transition_dict)`` to run on every transition."""
        self._hooks.append(fn)

    def _transition(self, rule, st, to, now):
        event = {
            "t": now,
            "alert": rule.name,
            "from": st.state,
            "to": to,
            "value": st.last_value,
            "severity": rule.severity,
        }
        st.state = to
        self.timeline.append(event)
        for fn in self._hooks:
            fn(event)
        return event

    def evaluate(self, now=None):
        """Evaluate every rule at ``now``; returns this pass's transitions."""
        t = self.store.now() if now is None else now
        transitions = []
        for rule in self.rules:
            st = self._states[rule.name]
            value = rule.value(self.store, t)
            st.last_value = value
            breaching = rule.breaches(value)
            if st.state in (AlertState.OK, AlertState.RESOLVED):
                if breaching:
                    st.pending_since = t
                    if rule.for_s <= 0:
                        st.fired_at = t
                        transitions.append(
                            self._transition(rule, st, AlertState.FIRING, t))
                    else:
                        transitions.append(
                            self._transition(rule, st, AlertState.PENDING, t))
            elif st.state == AlertState.PENDING:
                if not breaching:
                    st.pending_since = None
                    transitions.append(
                        self._transition(rule, st, AlertState.OK, t))
                elif t - st.pending_since >= rule.for_s:
                    st.fired_at = t
                    transitions.append(
                        self._transition(rule, st, AlertState.FIRING, t))
            elif st.state == AlertState.FIRING:
                if rule.recovered(value):
                    st.pending_since = None
                    st.fired_at = None
                    transitions.append(
                        self._transition(rule, st, AlertState.RESOLVED, t))
        return transitions

    def states(self) -> list:
        """JSON-safe per-rule status, rule order preserved."""
        out = []
        for rule in self.rules:
            st = self._states[rule.name]
            out.append({
                "alert": rule.name,
                "state": st.state,
                "value": st.last_value,
                "since": st.fired_at if st.state == AlertState.FIRING
                else st.pending_since,
                "severity": rule.severity,
                "description": rule.description,
            })
        return out

    def firing(self) -> list:
        return [s for s in self.states() if s["state"] == AlertState.FIRING]

    def to_dict(self) -> dict:
        return {
            "rules": [r.to_dict() for r in self.rules],
            "states": self.states(),
            "timeline": list(self.timeline),
        }


def builtin_rules(window_s=30.0, slo_burn_threshold=10.0):
    """The degradations this repo is built to exhibit, as alert rules.

    * ``hit_rate_drop`` — windowed hit rate (delta hits over delta
      hits+misses across all shards) under 20%, resolving above 40%.
      A scan flood drags this down even while selective allocation
      protects the resident hot set; sustained breach means the cache
      is no longer absorbing the working set.
    * ``pending_inval_debt`` — the cluster coherence queue grew over the
      window: owners are producing INVALs faster than replicas ack.
    * ``eventloop_lag`` — the server's measured loop lag (PR 8 gauge)
      above 100ms: the asyncio loop is starving.
    * ``slo_burn`` — any published SLO burn-rate gauge above
      ``slo_burn_threshold`` (10x budget ≈ page-now in SRE practice).
    """
    return [
        AlertRule(
            "hit_rate_drop",
            metric="repro_service_shard_hits",
            kind="ratio",
            divisors=("repro_service_shard_hits", "repro_service_shard_misses"),
            op="<", threshold=0.20, resolve_threshold=0.40,
            window_s=window_s, for_s=min(5.0, window_s / 2),
            severity="critical",
            description="windowed hit rate collapsed (scan flood signature)",
        ),
        AlertRule(
            "pending_inval_debt",
            metric="repro_cluster_pending_invals",
            kind="delta",
            op=">", threshold=0.0,
            window_s=window_s, for_s=min(5.0, window_s / 2),
            severity="warning",
            description="coherence pending-INVAL debt grew over the window",
        ),
        AlertRule(
            "eventloop_lag",
            metric="repro_service_eventloop_lag_seconds",
            kind="threshold",
            op=">", threshold=0.100, resolve_threshold=0.050,
            window_s=window_s, for_s=min(3.0, window_s / 2),
            severity="warning",
            description="asyncio event-loop lag above 100ms",
        ),
        AlertRule(
            "slo_burn",
            metric="repro_slo_burn_rate",
            kind="threshold",
            op=">", threshold=slo_burn_threshold,
            resolve_threshold=1.0,
            window_s=window_s, for_s=min(5.0, window_s / 2),
            severity="critical",
            description="an SLO is burning error budget at page-now rate",
        ),
    ]
