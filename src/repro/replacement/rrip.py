"""Re-reference interval prediction (RRIP) replacement [Jaleel et al., ISCA'10].

Implements the family the paper compares against:

* :class:`SRRIPPolicy` — static RRIP: insert with a *long* re-reference
  prediction (RRPV = 2 for 2-bit counters), promote to *near-immediate*
  (RRPV = 0) on a hit, evict the first line predicted *distant* (RRPV = 3),
  aging the whole set when none is distant.
* :class:`BRRIPPolicy` — bimodal RRIP: insert with RRPV = 3 (distant) most of
  the time and RRPV = 2 with low probability ``epsilon`` (1/32 by default).
* :class:`DRRIPPolicy` — dynamic, *thread-aware* RRIP (TA-DRRIP): per-thread
  set-dueling monitors pick SRRIP or BRRIP insertion for each thread's fills
  using a saturating PSEL counter per thread.

Set dueling follows the constituency scheme of Qureshi et al.: set indices
are partitioned round-robin; for thread ``t`` the sets with
``set_idx % period == 2 t`` are SRRIP leaders and those with
``set_idx % period == 2 t + 1`` are BRRIP leaders.  Misses in a thread's
leader sets steer its PSEL; follower sets use the PSEL winner.
"""

from __future__ import annotations

from typing import Sequence

from .base import ReplacementPolicy

#: number of RRPV bits used throughout (the paper's configuration)
RRPV_BITS = 2
RRPV_MAX = (1 << RRPV_BITS) - 1  # 3: "distant re-reference"
RRPV_LONG = RRPV_MAX - 1  # 2: "long re-reference"


class _RRIPBase(ReplacementPolicy):
    """Shared RRPV bookkeeping: hit promotion and distant-victim search."""

    def __init__(self, num_sets, assoc, rng=None):
        super().__init__(num_sets, assoc, rng)
        self._rrpv = [[RRPV_MAX] * assoc for _ in range(num_sets)]

    def on_hit(self, set_idx, way, thread=0):
        # Hit priority (HP) promotion: predict near-immediate re-reference.
        self._rrpv[set_idx][way] = 0

    def on_invalidate(self, set_idx, way):
        self._rrpv[set_idx][way] = RRPV_MAX

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        rrpv = self._rrpv[set_idx]
        while True:
            for w in candidates:
                if rrpv[w] == RRPV_MAX:
                    return w
            # Age: increment every line in the set until a candidate saturates.
            for w in range(self.assoc):
                if rrpv[w] < RRPV_MAX:
                    rrpv[w] += 1

    # -- insertion values ----------------------------------------------------
    def _insert(self, set_idx: int, way: int, value: int) -> None:
        self._rrpv[set_idx][way] = value


class SRRIPPolicy(_RRIPBase):
    """Static RRIP: every fill predicted as a long re-reference interval."""

    name = "srrip"

    def on_fill(self, set_idx, way, thread=0):
        self._insert(set_idx, way, RRPV_LONG)


class BRRIPPolicy(_RRIPBase):
    """Bimodal RRIP: fills predicted distant, occasionally long."""

    name = "brrip"

    #: probability that a fill receives the *long* (rather than distant) RRPV
    epsilon = 1.0 / 32.0

    def on_fill(self, set_idx, way, thread=0):
        value = RRPV_LONG if self.rng.random() < self.epsilon else RRPV_MAX
        self._insert(set_idx, way, value)


class DRRIPPolicy(_RRIPBase):
    """Thread-aware dynamic RRIP with per-thread set-dueling monitors."""

    name = "drrip"

    #: PSEL counter width
    psel_bits = 10

    def __init__(self, num_sets, assoc, rng=None, num_threads: int = 8):
        super().__init__(num_sets, assoc, rng)
        if num_threads <= 0:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        self.num_threads = num_threads
        self._psel_max = (1 << self.psel_bits) - 1
        # Start at the midpoint: no preference.
        self._psel = [self._psel_max // 2] * num_threads
        # Constituency period: two leader sets (one SRRIP, one BRRIP) per
        # thread per period.  Clamp so small caches still have followers.
        self._period = max(2 * num_threads, 4)
        self._brrip_rng = rng

    # -- leader-set classification -------------------------------------------
    def _leader_role(self, set_idx: int, thread: int) -> str:
        slot = set_idx % self._period
        if slot == 2 * thread:
            return "srrip"
        if slot == 2 * thread + 1:
            return "brrip"
        return "follower"

    def on_miss(self, set_idx, thread=0):
        """Steer PSEL: misses in a leader set vote against its policy."""
        role = self._leader_role(set_idx, thread)
        psel = self._psel
        if role == "srrip" and psel[thread] < self._psel_max:
            psel[thread] += 1
        elif role == "brrip" and psel[thread] > 0:
            psel[thread] -= 1

    def _uses_brrip(self, set_idx: int, thread: int) -> bool:
        role = self._leader_role(set_idx, thread)
        if role == "srrip":
            return False
        if role == "brrip":
            return True
        # Follower: high PSEL means SRRIP missed more, so BRRIP wins.
        return self._psel[thread] > self._psel_max // 2

    def on_fill(self, set_idx, way, thread=0):
        if self._uses_brrip(set_idx, thread):
            value = (
                RRPV_LONG
                if self.rng.random() < BRRIPPolicy.epsilon
                else RRPV_MAX
            )
        else:
            value = RRPV_LONG
        self._insert(set_idx, way, value)
