"""Uniform-random replacement, mainly a baseline for tests and ablations."""

from __future__ import annotations

from typing import Sequence

from .base import ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Pick victims uniformly at random among eligible ways."""

    name = "random"

    def on_fill(self, set_idx, way, thread=0):
        pass

    def on_hit(self, set_idx, way, thread=0):
        pass

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        return candidates[0] if len(candidates) == 1 else self.rng.choice(list(candidates))
