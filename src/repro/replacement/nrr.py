"""Not-recently-reused (NRR) replacement [Albericio et al., TACO 2013].

NRR costs one bit per line, exactly like NRU, but the bit tracks *reuse*
rather than *use*:

* on fill the NRR bit is **set** — the line has not been recently reused;
* on a hit (a reuse) the NRR bit is **cleared**;
* victims are picked at random among eligible lines whose NRR bit is set.

In the paper NRR additionally never evicts lines present in the private
caches (it reads the full-map directory).  That filtering is the *cache's*
job here: the caller passes only eligible ways in ``candidates``.  When every
candidate has been recently reused, the set is aged (all NRR bits set) and a
random candidate is evicted, mirroring NRU's aging step.
"""

from __future__ import annotations

from typing import Sequence

from .base import ReplacementPolicy


class NRRPolicy(ReplacementPolicy):
    """NRR replacement: protect recently *reused* lines."""

    name = "nrr"

    def __init__(self, num_sets, assoc, rng=None):
        super().__init__(num_sets, assoc, rng)
        # nrr bit: 1 = NOT recently reused (evictable)
        self._nrr = [[1] * assoc for _ in range(num_sets)]

    def on_fill(self, set_idx, way, thread=0):
        self._nrr[set_idx][way] = 1

    def on_hit(self, set_idx, way, thread=0):
        self._nrr[set_idx][way] = 0

    def on_invalidate(self, set_idx, way):
        self._nrr[set_idx][way] = 1

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        nrr = self._nrr[set_idx]
        pool = [w for w in candidates if nrr[w]]
        if not pool:
            for w in range(self.assoc):
                nrr[w] = 1
            pool = list(candidates)
        return pool[0] if len(pool) == 1 else self.rng.choice(pool)

    # exposed for tests / liveness analysis
    def is_reused(self, set_idx: int, way: int) -> bool:
        """True if the line in ``way`` was reused since its last aging."""
        return self._nrr[set_idx][way] == 0
