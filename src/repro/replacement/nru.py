"""Not-recently-used replacement (one reference bit per line).

NRU is the commercial baseline the paper cites (UltraSPARC T2 manual) and the
data-array replacement of the set-associative reuse cache: every line carries
one bit which is set on use; victims are chosen among lines whose bit is
clear, and when no such line exists all bits in the set are aged (cleared)
first.
"""

from __future__ import annotations

from typing import Sequence

from .base import ReplacementPolicy


class NRUPolicy(ReplacementPolicy):
    """NRU with random choice among not-recently-used candidates."""

    name = "nru"

    def __init__(self, num_sets, assoc, rng=None):
        super().__init__(num_sets, assoc, rng)
        # ref bit: 1 = recently used
        self._ref = [[0] * assoc for _ in range(num_sets)]

    def on_fill(self, set_idx, way, thread=0):
        self._ref[set_idx][way] = 1

    def on_hit(self, set_idx, way, thread=0):
        self._ref[set_idx][way] = 1

    def on_invalidate(self, set_idx, way):
        self._ref[set_idx][way] = 0

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        refs = self._ref[set_idx]
        pool = [w for w in candidates if not refs[w]]
        if not pool:
            # Age the whole set: everything becomes eligible again.
            for w in range(self.assoc):
                refs[w] = 0
            pool = list(candidates)
        return pool[0] if len(pool) == 1 else self.rng.choice(pool)
