"""Clock replacement [Corbató 1968], used for the fully associative data array.

Clock keeps one reference bit per entry and a rotating hand per set.  On a
victim request the hand sweeps forward: entries with the bit set get a second
chance (bit cleared, hand advances); the first eligible entry with a clear
bit is evicted.  Cost is one bit per line — the paper picks Clock over NRU
for the fully associative data array because it does not degrade at high
associativity and needs no associative scan.
"""

from __future__ import annotations

from typing import Sequence

from .base import ReplacementPolicy


class ClockPolicy(ReplacementPolicy):
    """Clock (second-chance) replacement."""

    name = "clock"

    def __init__(self, num_sets, assoc, rng=None):
        super().__init__(num_sets, assoc, rng)
        self._ref = [[0] * assoc for _ in range(num_sets)]
        self._hand = [0] * num_sets

    def on_fill(self, set_idx, way, thread=0):
        self._ref[set_idx][way] = 1

    def on_hit(self, set_idx, way, thread=0):
        self._ref[set_idx][way] = 1

    def on_invalidate(self, set_idx, way):
        self._ref[set_idx][way] = 0

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        eligible = set(candidates)
        refs = self._ref[set_idx]
        hand = self._hand[set_idx]
        # Two full sweeps suffice: the first clears reference bits, so the
        # second must find an eligible entry with a clear bit.
        for _ in range(2 * self.assoc + 1):
            way = hand
            hand = (hand + 1) % self.assoc
            if way not in eligible:
                continue
            if refs[way]:
                refs[way] = 0
                continue
            self._hand[set_idx] = hand
            return way
        raise RuntimeError("clock sweep failed to find a victim")  # pragma: no cover
