"""Insertion-policy variants of LRU: LIP, BIP and DIP [Qureshi et al., ISCA'07].

These are the dynamic-insertion-policy family the paper's related work builds
on (the NCID selective mode is a descendant of BIP).  They reuse the exact
LRU ordering of :class:`~repro.replacement.lru.LRUPolicy` and only change
where a fill lands in the recency stack:

* **LIP** inserts every fill at the LRU position;
* **BIP** inserts at LRU but promotes to MRU with low probability
  ``epsilon`` (1/32);
* **DIP** set-duels LRU against BIP with a single PSEL counter.
"""

from __future__ import annotations

from .lru import LRUPolicy


class LIPPolicy(LRUPolicy):
    """LRU-insertion policy: fills land at the bottom of the recency stack."""

    name = "lip"

    def _insert_at_lru(self, set_idx: int, way: int) -> None:
        stamps = self._stamp[set_idx]
        # Any value strictly below the current set minimum makes it LRU.
        stamps[way] = min(stamps) - 1

    def on_fill(self, set_idx, way, thread=0):
        self._insert_at_lru(set_idx, way)


class BIPPolicy(LIPPolicy):
    """Bimodal insertion: mostly LRU inserts, occasional MRU inserts."""

    name = "bip"

    epsilon = 1.0 / 32.0

    def on_fill(self, set_idx, way, thread=0):
        if self.rng.random() < self.epsilon:
            self._touch(set_idx, way)  # MRU insert
        else:
            self._insert_at_lru(set_idx, way)


class DIPPolicy(BIPPolicy):
    """Dynamic insertion: set dueling between plain LRU and BIP."""

    name = "dip"

    psel_bits = 10

    def __init__(self, num_sets, assoc, rng=None):
        super().__init__(num_sets, assoc, rng)
        self._psel_max = (1 << self.psel_bits) - 1
        self._psel = self._psel_max // 2
        self._period = 32 if num_sets >= 32 else max(2, num_sets)

    def _role(self, set_idx: int) -> str:
        slot = set_idx % self._period
        if slot == 0:
            return "lru"
        if slot == 1:
            return "bip"
        return "follower"

    def on_miss(self, set_idx, thread=0):
        role = self._role(set_idx)
        if role == "lru" and self._psel < self._psel_max:
            self._psel += 1
        elif role == "bip" and self._psel > 0:
            self._psel -= 1

    def on_fill(self, set_idx, way, thread=0):
        role = self._role(set_idx)
        if role == "lru":
            use_bip = False
        elif role == "bip":
            use_bip = True
        else:
            use_bip = self._psel > self._psel_max // 2
        if use_bip:
            BIPPolicy.on_fill(self, set_idx, way, thread)
        else:
            self._touch(set_idx, way)
