"""SHiP: signature-based hit prediction [Wu et al., MICRO'11].

One of the reuse predictors the paper's Section 6 suggests could sharpen
the reuse cache's fixed "second access = reuse" rule.  SHiP attributes each
fill to a *signature* (here: the requesting thread and a hash of the line
address region, standing in for the PC signatures full-system simulators
use) and learns, with a table of saturating counters (SHCT), whether fills
from that signature tend to be re-referenced:

* on a hit, the line's signature counter is incremented;
* on an eviction without reuse, it is decremented;
* fills whose signature predicts "no reuse" are inserted with a distant
  RRPV, others with the usual long RRPV.

The backing replacement order is 2-bit RRIP, as in the original paper.
"""

from __future__ import annotations

from typing import Sequence

from .base import ReplacementPolicy
from .rrip import RRPV_LONG, RRPV_MAX


class SHiPPolicy(ReplacementPolicy):
    """SHiP-style signature-driven insertion over 2-bit RRIP."""

    name = "ship"

    #: log2 of the signature history counter table size
    shct_bits = 12
    #: saturating counter maximum
    counter_max = 7

    def __init__(self, num_sets, assoc, rng=None):
        super().__init__(num_sets, assoc, rng)
        self._rrpv = [[RRPV_MAX] * assoc for _ in range(num_sets)]
        self._shct = [self.counter_max // 2] * (1 << self.shct_bits)
        # per-line: signature of the filling access and an outcome bit
        self._sig = [[0] * assoc for _ in range(num_sets)]
        self._reused = [[False] * assoc for _ in range(num_sets)]

    # -- signatures --------------------------------------------------------------
    def signature(self, set_idx: int, thread: int) -> int:
        """Fill signature: thread salted with a set-region hash.

        Real SHiP hashes the requesting PC; trace-driven models without PCs
        conventionally substitute a memory-region/thread signature.
        """
        region = set_idx >> 2
        return (thread * 0x9E3779B1 ^ region) & ((1 << self.shct_bits) - 1)

    # -- RRIP bookkeeping -----------------------------------------------------------
    def on_fill(self, set_idx, way, thread=0):
        sig = self.signature(set_idx, thread)
        self._sig[set_idx][way] = sig
        self._reused[set_idx][way] = False
        predicts_reuse = self._shct[sig] > 0
        self._rrpv[set_idx][way] = RRPV_LONG if predicts_reuse else RRPV_MAX

    def on_hit(self, set_idx, way, thread=0):
        self._rrpv[set_idx][way] = 0
        if not self._reused[set_idx][way]:
            self._reused[set_idx][way] = True
            sig = self._sig[set_idx][way]
            if self._shct[sig] < self.counter_max:
                self._shct[sig] += 1

    def on_invalidate(self, set_idx, way):
        if not self._reused[set_idx][way]:
            sig = self._sig[set_idx][way]
            if self._shct[sig] > 0:
                self._shct[sig] -= 1
        self._rrpv[set_idx][way] = RRPV_MAX
        self._reused[set_idx][way] = False

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        rrpv = self._rrpv[set_idx]
        while True:
            for w in candidates:
                if rrpv[w] == RRPV_MAX:
                    return w
            for w in range(self.assoc):
                if rrpv[w] < RRPV_MAX:
                    rrpv[w] += 1
