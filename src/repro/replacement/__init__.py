"""Cache replacement policies.

All policies implement :class:`~repro.replacement.base.ReplacementPolicy`.
Use :func:`make_policy` to construct one by name.
"""

from __future__ import annotations

import random

from .base import ReplacementPolicy
from .clock import ClockPolicy
from .dip import BIPPolicy, DIPPolicy, LIPPolicy
from .lru import LRUPolicy
from .nrr import NRRPolicy
from .nru import NRUPolicy
from .random_policy import RandomPolicy
from .reuse_repl import ReuseReplacementPolicy
from .rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from .ship import SHiPPolicy
from .slru import SLRUPolicy

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "NRUPolicy",
    "NRRPolicy",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "ClockPolicy",
    "RandomPolicy",
    "LIPPolicy",
    "BIPPolicy",
    "DIPPolicy",
    "SLRUPolicy",
    "SHiPPolicy",
    "ReuseReplacementPolicy",
    "make_policy",
    "POLICIES",
]

POLICIES = {
    cls.name: cls
    for cls in (
        LRUPolicy,
        NRUPolicy,
        NRRPolicy,
        SRRIPPolicy,
        BRRIPPolicy,
        DRRIPPolicy,
        ClockPolicy,
        RandomPolicy,
        LIPPolicy,
        BIPPolicy,
        DIPPolicy,
        SLRUPolicy,
        SHiPPolicy,
        ReuseReplacementPolicy,
    )
}


def make_policy(
    name: str,
    num_sets: int,
    assoc: int,
    rng: random.Random | None = None,
    **kwargs,
) -> ReplacementPolicy:
    """Construct a replacement policy by its short name (e.g. ``"nrr"``)."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
    return cls(num_sets, assoc, rng=rng, **kwargs)
