"""Reuse Replacement: the V-way cache's global data replacement
[Qureshi, Thompson, Patt — ISCA 2005].

Each data entry carries a small saturating reuse counter (2 bits here, as
in the original): incremented on every hit, initialised to zero on fill.  A
victim request sweeps a rotating pointer, decrementing non-zero counters,
and evicts the first entry found at zero — a generalised Clock that needs
several hits to earn long residency.  The V-way cache applies it *globally*
over the whole data array; in this package that is a fully associative set.
"""

from __future__ import annotations

from typing import Sequence

from .base import ReplacementPolicy


class ReuseReplacementPolicy(ReplacementPolicy):
    """Global reuse-counter replacement (V-way style)."""

    name = "reuse_repl"

    counter_max = 3

    def __init__(self, num_sets, assoc, rng=None):
        super().__init__(num_sets, assoc, rng)
        self._count = [[0] * assoc for _ in range(num_sets)]
        self._hand = [0] * num_sets

    def on_fill(self, set_idx, way, thread=0):
        self._count[set_idx][way] = 0

    def on_hit(self, set_idx, way, thread=0):
        counters = self._count[set_idx]
        if counters[way] < self.counter_max:
            counters[way] += 1

    def on_invalidate(self, set_idx, way):
        self._count[set_idx][way] = 0

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        eligible = set(candidates)
        counters = self._count[set_idx]
        hand = self._hand[set_idx]
        # Each full sweep decrements every eligible non-zero counter, so at
        # most counter_max+1 sweeps are needed.
        for _ in range((self.counter_max + 1) * self.assoc + 1):
            way = hand
            hand = (hand + 1) % self.assoc
            if way not in eligible:
                continue
            if counters[way]:
                counters[way] -= 1
                continue
            self._hand[set_idx] = hand
            return way
        raise RuntimeError("reuse-replacement sweep failed")  # pragma: no cover
