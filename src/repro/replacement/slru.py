"""Segmented LRU (SLRU) replacement [Karedla, Love, Wherry 1994].

The paper traces reuse locality back to disk caching: SLRU splits the
recency stack into a *probationary* segment (lines touched once) and a
*protected* segment (lines that have been re-referenced).  Victims always
come from the probationary segment; protected lines demoted by overflow get
a second chance in the probationary segment.  This is the conceptual
ancestor of NRR's reused/not-reused distinction, included both for the
related-work comparison and as an alternative tag policy for the reuse
cache.

``protected_frac`` bounds the protected segment (the classical fixed
boundary); the dueling variant of Gao & Wilkerson tunes it dynamically —
here it is a constructor parameter so ablations can sweep it.
"""

from __future__ import annotations

from typing import Sequence

from .base import ReplacementPolicy


class SLRUPolicy(ReplacementPolicy):
    """Segmented LRU with a fixed protected-segment bound."""

    name = "slru"

    def __init__(self, num_sets, assoc, rng=None, protected_frac: float = 0.5):
        super().__init__(num_sets, assoc, rng)
        if not 0 < protected_frac < 1:
            raise ValueError(f"protected_frac must be in (0, 1), got {protected_frac}")
        self.protected_limit = max(1, int(round(protected_frac * assoc)))
        # recency stamps plus a protected bit per way
        self._stamp = [[0] * assoc for _ in range(num_sets)]
        self._protected = [[False] * assoc for _ in range(num_sets)]
        self._clock = 0

    def _touch(self, set_idx, way):
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def on_fill(self, set_idx, way, thread=0):
        # new lines enter the probationary segment at its MRU end
        self._protected[set_idx][way] = False
        self._touch(set_idx, way)

    def on_hit(self, set_idx, way, thread=0):
        # a re-reference promotes into the protected segment
        protected = self._protected[set_idx]
        if not protected[way]:
            protected[way] = True
            self._enforce_limit(set_idx, keep=way)
        self._touch(set_idx, way)

    def _enforce_limit(self, set_idx, keep):
        """Demote the LRU protected line when the segment overflows."""
        protected = self._protected[set_idx]
        members = [w for w in range(self.assoc) if protected[w]]
        if len(members) <= self.protected_limit:
            return
        stamps = self._stamp[set_idx]
        victim = min((w for w in members if w != keep), key=lambda w: stamps[w])
        protected[victim] = False
        # demoted lines re-enter the probationary segment at its MRU end
        self._touch(set_idx, victim)

    def on_invalidate(self, set_idx, way):
        self._protected[set_idx][way] = False
        self._stamp[set_idx][way] = 0

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        stamps = self._stamp[set_idx]
        protected = self._protected[set_idx]
        probationary = [w for w in candidates if not protected[w]]
        pool = probationary if probationary else list(candidates)
        return min(pool, key=lambda w: stamps[w])

    # introspection for tests
    def is_protected(self, set_idx: int, way: int) -> bool:
        return self._protected[set_idx][way]
