"""Replacement-policy interface shared by all cache structures.

A policy instance manages the replacement metadata of one set-associative
array (``num_sets`` x ``assoc``).  The owning cache calls:

* :meth:`ReplacementPolicy.on_fill` when a line is installed in a way,
* :meth:`ReplacementPolicy.on_hit` when a resident line is re-referenced,
* :meth:`ReplacementPolicy.on_invalidate` when a way is freed, and
* :meth:`ReplacementPolicy.victim` to pick a way among the *eligible*
  candidates (the cache excludes ways it must not evict, e.g. lines present
  in private caches under NRR, before calling).

``thread`` identifies the requesting core for thread-aware policies
(TA-DRRIP); single-thread policies ignore it.

Policies must be deterministic given their ``random.Random`` instance so
experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence


class ReplacementPolicy:
    """Abstract base class for replacement policies."""

    #: short identifier used by the factory and in reports
    name = "base"

    def __init__(self, num_sets: int, assoc: int, rng: random.Random | None = None):
        if num_sets <= 0 or assoc <= 0:
            raise ValueError(
                f"num_sets and assoc must be positive, got {num_sets}x{assoc}"
            )
        self.num_sets = num_sets
        self.assoc = assoc
        self.rng = rng if rng is not None else random.Random(0)

    # -- notification hooks -------------------------------------------------
    def on_fill(self, set_idx: int, way: int, thread: int = 0) -> None:
        """A new line was installed in ``(set_idx, way)``."""
        raise NotImplementedError

    def on_hit(self, set_idx: int, way: int, thread: int = 0) -> None:
        """The line in ``(set_idx, way)`` was re-referenced."""
        raise NotImplementedError

    def on_invalidate(self, set_idx: int, way: int) -> None:
        """Default: nothing to do; most policies re-initialise state on fill."""

    def on_miss(self, set_idx: int, thread: int = 0) -> None:
        """Called on every miss in the set (used by set-dueling policies)."""

    # -- victim selection ----------------------------------------------------
    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        """Pick a way to evict among the eligible ``candidates``."""
        raise NotImplementedError

    # -- helpers --------------------------------------------------------------
    def _check_candidates(self, candidates: Sequence[int]) -> None:
        if not candidates:
            raise ValueError("victim() called with no eligible candidates")
