"""Least-recently-used replacement using per-way timestamps."""

from __future__ import annotations

from typing import Sequence

from .base import ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    """True LRU: the victim is the eligible way with the oldest access time.

    Timestamps come from a monotonically increasing per-policy counter, so
    ordering is exact (no aliasing) and ties are impossible.
    """

    name = "lru"

    def __init__(self, num_sets, assoc, rng=None):
        super().__init__(num_sets, assoc, rng)
        self._stamp = [[0] * assoc for _ in range(num_sets)]
        self._clock = 0

    def _touch(self, set_idx: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def on_fill(self, set_idx, way, thread=0):
        self._touch(set_idx, way)

    def fill_at_lru(self, set_idx: int, way: int) -> None:
        """Install a line at the *LRU* end of the stack (bimodal-style insert)."""
        stamps = self._stamp[set_idx]
        stamps[way] = min(stamps) - 1

    def on_hit(self, set_idx, way, thread=0):
        self._touch(set_idx, way)

    def on_invalidate(self, set_idx, way):
        self._stamp[set_idx][way] = 0

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        stamps = self._stamp[set_idx]
        return min(candidates, key=lambda w: stamps[w])

    # -- introspection used by insertion-policy subclasses and tests ---------
    def recency_order(self, set_idx: int) -> list:
        """Ways of ``set_idx`` ordered from LRU to MRU."""
        stamps = self._stamp[set_idx]
        return sorted(range(self.assoc), key=lambda w: stamps[w])
