"""Content-addressed on-disk cache of simulation results.

Each entry is one cell's :class:`~repro.hierarchy.system.RunResult`,
pickled under ``<cache_dir>/<kk>/<key>.pkl`` where ``key`` is the SHA-256
of the canonical JSON of (cell key material, code fingerprint, format
version) and ``kk`` its first two hex digits (fan-out keeps directories
small at paper scale).  Properties:

* **content-addressed** — two cells with identical configuration, workload
  recipe and simulator source share one entry; renaming an experiment or
  re-ordering a sweep never recomputes;
* **self-invalidating** — the code fingerprint changes whenever any
  simulation-relevant module changes, so edits dirty exactly the results
  they could affect;
* **crash-safe** — entries are written to a temporary file in the cache
  directory and published with :func:`os.replace`, so an interrupted sweep
  leaves only whole entries and resumes where it stopped;
* **tolerant** — any unreadable entry (corrupt, truncated, wrong pickle
  protocol) is treated as a miss and silently recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

from .cells import Cell
from .fingerprint import code_fingerprint

#: bump when the on-disk entry layout changes incompatibly
#: (2: entries carry the original cell wall time for cached_wall_s reporting)
CACHE_FORMAT = 2

#: environment variable naming the default cache directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: default directory (relative to the working directory) when neither a
#: path nor the environment variable is given
DEFAULT_CACHE_DIR = ".repro-cache"


def canonical_json(obj) -> str:
    """Deterministic JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)


def cell_key(cell: Cell, fingerprint: str | None = None) -> str:
    """The cache key of ``cell``: SHA-256 over cell + code fingerprint."""
    material = {
        "format": CACHE_FORMAT,
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
        "cell": cell.key_dict(),
    }
    return hashlib.sha256(canonical_json(material).encode()).hexdigest()


class ResultCache:
    """Directory-backed store of pickled cell results."""

    def __init__(self, path: str | os.PathLike | None = None):
        if path is None:
            path = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.path = Path(path)
        self.hits = 0
        self.misses = 0

    def _entry_path(self, key: str) -> Path:
        return self.path / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """The cached result for ``key``, or None (any failure = miss)."""
        entry = self.get_entry(key)
        return None if entry is None else entry["result"]

    def get_entry(self, key: str):
        """The full cache record ``{"result", "wall_s"}``, or None on miss.

        ``wall_s`` is the wall-clock cost of the run that originally
        produced the result — what a replay *saved* — so warm ``--stats-json``
        reports can attribute real time to cached cells instead of 0.0s.
        """
        entry = self._entry_path(key)
        try:
            with entry.open("rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        if payload.get("format") != CACHE_FORMAT or payload.get("key") != key:
            self.misses += 1
            return None
        self.hits += 1
        return {"result": payload["result"],
                "wall_s": payload.get("wall_s", 0.0)}

    def contains(self, key: str) -> bool:
        """Whether an entry for ``key`` exists (without deserialising it)."""
        return self._entry_path(key).is_file()

    def put(self, key: str, result, wall_s: float = 0.0) -> None:
        """Atomically publish ``result`` under ``key``.

        ``wall_s`` records how long the producing run took; it lives in the
        entry envelope (not in the result), so replayed results stay
        byte-identical to freshly computed ones.
        """
        entry = self._entry_path(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": CACHE_FORMAT, "key": key, "result": result,
                   "wall_s": float(wall_s)}
        fd, tmp = tempfile.mkstemp(dir=entry.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, entry)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.path.is_dir():
            return 0
        return sum(1 for _ in self.path.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.path.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
