"""The cell model: picklable, hashable units of experiment work.

A *cell* is one (system configuration, workload) simulation.  Workloads are
carried as :class:`WorkloadRef` — a declarative recipe (mix apps, seed,
scale, length) rebuilt deterministically inside whichever process executes
the cell — instead of materialised traces, so a cell pickles in a few
hundred bytes and its cache key depends only on the recipe, never on object
identity.  Ad-hoc in-memory workloads still fit through
:func:`as_workload_ref`, which wraps them with a content digest.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import asdict, dataclass, field

from ..hierarchy.config import SystemConfig
from ..workloads.mixes import build_workload
from ..workloads.parallel import generate_parallel_workload
from ..workloads.trace import Workload


@dataclass(frozen=True)
class WorkloadRef:
    """A deterministic recipe for (re)building one workload.

    ``kind`` selects the generator:

    * ``"mix"`` — :func:`repro.workloads.mixes.build_workload` over ``apps``;
    * ``"parallel"`` — :func:`repro.workloads.parallel.generate_parallel_workload`
      for application ``apps[0]``;
    * ``"custom"`` — a pre-built in-memory :class:`Workload` carried by
      value (``payload``), keyed by a content digest of its traces.
    """

    kind: str
    apps: tuple = ()
    n_refs: int = 0
    seed: int = 0
    scale: int = 32
    name: str | None = None
    #: custom kind only: the workload itself (pickled by value) — excluded
    #: from the cache key, which uses ``digest`` instead
    payload: Workload | None = field(default=None, compare=False)
    #: custom kind only: content hash of the payload's traces
    digest: str = ""

    # -- constructors ----------------------------------------------------------
    @staticmethod
    def mix(apps, n_refs: int, seed: int, scale: int = 32,
            name: str | None = None) -> "WorkloadRef":
        """A multiprogrammed mix (one app name per core)."""
        return WorkloadRef(kind="mix", apps=tuple(apps), n_refs=n_refs,
                           seed=seed, scale=scale, name=name)

    @staticmethod
    def parallel(app: str, n_refs: int, seed: int,
                 scale: int = 32) -> "WorkloadRef":
        """A PARSEC/SPLASH-2-style parallel application."""
        return WorkloadRef(kind="parallel", apps=(app,), n_refs=n_refs,
                           seed=seed, scale=scale, name=app)

    @staticmethod
    def custom(workload: Workload) -> "WorkloadRef":
        """Wrap an already-built workload (content-addressed by digest)."""
        h = hashlib.sha256()
        h.update(workload.name.encode())
        for trace in workload.traces:
            h.update(trace.name.encode())
            h.update(pickle.dumps((trace.gaps, trace.addrs, trace.writes),
                                  protocol=pickle.HIGHEST_PROTOCOL))
        return WorkloadRef(kind="custom", name=workload.name,
                           n_refs=workload.traces[0].n_refs if workload.traces else 0,
                           payload=workload, digest=h.hexdigest())

    # -- behaviour -------------------------------------------------------------
    def build(self) -> Workload:
        """Materialise the workload; identical output in every process."""
        if self.kind == "mix":
            return build_workload(list(self.apps), self.n_refs, seed=self.seed,
                                  scale=self.scale, name=self.name)
        if self.kind == "parallel":
            return generate_parallel_workload(self.apps[0], self.n_refs,
                                              seed=self.seed, scale=self.scale)
        if self.kind == "custom":
            if self.payload is None:
                raise ValueError("custom WorkloadRef lost its payload")
            return self.payload
        raise ValueError(f"unknown workload kind {self.kind!r}")

    def key_dict(self) -> dict:
        """The cache-key material: everything that determines the traces."""
        if self.kind == "custom":
            return {"kind": "custom", "digest": self.digest}
        return {
            "kind": self.kind,
            "apps": list(self.apps),
            "n_refs": self.n_refs,
            "seed": self.seed,
            "scale": self.scale,
            "name": self.name,
        }

    @property
    def label(self) -> str:
        """Short human name for progress lines."""
        return self.name or "+".join(self.apps)


def as_workload_ref(workload) -> WorkloadRef:
    """Coerce a :class:`Workload` or :class:`WorkloadRef` to a ref."""
    if isinstance(workload, WorkloadRef):
        return workload
    if isinstance(workload, Workload):
        return WorkloadRef.custom(workload)
    raise TypeError(f"expected Workload or WorkloadRef, got {type(workload)!r}")


@dataclass(frozen=True)
class Cell:
    """One independent simulation: configuration × workload × run options."""

    config: SystemConfig
    workload: WorkloadRef
    warmup_frac: float = 0.2
    record_generations: bool = False
    capture_llc_trace: bool = False

    def key_dict(self) -> dict:
        """Stable, JSON-serialisable cache-key material for this cell."""
        return {
            "config": asdict(self.config),
            "workload": self.workload.key_dict(),
            "warmup_frac": self.warmup_frac,
            "record_generations": self.record_generations,
            "capture_llc_trace": self.capture_llc_trace,
        }

    @property
    def label(self) -> str:
        """``<config>×<workload>`` for progress and error messages."""
        return f"{self.config.llc.label}×{self.workload.label}"
