"""Code fingerprint folded into every result-cache key.

A cached :class:`~repro.hierarchy.system.RunResult` is only valid while the
simulator that produced it is unchanged, so the cache key includes a
SHA-256 over the source of every module that can influence a simulation:
the whole ``repro`` package except the serving stack (``repro.service``),
the static-analysis tooling (``repro.devtools``) and the perf-baseline
tooling (``repro.perf``), none of which is importable from a simulation
path (enforced by the REP008 layering rule).  Keeping ``repro.perf`` out
matters doubly: its baselines embed this fingerprint, so excluding it
means editing the measurement tooling never masquerades as a simulator
change in ``repro perf compare``.

Over-approximating the dependency set (e.g. hashing ``repro.obs`` even
though observability is off by default) only costs spurious recomputation
after unrelated edits — never a stale result — which is the right side to
err on for a correctness-critical cache.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

#: top-level subpackages whose source cannot affect simulation results
EXCLUDED_SUBPACKAGES = ("service", "devtools", "perf")


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hex digest of the simulation-relevant ``repro`` source tree."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel.split("/", 1)[0] in EXCLUDED_SUBPACKAGES:
            continue
        digest.update(rel.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()
