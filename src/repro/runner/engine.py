"""The parallel experiment engine.

:class:`Runner` executes batches of :class:`~repro.runner.cells.Cell` with
three interchangeable strategies that produce byte-identical results:

* **in-process serial** (``parallel <= 1``) — exactly the code path the
  experiment drivers used before the runner existed;
* **process pool** (``parallel > 1``) — cells fan out over a
  ``ProcessPoolExecutor``; every worker rebuilds its workload from the
  cell's declarative :class:`~repro.runner.cells.WorkloadRef` with the same
  seeds, so scheduling order cannot influence any result, and the engine
  restores submission order before returning;
* **cache replay** — with a :class:`~repro.runner.cache.ResultCache`
  attached, clean cells load from disk and only dirty ones recompute,
  which is what makes interrupted or re-run sweeps resume instantly.

Observability: when given an enabled :class:`~repro.obs.Observability`
bundle the runner publishes ``repro_runner_cells_total{status=...}``
counters and a per-cell wall-latency histogram, and emits one progress
callback per finished cell (the ``repro run`` CLI renders these).

Resource accounting: every executed cell is measured *inside the process
that runs it* — wall seconds, CPU seconds, the process's peak RSS at cell
end and references simulated per second, plus a phase table when
``profile_phases`` is on.  Measurements live in :class:`RunnerStats`
(``stats.cells``) and in the result cache's entry envelope, never inside
the :class:`RunResult` itself, so the engine's byte-identical guarantee
(serial == parallel == cache replay) is untouched by instrumentation.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from ..hierarchy.system import RunResult, System
from ..obs import Observability
from ..obs.logging import get_logger
from ..obs.prof import PhaseTimer, peak_rss_kb
from .cache import ResultCache, cell_key
from .cells import Cell
from .fingerprint import code_fingerprint

log = get_logger(__name__)

#: histogram buckets for per-cell wall latency (seconds)
CELL_SECONDS_BOUNDS = (0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0,
                       120.0, 300.0, 600.0)


def execute_cell(cell: Cell) -> RunResult:
    """Run one cell to completion.

    Deterministic by construction: the workload is rebuilt from the cell's
    recipe and every random decision inside :class:`System` draws from
    generators seeded by the cell's own configuration.
    """
    return execute_cell_measured(cell)[0]


def execute_cell_measured(cell: Cell, profile_phases: bool = False) -> tuple:
    """Run one cell and account its resources (the worker entry point).

    Returns ``(result, resources)`` where ``resources`` holds ``wall_s``,
    ``cpu_s``, ``peak_rss_kb`` (the executing process's high-water RSS at
    cell end), ``refs`` / ``refs_per_s``, and — when ``profile_phases`` is
    set — a ``phases`` table from a per-cell
    :class:`~repro.obs.prof.PhaseTimer` wrapping workload construction and
    simulation.  The result object itself is never touched by the
    measurement, so instrumented and bare runs stay byte-identical.
    """
    prof = PhaseTimer(enabled=profile_phases)
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    with prof.phase("cell"):
        with prof.phase("build_workload"):
            workload = cell.workload.build()
        system = System(
            cell.config,
            workload,
            record_generations=cell.record_generations,
            capture_llc_trace=cell.capture_llc_trace,
        )
        with prof.phase("simulate"):
            result = system.run(warmup_frac=cell.warmup_frac)
    if cell.capture_llc_trace:
        result.extra["llc_trace"] = system.llc_trace
    wall_s = time.perf_counter() - wall_start
    refs = sum(trace.n_refs for trace in workload.traces)
    resources = {
        "wall_s": wall_s,
        "cpu_s": time.process_time() - cpu_start,
        "peak_rss_kb": peak_rss_kb(),
        "refs": refs,
        "refs_per_s": refs / wall_s if wall_s > 0 else 0.0,
    }
    if profile_phases:
        resources["phases"] = prof.table()
    return result, resources


@dataclass
class RunnerStats:
    """Cumulative outcome counts and resources over a runner's lifetime."""

    run: int = 0
    cached: int = 0
    failed: int = 0
    seconds: float = 0.0
    #: summed CPU seconds of executed cells (measured in their process)
    cpu_seconds: float = 0.0
    #: summed original wall seconds of cells served from the cache — the
    #: compute a warm replay *saved* (0.0s-per-cell reports were the old bug)
    cached_wall_s: float = 0.0
    #: highest per-process peak RSS observed across executed cells (KiB)
    peak_rss_kb: int = 0
    #: memory references simulated by executed (non-cached) cells
    refs: int = 0
    #: per-cell account records, in completion order: label, status,
    #: wall/cpu/rss/refs for executed cells, cached_wall_s for replays
    cells: list = field(default_factory=list)
    #: per-status cell counts of the most recent ``run_cells`` batch
    last_batch: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Cells that reached a terminal state (run, cached or failed)."""
        return self.run + self.cached + self.failed

    @property
    def hit_rate(self) -> float:
        """Fraction of completed cells served from the cache."""
        done = self.run + self.cached
        return self.cached / done if done else 0.0

    @property
    def refs_per_s(self) -> float:
        """Aggregate simulation throughput of the executed cells."""
        return self.refs / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-safe view (the ``--stats-json`` payload body)."""
        return {
            "run": self.run,
            "cached": self.cached,
            "failed": self.failed,
            "total": self.total,
            "hit_rate": self.hit_rate,
            "compute_seconds": self.seconds,
            "cpu_seconds": self.cpu_seconds,
            "cached_wall_s": self.cached_wall_s,
            "peak_rss_kb": self.peak_rss_kb,
            "refs": self.refs,
            "refs_per_s": self.refs_per_s,
            "cells": list(self.cells),
        }


def _env_parallel() -> int:
    raw = os.environ.get("REPRO_PARALLEL")
    if not raw:
        return 0
    value = int(raw)
    if value < 0:
        raise ValueError(f"REPRO_PARALLEL must be >= 0, got {raw!r}")
    return value


class Runner:
    """Executes cells serially or in parallel, memoizing through a cache."""

    def __init__(
        self,
        parallel: int = 0,
        cache: ResultCache | None = None,
        force: bool = False,
        obs: Observability | None = None,
        progress=None,
        profile_phases: bool = False,
    ):
        self.parallel = parallel
        self.cache = cache
        self.force = force
        self.obs = obs if obs is not None else Observability.disabled()
        self.progress = progress
        #: measure per-cell phase timings (build_workload / simulate) in
        #: whichever process executes the cell; results are unaffected
        self.profile_phases = profile_phases
        self.stats = RunnerStats()
        # one fingerprint per runner: cells of a batch must share a key basis
        self._fingerprint = code_fingerprint() if cache is not None else None

    @classmethod
    def default(cls) -> "Runner":
        """The environment-driven runner every driver falls back to.

        Serial and uncached unless ``REPRO_PARALLEL`` / ``REPRO_CACHE_DIR``
        say otherwise, so library behaviour is unchanged for callers that
        never heard of the runner.
        """
        cache_dir = os.environ.get("REPRO_CACHE_DIR")
        return cls(
            parallel=_env_parallel(),
            cache=ResultCache(cache_dir) if cache_dir else None,
        )

    # -- single cell -----------------------------------------------------------
    def run_cell(self, cell: Cell) -> RunResult:
        """Execute (or replay) one cell."""
        return self.run_cells([cell])[0]

    # -- batch ----------------------------------------------------------------
    def run_cells(self, cells) -> list:
        """Execute a batch; results come back in submission order.

        Cached cells are replayed from disk, the rest run serially or on
        the process pool.  Any worker failure is re-raised with the cell's
        label attached after the batch's already-running cells are drained.
        """
        cells = list(cells)
        results = [None] * len(cells)
        pending = []  # (index, cell, key)
        batch = {"run": 0, "cached": 0, "failed": 0}

        for i, cell in enumerate(cells):
            key = None
            if self.cache is not None and not self.force:
                key = cell_key(cell, self._fingerprint)
                hit = self.cache.get_entry(key)
                if hit is not None:
                    results[i] = hit["result"]
                    batch["cached"] += 1
                    self._account("cached", cell, 0.0, len(cells), batch,
                                  {"cached_wall_s": hit["wall_s"]})
                    continue
            elif self.cache is not None:
                key = cell_key(cell, self._fingerprint)
            pending.append((i, cell, key))

        if pending:
            if self.parallel and self.parallel > 1 and len(pending) > 1:
                self._run_pool(pending, results, batch, len(cells))
            else:
                self._run_serial(pending, results, batch, len(cells))

        self.stats.last_batch = batch
        return results

    # -- execution strategies ----------------------------------------------------
    def _run_serial(self, pending, results, batch, total) -> None:
        for i, cell, key in pending:
            try:
                result, resources = execute_cell_measured(
                    cell, self.profile_phases
                )
            except Exception as exc:
                self._fail(cell, batch, exc)
            self._commit(i, cell, key, result, results, batch, resources,
                         total)

    def _run_pool(self, pending, results, batch, total) -> None:
        workers = min(self.parallel, len(pending))
        log.info("fanning %d cell(s) out over %d worker process(es)",
                 len(pending), workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for i, cell, key in pending:
                future = pool.submit(
                    execute_cell_measured, cell, self.profile_phases
                )
                futures[future] = (i, cell, key)
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding,
                                         return_when=FIRST_COMPLETED)
                for future in done:
                    i, cell, key = futures[future]
                    exc = future.exception()
                    if exc is not None:
                        for other in outstanding:
                            other.cancel()
                        self._fail(cell, batch, exc)
                    result, resources = future.result()
                    self._commit(i, cell, key, result, results, batch,
                                 resources, total)

    # -- bookkeeping -------------------------------------------------------------
    def _commit(self, i, cell, key, result, results, batch, resources, total):
        results[i] = result
        if key is not None:
            self.cache.put(key, result, wall_s=resources["wall_s"])
        batch["run"] += 1
        self._account("run", cell, resources["wall_s"], total, batch,
                      resources)

    def _fail(self, cell: Cell, batch, exc: Exception):
        batch["failed"] += 1
        self.stats.failed += 1
        registry = self.obs.registry
        if registry.enabled:
            registry.counter(
                "repro_runner_cells_total",
                help="cells by terminal status", status="failed",
            ).inc()
        log.error("cell %s failed: %s", cell.label, exc)
        raise RuntimeError(f"cell {cell.label} failed") from exc

    def _account(self, status, cell, seconds, total, batch, resources=None):
        record = {"label": cell.label, "status": status}
        if status == "run":
            self.stats.run += 1
            self.stats.seconds += seconds
            if resources is not None:
                self.stats.cpu_seconds += resources["cpu_s"]
                self.stats.peak_rss_kb = max(
                    self.stats.peak_rss_kb, resources["peak_rss_kb"]
                )
                self.stats.refs += resources["refs"]
                record.update(resources)
        else:
            self.stats.cached += 1
            if resources is not None:
                self.stats.cached_wall_s += resources["cached_wall_s"]
                record.update(resources)
        self.stats.cells.append(record)
        registry = self.obs.registry
        if registry.enabled:
            registry.counter(
                "repro_runner_cells_total",
                help="cells by terminal status", status=status,
            ).inc()
            if status == "run":
                registry.histogram(
                    "repro_runner_cell_seconds",
                    help="wall-clock latency of executed cells",
                    bounds=CELL_SECONDS_BOUNDS,
                ).observe(seconds)
        done = batch["run"] + batch["cached"] + batch["failed"]
        log.debug("cell %d/%d %s (%s, %.2fs)", done, total, cell.label,
                  status, seconds)
        if self.progress is not None:
            self.progress(done, total, cell, status, seconds)
