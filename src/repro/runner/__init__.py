"""repro.runner — parallel experiment execution with result memoization.

Every figure/table of the paper reduces over many independent *cells*: one
(system configuration, workload) simulation, fully determined by its seeds.
This package is the single place such cells are executed:

* :mod:`repro.runner.cells` — the declarative cell model.  A
  :class:`WorkloadRef` describes how to (re)build a workload
  deterministically in any process; a :class:`Cell` pairs it with a
  :class:`~repro.hierarchy.config.SystemConfig` and the run options.  Both
  are small, picklable and hashable, so cells travel cheaply to worker
  processes and key an on-disk cache.
* :mod:`repro.runner.fingerprint` — a content hash of the simulator's own
  source code, folded into every cache key so edits to the model invalidate
  stale results automatically.
* :mod:`repro.runner.cache` — :class:`ResultCache`, a content-addressed
  on-disk store of :class:`~repro.hierarchy.system.RunResult` pickles keyed
  by SHA-256 of (cell, code fingerprint).
* :mod:`repro.runner.engine` — :class:`Runner`, which fans cells out over a
  ``ProcessPoolExecutor``, restores submission order, publishes obs
  counters (cells run/cached/failed, per-cell latency) and guarantees the
  combined output is byte-identical to a serial in-process run.

Direct ``multiprocessing`` / ``concurrent.futures`` use anywhere else in
the package is a lint error (REP010): parallelism stays centralized here so
it remains deterministic and seedable.  See ``docs/runner.md``.
"""

from __future__ import annotations

from .cache import ResultCache, cell_key
from .cells import Cell, WorkloadRef, as_workload_ref
from .engine import Runner, RunnerStats, execute_cell, execute_cell_measured
from .fingerprint import code_fingerprint

__all__ = [
    "Cell",
    "WorkloadRef",
    "as_workload_ref",
    "ResultCache",
    "cell_key",
    "Runner",
    "RunnerStats",
    "execute_cell",
    "execute_cell_measured",
    "code_fingerprint",
]
