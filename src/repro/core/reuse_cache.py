"""The reuse cache: a decoupled tag/data SLLC with selective allocation.

This is the paper's contribution (Section 3).  The tag array is sized like a
conventional cache of ``x`` MB ("x MBeq") while the data array holds far
fewer entries; the two are linked by forward pointers (tag entry → data way)
and reverse pointers (data entry → tag set/way).

Allocation policy (reuse locality):

* **tag miss** → allocate a tag-only entry (state ``TO``); the line is
  fetched from memory straight into the requesting core's private caches and
  *no* data-array entry is allocated;
* **hit on a TO tag** → *reuse detected*: the line is fetched again (from
  memory, or from a peer private cache if the directory shows one) and this
  time a data-array entry is allocated (state ``S`` or ``M``);
* **hit on a tag with data** → served by the data array.

Replacement is specialised per array: the tag array uses NRR (one bit per
line) and never victimises lines resident in private caches unless forced,
preserving directory inclusion; the data array uses recency — NRU for
set-associative organisations and Clock for the fully associative one
(``data_assoc="full"``), exactly the paper's low-cost choices.  Evicting a
data entry (``DataRepl``) demotes its tag to ``TO`` via the reverse pointer;
evicting a tag with data frees both.

States are stored as small ints for speed; :meth:`ReuseCache.state_of`
exposes them as :class:`repro.coherence.State` for tests and tools.
"""

from __future__ import annotations

import random

from ..cache.llc_base import BaseLLC, LLCAccess
from ..cache.set_assoc import TagStore
from ..coherence.directory import Directory
from ..coherence.states import State
from ..obs.tracing import DATA_REPL, REUSE_DETECTED, TAG_ONLY_ALLOC, TAG_REPL
from ..replacement import make_policy
from ..utils import require_power_of_two

# integer state encoding for the hot path
_INV, _TO, _S, _M = 0, 1, 2, 3
_STATE_ENUM = {_INV: State.I, _TO: State.TO, _S: State.S, _M: State.M}


class ReuseCache(BaseLLC):
    """Decoupled tag/data SLLC storing only reused lines in the data array."""

    kind = "reuse"

    def __init__(
        self,
        tag_lines: int,
        tag_assoc: int,
        data_lines: int,
        data_assoc="full",
        num_cores: int = 8,
        tag_policy: str = "nrr",
        data_policy: str | None = None,
        reuse_threshold: int = 1,
        rng: random.Random | None = None,
    ):
        super().__init__(num_cores, rng)
        require_power_of_two(tag_lines, "tag_lines")
        require_power_of_two(data_lines, "data_lines")
        if data_lines > tag_lines:
            raise ValueError(
                f"data array ({data_lines}) cannot exceed tag array ({tag_lines})"
            )
        if tag_lines % tag_assoc:
            raise ValueError(f"{tag_lines} tags not divisible into {tag_assoc} ways")

        self.tag_lines = tag_lines
        self.tag_assoc = tag_assoc
        self.data_lines = data_lines
        if data_assoc == "full":
            self.data_assoc = data_lines
        else:
            self.data_assoc = int(data_assoc)
        if data_lines % self.data_assoc:
            raise ValueError(
                f"{data_lines} data entries not divisible into {self.data_assoc} ways"
            )
        self.data_sets = data_lines // self.data_assoc
        tag_sets = tag_lines // tag_assoc
        if self.data_sets > tag_sets:
            raise ValueError(
                "data array cannot have more sets than the tag array "
                f"({self.data_sets} > {tag_sets}); raise data associativity"
            )
        self._dmask = self.data_sets - 1

        if reuse_threshold < 0:
            raise ValueError(f"reuse_threshold must be >= 0, got {reuse_threshold}")
        #: number of *reuses* (tag hits in TO) required before the data
        #: array accepts the line.  1 = the paper's design (second access);
        #: 0 = allocate on first touch (a non-selective decoupled cache);
        #: k>1 = stricter selectivity (needs a k-th re-reference).
        self.reuse_threshold = reuse_threshold

        self.tags = TagStore(tag_sets, tag_assoc)
        self.directory = Directory(tag_sets, tag_assoc, num_cores)
        self._state = [[_INV] * tag_assoc for _ in range(tag_sets)]
        self._fwd = [[-1] * tag_assoc for _ in range(tag_sets)]  # data way or -1
        # per-tag count of observed reuses while tag-only (saturating)
        self._to_count = [[0] * tag_assoc for _ in range(tag_sets)]

        da = self.data_assoc
        # reverse pointer: (tag_set, tag_way) or None
        self._rev = [[None] * da for _ in range(self.data_sets)]
        self._d_addr = [[None] * da for _ in range(self.data_sets)]
        self._d_dirty = [[False] * da for _ in range(self.data_sets)]

        self.tag_policy_name = tag_policy
        self.tag_repl = make_policy(tag_policy, tag_sets, tag_assoc, rng=self.rng)
        if data_policy is None:
            data_policy = "clock" if data_assoc == "full" else "nru"
        self.data_policy_name = data_policy
        self.data_repl = make_policy(data_policy, self.data_sets, da, rng=self.rng)

        # reuse-cache-specific counters
        self.to_hits = 0  # reuse detections (tag hit, no data)
        self.reuse_reloads = 0  # TO hits that had to re-fetch from memory
        self.peer_transfers = 0

    # -- demand access -------------------------------------------------------------
    def access(self, addr: int, core: int, is_write: bool, now: int) -> LLCAccess:
        """Demand GETS/GETX; dispatches on the tag's stable state."""
        self.accesses += 1
        self.core_accesses[core] += 1
        set_idx, way = self.tags.lookup(addr)
        if way is None:
            return self._tag_miss(addr, set_idx, core, now)
        state = self._state[set_idx][way]
        if state == _TO:
            return self._reuse_hit(addr, set_idx, way, core, is_write, now)
        return self._data_hit(addr, set_idx, way, core, is_write, now)

    def _tag_miss(self, addr, set_idx, core, now) -> LLCAccess:
        """GETS/GETX on an absent line: allocate tag only (I → TO)."""
        self.tag_misses += 1
        self.core_dram_fetches[core] += 1
        self.tag_repl.on_miss(set_idx, core)
        writebacks = ()
        inclusion_invals = ()
        way = self.tags.free_way(set_idx)
        if way is None:
            way, writebacks, inclusion_invals = self._evict_tag(set_idx, now)
        self.tags.install(set_idx, way, addr)
        self._state[set_idx][way] = _TO
        self._fwd[set_idx][way] = -1
        self._to_count[set_idx][way] = 0
        self.directory.set_only(set_idx, way, core)
        self.tag_repl.on_fill(set_idx, way, core)
        self.tag_fills += 1
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                TAG_ONLY_ALLOC, ts=now, pid=self.trace_pid, tid=core,
                args={"addr": addr},
            )
        if self.reuse_threshold == 0:
            # degenerate non-selective mode: allocate data on first touch
            writebacks = writebacks + tuple(
                self._allocate_data(addr, set_idx, way, now)
            )
            self._state[set_idx][way] = _S
        return LLCAccess(
            "dram",
            dram_reads=1,
            writebacks=writebacks,
            inclusion_invals=inclusion_invals,
        )

    def _reuse_hit(self, addr, set_idx, way, core, is_write, now) -> LLCAccess:
        """Hit on a TO tag: reuse detected, allocate a data entry once the
        line has shown ``reuse_threshold`` reuses."""
        self.to_hits += 1
        self.tag_repl.on_hit(set_idx, way, core)
        counts = self._to_count[set_idx]
        if counts[way] < 63:  # saturate well above any sensible threshold
            counts[way] += 1
        directory = self.directory
        peers = directory.others(set_idx, way, core)
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                REUSE_DETECTED, ts=now, pid=self.trace_pid, tid=core,
                args={
                    "addr": addr,
                    "source": "peer" if peers else "dram",
                    "promoted": counts[way] >= self.reuse_threshold,
                },
            )
        if counts[way] < self.reuse_threshold:
            # not yet reused enough: serve the private caches, stay tag-only
            if peers:
                self.peer_transfers += 1
                source, dram_reads = "peer", 0
            else:
                self.reuse_reloads += 1
                self.core_dram_fetches[core] += 1
                source, dram_reads = "dram", 1
            if is_write:
                invals = tuple(peers)
                directory.set_only(set_idx, way, core)
            else:
                invals = ()
                directory.add(set_idx, way, core)
            return LLCAccess(
                source, dram_reads=dram_reads, coherence_invals=invals
            )
        if peers:
            # A private cache still holds the line: cache-to-cache transfer,
            # no memory access needed.
            self.peer_transfers += 1
            source, dram_reads = "peer", 0
        else:
            # The downside of selective allocation: the line is read from
            # main memory a second time (paper Section 5.3).
            self.reuse_reloads += 1
            self.core_dram_fetches[core] += 1
            source, dram_reads = "dram", 1

        writebacks = self._allocate_data(addr, set_idx, way, now)

        if is_write:
            self._state[set_idx][way] = _M
            invals = tuple(peers)
            directory.set_only(set_idx, way, core)
        else:
            self._state[set_idx][way] = _S
            invals = ()
            directory.add(set_idx, way, core)
        return LLCAccess(
            source,
            dram_reads=dram_reads,
            writebacks=writebacks,
            coherence_invals=invals,
        )

    def _data_hit(self, addr, set_idx, way, core, is_write, now) -> LLCAccess:
        """Hit on a tag in the tag+data group: served by the data array."""
        self.data_hits += 1
        self.tag_repl.on_hit(set_idx, way, core)
        dset = addr & self._dmask
        self.data_repl.on_hit(dset, self._fwd[set_idx][way], core)
        self.recorder.on_hit(addr, now)
        directory = self.directory
        if is_write:
            invals = tuple(directory.others(set_idx, way, core))
            directory.set_only(set_idx, way, core)
            self._state[set_idx][way] = _M
            return LLCAccess("llc", coherence_invals=invals)
        directory.add(set_idx, way, core)
        return LLCAccess("llc")

    # -- data array management ---------------------------------------------------------
    def _allocate_data(self, addr, tag_set, tag_way, now):
        """Install ``addr`` in the data array; returns writeback addresses."""
        dset = addr & self._dmask
        rev = self._rev[dset]
        writebacks = ()
        dway = None
        for w in range(self.data_assoc):
            if rev[w] is None:
                dway = w
                break
        if dway is None:
            candidates = list(range(self.data_assoc))
            dway = self.data_repl.victim(dset, candidates)
            writebacks = self._evict_data(dset, dway, now)
        rev[dway] = (tag_set, tag_way)
        self._d_addr[dset][dway] = addr
        self._d_dirty[dset][dway] = False
        self._fwd[tag_set][tag_way] = dway
        self.data_repl.on_fill(dset, dway)
        self.data_fills += 1
        self.recorder.on_fill(addr, now)
        return writebacks

    def _evict_data(self, dset, dway, now):
        """DataRepl: free a data entry, demoting its tag to TO.

        Returns the writeback addresses (the victim, when dirty)."""
        tag_set, tag_way = self._rev[dset][dway]
        victim_addr = self._d_addr[dset][dway]
        self.recorder.on_evict(victim_addr, now)
        writebacks = (victim_addr,) if self._d_dirty[dset][dway] else ()
        self._rev[dset][dway] = None
        self._d_addr[dset][dway] = None
        self._d_dirty[dset][dway] = False
        self.data_repl.on_invalidate(dset, dway)
        # S/M --DataRepl--> TO: the tag keeps the reuse history.  The reuse
        # count restarts, so with the paper's threshold of 1 the next hit
        # reloads the line (as Section 3 specifies).
        self._state[tag_set][tag_way] = _TO
        self._fwd[tag_set][tag_way] = -1
        self._to_count[tag_set][tag_way] = 0
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                DATA_REPL, ts=now, pid=self.trace_pid,
                args={"addr": victim_addr, "dirty": bool(writebacks)},
            )
        return writebacks

    def _evict_tag(self, set_idx, now):
        """TagRepl: free a tag entry (and its data entry, if any)."""
        directory = self.directory
        candidates = self.tags.valid_ways(set_idx)
        # Protect directory inclusion: prefer victims absent from the
        # private caches (the paper's NRR rule).  Forced evictions of
        # private-resident lines back-invalidate.
        unshared = [w for w in candidates if not directory.in_private_caches(set_idx, w)]
        way = self.tag_repl.victim(set_idx, unshared if unshared else candidates)
        victim_addr = self.tags.evict(set_idx, way)
        writebacks = ()
        had_data = self._fwd[set_idx][way] >= 0
        if had_data:
            dset = victim_addr & self._dmask
            writebacks = self._evict_data(dset, self._fwd[set_idx][way], now)
        sharers = directory.sharers(set_idx, way)
        inclusion_invals = tuple((c, victim_addr) for c in sharers)
        directory.clear(set_idx, way)
        self._state[set_idx][way] = _INV
        self._fwd[set_idx][way] = -1
        self._to_count[set_idx][way] = 0
        self.tag_repl.on_invalidate(set_idx, way)
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                TAG_REPL, ts=now, pid=self.trace_pid,
                args={"addr": victim_addr, "had_data": had_data},
            )
        return way, writebacks, inclusion_invals

    # -- prefetch ----------------------------------------------------------------------
    def prefetch(self, addr: int, core: int, now: int) -> LLCAccess:
        """Prefetch GETS: the reuse cache is prefetch-aware *by construction*.

        Following the paper's Section 6 observation, prefetched lines get a
        priority as low as non-reused data: a prefetched miss allocates a
        tag-only entry whose NRR bit stays set, and a prefetch that touches
        a TO tag is *not* taken as a reuse hint — the data array is reserved
        for demand-detected reuse.
        """
        self.prefetches += 1
        set_idx, way = self.tags.lookup(addr)
        if way is None:
            writebacks = ()
            inclusion_invals = ()
            free = self.tags.free_way(set_idx)
            if free is None:
                free, writebacks, inclusion_invals = self._evict_tag(set_idx, now)
            self.tags.install(set_idx, free, addr)
            self._state[set_idx][free] = _TO
            self._fwd[set_idx][free] = -1
            self._to_count[set_idx][free] = 0
            self.directory.set_only(set_idx, free, core)
            self.tag_repl.on_fill(set_idx, free, core)  # NRR bit set: low prio
            self.tag_fills += 1
            return LLCAccess(
                "dram",
                dram_reads=1,
                writebacks=writebacks,
                inclusion_invals=inclusion_invals,
            )
        state = self._state[set_idx][way]
        self.directory.add(set_idx, way, core)
        if state == _TO:
            # no reuse detection, no NRR promotion: data comes from memory
            # (or a peer) straight into the private cache
            if self.directory.others(set_idx, way, core):
                return LLCAccess("peer")
            return LLCAccess("dram", dram_reads=1)
        # tag+data: serve from the data array without promoting
        return LLCAccess("llc")

    # -- coherence upcalls -----------------------------------------------------------
    def upgrade(self, addr: int, core: int) -> tuple:
        """UPG: a core writes a private clean copy; invalidate other sharers.

        In ``TO`` the writer already holds the data, so no data-array entry
        is allocated; the tag records the reuse (NRR bit cleared) and keeps
        state ``TO`` — memory may now be stale, which ``TO`` permits.
        """
        set_idx, way = self.tags.lookup(addr)
        if way is None:
            raise KeyError(f"UPG for line {addr:#x} absent from the tag array")
        self.upgrades += 1
        self.tag_repl.on_hit(set_idx, way, core)
        state = self._state[set_idx][way]
        if state == _S:
            self._state[set_idx][way] = _M
        invals = tuple(self.directory.others(set_idx, way, core))
        self.directory.set_only(set_idx, way, core)
        return invals

    def notify_private_eviction(self, addr: int, core: int, dirty: bool):
        """PUTS/PUTX: clear the presence bit; route dirty data appropriately.

        A PUTX on a tag+data line is absorbed by the data array (S → M); on a
        tag-only line the writeback must go to main memory.  Returns the
        line addresses to write back to DRAM.
        """
        set_idx, way = self.tags.lookup(addr)
        if way is None:
            raise KeyError(f"PUT for line {addr:#x} absent from the tag array")
        self.directory.remove(set_idx, way, core)
        if not dirty:
            return ()
        state = self._state[set_idx][way]
        if state == _TO:
            return (addr,)  # writeback forwarded to main memory
        dset = addr & self._dmask
        self._d_dirty[dset][self._fwd[set_idx][way]] = True
        self._state[set_idx][way] = _M
        return ()

    # -- introspection -----------------------------------------------------------------
    def state_of(self, addr: int) -> State:
        """Coherence state of ``addr`` (State.I when the tag is absent)."""
        set_idx, way = self.tags.lookup(addr)
        if way is None:
            return State.I
        return _STATE_ENUM[self._state[set_idx][way]]

    def resident_data_lines(self):
        """Line addresses currently held in the data array."""
        for dset in range(self.data_sets):
            for addr in self._d_addr[dset]:
                if addr is not None:
                    yield addr

    def data_occupancy(self) -> int:
        """Number of valid data-array entries."""
        return sum(1 for _ in self.resident_data_lines())

    def fraction_not_entered(self) -> float:
        """Fraction of tag fills that never allocated a data entry (Table 6)."""
        if self.tag_fills == 0:
            return 0.0
        return 1.0 - self.data_fills / self.tag_fills

    def check_pointer_consistency(self) -> bool:
        """Invariant (tests): fwd/rev pointers form a bijection and states
        agree with data residency."""
        seen = set()
        for tset in range(self.tags.num_sets):
            for tway in range(self.tag_assoc):
                addr = self.tags.addrs[tset][tway]
                state = self._state[tset][tway]
                fwd = self._fwd[tset][tway]
                if addr is None:
                    if state != _INV or fwd != -1:
                        return False
                    continue
                if state == _INV:
                    return False
                if state == _TO:
                    if fwd != -1:
                        return False
                    continue
                # S/M: must point at a data entry that points back
                dset = addr & self._dmask
                if not (0 <= fwd < self.data_assoc):
                    return False
                if self._rev[dset][fwd] != (tset, tway):
                    return False
                if self._d_addr[dset][fwd] != addr:
                    return False
                seen.add((dset, fwd))
        for dset in range(self.data_sets):
            for dway in range(self.data_assoc):
                if (self._rev[dset][dway] is None) != (self._d_addr[dset][dway] is None):
                    return False
                if self._rev[dset][dway] is not None and (dset, dway) not in seen:
                    return False
        return True

    def stats(self) -> dict:
        """Counters plus the reuse-cache-specific ones (Table 6 etc.)."""
        base = super().stats()
        base.update(
            {
                "to_hits": self.to_hits,
                "reuse_reloads": self.reuse_reloads,
                "peer_transfers": self.peer_transfers,
                "fraction_not_entered": self.fraction_not_entered(),
            }
        )
        return base
