"""The paper's contribution: the reuse cache and its cost/latency models."""

from .cost_model import (
    CostBreakdown,
    conventional_cost,
    figure8_storage_kbits,
    reuse_cache_cost,
    table2,
)
from .latency_model import LatencyComparison, SRAMLatencyModel, table3
from .reuse_cache import ReuseCache

__all__ = [
    "ReuseCache",
    "CostBreakdown",
    "conventional_cost",
    "reuse_cache_cost",
    "table2",
    "figure8_storage_kbits",
    "SRAMLatencyModel",
    "LatencyComparison",
    "table3",
]
