"""Exact hardware-cost accounting (paper Table 2 and Figure 8 labels).

The paper counts the storage bits of conventional and reuse caches for an
eight-core CMP with 40-bit physical addresses and 64 B lines:

* a conventional 16-way cache tag entry holds a 21-bit tag, 4-bit coherence
  state, 8-bit full-map presence vector and 1 replacement bit (NRU), and
  each data entry holds 512 data bits;
* a reuse-cache tag entry adds one coherence-state bit (the protocol
  roughly doubles its stable states) and a forward pointer; each data entry
  adds a valid bit, a replacement bit (NRU/Clock) and a reverse pointer.

Pointer widths follow Section 3.3: the forward pointer selects the data-array
way; the reverse pointer selects the tag way plus the tag-index bits not
implied by the data index.  This module reproduces Table 2 exactly and the
Kbit labels of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils import ilog2

#: paper assumptions
PHYS_ADDR_BITS = 40
LINE_BYTES = 64
LINE_BITS = LINE_BYTES * 8  # 512
NUM_CORES = 8
CONV_STATE_BITS = 4
PRESENCE_BITS = NUM_CORES
REPL_BITS = 1  # NRU / NRR / Clock: one bit per line
#: the TO-MSI/TO-MOSI protocol roughly doubles the stable states: +1 bit
EXTRA_STATE_BITS = 1


def lines_of_mb(size_mb: float) -> int:
    """Number of 64 B lines in ``size_mb`` megabytes."""
    result = int(round(size_mb * (1 << 20) / LINE_BYTES))
    if result <= 0:
        raise ValueError(f"non-positive capacity {size_mb} MB")
    return result


def tag_bits(num_sets: int) -> int:
    """Address tag width: physical address minus set-index and offset bits."""
    return PHYS_ADDR_BITS - ilog2(num_sets) - ilog2(LINE_BYTES)


@dataclass(frozen=True)
class CostBreakdown:
    """Bit counts of one cache organisation (one column of Table 2)."""

    label: str
    tag_entry_bits: int
    data_entry_bits: int
    tag_entries: int
    data_entries: int
    fields: dict

    @property
    def tag_array_kbits(self) -> float:
        """Tag-array storage in Kbits."""
        return self.tag_entry_bits * self.tag_entries / 1024

    @property
    def data_array_kbits(self) -> float:
        """Data-array storage in Kbits."""
        return self.data_entry_bits * self.data_entries / 1024

    @property
    def total_kbits(self) -> float:
        """Total storage in Kbits (the Table 2 bottom line)."""
        return self.tag_array_kbits + self.data_array_kbits

    def reduction_vs(self, other: "CostBreakdown") -> float:
        """Fractional storage reduction relative to ``other``."""
        return 1.0 - self.total_kbits / other.total_kbits


def conventional_cost(size_mb: float, assoc: int = 16, label: str | None = None) -> CostBreakdown:
    """Bits of a conventional cache (Table 2, 'Conv. 8M-16way' column)."""
    entries = lines_of_mb(size_mb)
    num_sets = entries // assoc
    fields = {
        "tag": tag_bits(num_sets),
        "coherence": CONV_STATE_BITS,
        "full_map_vector": PRESENCE_BITS,
        "replacement": REPL_BITS,
    }
    tag_entry = sum(fields.values())
    return CostBreakdown(
        label or f"conv-{size_mb:g}MB",
        tag_entry_bits=tag_entry,
        data_entry_bits=LINE_BITS,
        tag_entries=entries,
        data_entries=entries,
        fields=fields,
    )


def reuse_cache_cost(
    tag_mbeq: float,
    data_mb: float,
    tag_assoc: int = 16,
    data_assoc="full",
    label: str | None = None,
) -> CostBreakdown:
    """Bits of a reuse cache RC-``tag_mbeq``/``data_mb`` (Table 2 columns).

    ``data_assoc`` is ``"full"`` or a way count.  Pointer widths follow
    Section 3.3: with a fully associative data array the forward pointer
    addresses any of the data entries and the reverse pointer any tag entry;
    in the set-associative organisation the forward pointer is the data way
    and the reverse pointer is the tag way plus the excess tag-index bits.
    """
    tag_entries = lines_of_mb(tag_mbeq)
    data_entries = lines_of_mb(data_mb)
    tag_sets = tag_entries // tag_assoc
    if data_assoc == "full":
        data_ways = data_entries
        data_sets = 1
    else:
        data_ways = int(data_assoc)
        data_sets = data_entries // data_ways

    fwd_ptr = ilog2(data_ways)
    rev_ptr = ilog2(tag_assoc) + (ilog2(tag_sets) - ilog2(data_sets))

    tag_fields = {
        "tag": tag_bits(tag_sets),
        "coherence": CONV_STATE_BITS + EXTRA_STATE_BITS,
        "full_map_vector": PRESENCE_BITS,
        "replacement": REPL_BITS,
        "fwd_pointer": fwd_ptr,
    }
    data_fields = {
        "data": LINE_BITS,
        "valid": 1,
        "replacement": REPL_BITS,
        "rev_pointer": rev_ptr,
    }
    suffix = "FA" if data_assoc == "full" else f"{data_ways}w"
    return CostBreakdown(
        label or f"RC-{tag_mbeq:g}/{data_mb:g}-{suffix}",
        tag_entry_bits=sum(tag_fields.values()),
        data_entry_bits=sum(data_fields.values()),
        tag_entries=tag_entries,
        data_entries=data_entries,
        fields={**{f"tag.{k}": v for k, v in tag_fields.items()},
                **{f"data.{k}": v for k, v in data_fields.items()}},
    )


def table2() -> dict:
    """The three columns of paper Table 2."""
    return {
        "conv-8MB": conventional_cost(8),
        "RC-4/1-FA": reuse_cache_cost(4, 1, data_assoc="full"),
        "RC-4/1-16w": reuse_cache_cost(4, 1, data_assoc=16),
    }


def figure8_storage_kbits() -> dict:
    """Storage (Kbits) of every configuration labelled in Figure 8."""
    return {
        "RC-16/8": reuse_cache_cost(16, 8).total_kbits,
        "RC-8/4": reuse_cache_cost(8, 4).total_kbits,
        "RC-8/2": reuse_cache_cost(8, 2).total_kbits,
        "RC-4/1": reuse_cache_cost(4, 1).total_kbits,
        "RC-4/0.5": reuse_cache_cost(4, 0.5).total_kbits,
        "conv-4MB": conventional_cost(4).total_kbits,
        "conv-8MB": conventional_cost(8).total_kbits,
        "conv-16MB": conventional_cost(16).total_kbits,
        # DRRIP replaces the 1-bit NRU metadata with 2-bit RRPVs
        "conv-4MB-drrip": _drrip_cost(4),
        "conv-8MB-drrip": _drrip_cost(8),
        "conv-16MB-drrip": _drrip_cost(16),
    }


def _drrip_cost(size_mb: float) -> float:
    base = conventional_cost(size_mb)
    extra_kbits = base.tag_entries * 1 / 1024  # one extra replacement bit
    return base.total_kbits + extra_kbits


def ways_per_kbit_summary(breakdown: CostBreakdown) -> str:
    """Human-readable rendering of one Table 2 column."""
    lines = [f"{breakdown.label}:"]
    for key, value in breakdown.fields.items():
        lines.append(f"  {key:<22}{value:>4} bits")
    lines.append(f"  tag entry   {breakdown.tag_entry_bits:>6} bits x {breakdown.tag_entries}")
    lines.append(f"  data entry  {breakdown.data_entry_bits:>6} bits x {breakdown.data_entries}")
    lines.append(f"  total       {breakdown.total_kbits:>10.0f} Kbits")
    return "\n".join(lines)
