"""SRAM access-latency model (paper Table 3).

The paper uses CACTI v6.5 at 32 nm with serial tag/data access to compare a
conventional 8 MB cache with reuse caches.  CACTI is not available offline,
so this module provides an analytical surrogate: array latency is a linear
combination of basis functions of the array size in bits,

``L(bits) = c0 + c1*sqrt(bits) + c2*log2(bits) + c3*bits``

whose coefficients are solved once from the paper's three Table 3 anchors
(the physically meaningful shape — decode ∝ log of entries, wordline/bitline
∝ sqrt of area, wire tail ∝ area):

* a reuse-cache tag array with the same entries as the conventional one is
  36 % slower (forward pointers widen every entry);
* a 4 MB data array is 16 % faster than the 8 MB one;
* the 8 MB data array is 3x slower than its tag array.

With serial access (total = tag + data) these anchors are mutually
consistent with the paper's bottom line: RC-8/4 is ~3 % *faster* overall
than the conventional 8 MB cache.  Latencies are in arbitrary units
normalised so the conventional 8 MB tag array costs 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cost_model import conventional_cost, reuse_cache_cost


#: smallest array the surrogate is valid for (2 Mbit).  The fit interpolates
#: between the paper's anchors (4-67 Mbit arrays); far below them the basis
#: extrapolates into nonsense, so the model refuses.
MIN_ARRAY_BITS = 1 << 21


def _basis(bits: float) -> np.ndarray:
    return np.array([1.0, np.sqrt(bits), np.log2(bits), bits * 1e-6])


class SRAMLatencyModel:
    """Array-latency surrogate calibrated to the paper's CACTI anchors."""

    def __init__(self):
        conv = conventional_cost(8)
        rc88 = reuse_cache_cost(8, 8, data_assoc="full")
        rc84 = reuse_cache_cost(8, 4, data_assoc="full")

        conv_tag_bits = conv.tag_entry_bits * conv.tag_entries
        rc_tag_bits = rc88.tag_entry_bits * rc88.tag_entries
        conv_data_bits = conv.data_entry_bits * conv.data_entries
        rc_data_bits = rc84.data_entry_bits * rc84.data_entries

        # anchor equations (rows) over the coefficient vector
        rows = np.array(
            [
                _basis(rc_tag_bits) - 1.36 * _basis(conv_tag_bits),
                _basis(rc_data_bits) - 0.84 * _basis(conv_data_bits),
                _basis(conv_data_bits) - 3.0 * _basis(conv_tag_bits),
                _basis(conv_tag_bits),
            ]
        )
        rhs = np.array([0.0, 0.0, 0.0, 1.0])
        self._coeff = np.linalg.solve(rows, rhs)

    def array_latency(self, total_bits: float) -> float:
        """Latency (normalised units) of an SRAM array of ``total_bits``."""
        if total_bits < MIN_ARRAY_BITS:
            raise ValueError(
                f"array of {total_bits} bits is below the model's valid "
                f"domain ({MIN_ARRAY_BITS} bits)"
            )
        return float(_basis(total_bits) @ self._coeff)

    def cache_latency(self, tag_bits_total: float, data_bits_total: float) -> float:
        """Serial tag+data access latency of a cache."""
        return self.array_latency(tag_bits_total) + self.array_latency(data_bits_total)


@dataclass(frozen=True)
class LatencyComparison:
    """One row of Table 3: relative deltas vs the conventional 8 MB cache."""

    label: str
    tag_delta: float
    data_delta: float
    total_delta: float


def table3() -> list:
    """Reproduce paper Table 3 (RC-8/8 and RC-8/4 vs conventional 8 MB)."""
    model = SRAMLatencyModel()
    conv = conventional_cost(8)
    conv_tag = model.array_latency(conv.tag_entry_bits * conv.tag_entries)
    conv_data = model.array_latency(conv.data_entry_bits * conv.data_entries)
    conv_total = conv_tag + conv_data

    rows = []
    for label, tag_mbeq, data_mb in [("RC-8/8", 8, 8), ("RC-8/4", 8, 4)]:
        rc = reuse_cache_cost(tag_mbeq, data_mb, data_assoc="full")
        tag = model.array_latency(rc.tag_entry_bits * rc.tag_entries)
        data = model.array_latency(rc.data_entry_bits * rc.data_entries)
        rows.append(
            LatencyComparison(
                label,
                tag_delta=tag / conv_tag - 1.0,
                data_delta=data / conv_data - 1.0,
                total_delta=(tag + data) / conv_total - 1.0,
            )
        )
    return rows
