"""SLLC + DRAM energy model (the paper's motivation, Section 1).

The paper motivates downsizing with manufacturing cost **and power**: dead
lines burn leakage, and a 6x smaller SLLC burns proportionally less.  This
model quantifies that trade-off for simulated runs.  Like the latency
surrogate it is analytical (CACTI is unavailable offline), with clearly
stated scaling laws and 32 nm-plausible constants:

* **dynamic energy** per array access grows with the square root of the
  array size (bitline/wordline lengths scale with the array's linear
  dimension);
* **leakage power** is proportional to the number of bits;
* **DRAM access energy** is a per-line constant (activation + I/O).

The interesting qualitative result this exposes: the reuse cache cuts SLLC
leakage by ~6x and data-array dynamic energy, at the price of extra DRAM
fetch energy for reloaded lines — and still comes out well ahead.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from .cost_model import CostBreakdown, conventional_cost, reuse_cache_cost

#: core clock (Hz) used to convert cycles to seconds (DDR3-1333 systems of
#: the paper's era clocked cores near 2.66 GHz, 4x the 667 MHz bus)
CORE_CLOCK_HZ = 2.66e9

#: dynamic energy coefficient: J per access per sqrt(bit)
DYN_COEFF = 1.0e-14
#: leakage power per bit (W) — ~1 W for an 8 MB array at 32 nm
LEAK_PER_BIT = 1.5e-8
#: DRAM energy per 64 B line transfer (J): activation + IO
DRAM_LINE_ENERGY = 20e-9


def dynamic_energy_per_access(array_bits: float) -> float:
    """Dynamic energy (J) of one access to an array of ``array_bits``."""
    if array_bits <= 0:
        raise ValueError(f"array size must be positive, got {array_bits}")
    return DYN_COEFF * math.sqrt(array_bits)


def leakage_power(array_bits: float) -> float:
    """Static power (W) of an array of ``array_bits``."""
    return LEAK_PER_BIT * array_bits


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (J) of one simulated run, by component."""

    label: str
    tag_dynamic: float
    data_dynamic: float
    leakage: float
    dram: float

    @property
    def sllc_total(self) -> float:
        """SLLC-side energy: dynamic plus leakage."""
        return self.tag_dynamic + self.data_dynamic + self.leakage

    @property
    def total(self) -> float:
        """Total energy including DRAM."""
        return self.sllc_total + self.dram


def _arrays_of(spec) -> CostBreakdown:
    if spec.kind == "conventional":
        return conventional_cost(spec.size_mb)
    if spec.kind == "reuse":
        return reuse_cache_cost(spec.tag_mbeq, spec.data_mb, data_assoc=spec.data_assoc)
    raise ValueError(f"energy model supports conventional/reuse, not {spec.kind!r}")


def run_energy(spec, run_result) -> EnergyBreakdown:
    """Energy of one :class:`~repro.hierarchy.system.RunResult`.

    Counts at full (unscaled) array sizes: scaled simulations report the
    same per-access event counts per committed instruction, and the energy
    question ("what does the full-size organisation burn") is about the
    real arrays.
    """
    cost = _arrays_of(spec)
    tag_bits = cost.tag_entry_bits * cost.tag_entries
    data_bits = cost.data_entry_bits * cost.data_entries

    stats = run_result.llc_stats
    tag_accesses = stats["accesses"] + stats.get("upgrades", 0)
    data_accesses = stats["data_hits"] + stats["data_fills"]
    dram_ops = run_result.dram_stats["reads"] + run_result.dram_stats["writes"]

    seconds = max(run_result.cycles) / CORE_CLOCK_HZ if run_result.cycles else 0.0

    return EnergyBreakdown(
        label=spec.label,
        tag_dynamic=tag_accesses * dynamic_energy_per_access(tag_bits),
        data_dynamic=data_accesses * dynamic_energy_per_access(data_bits),
        leakage=(leakage_power(tag_bits) + leakage_power(data_bits)) * seconds,
        dram=dram_ops * DRAM_LINE_ENERGY,
    )
