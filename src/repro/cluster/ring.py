"""Consistent-hash ring with virtual nodes and deterministic placement.

The ring is the cluster's key→owner map, shared (by construction, not by
messaging) between every :class:`~repro.cluster.client.ClusterClient` and
every node: placement depends only on ``(seed, node names, vnodes, key)``
through blake2b, never on process state, insertion order or ``PYTHONHASHSEED``
— the same property :func:`repro.service.store.stable_hash` gives the
key→shard map one level down.

Each node contributes ``vnodes`` points on a 64-bit ring; a key is owned by
the first point clockwise from the key's own hash.  Virtual nodes keep the
per-node share near ``1/N`` and — the property the cluster's join/leave
path relies on — adding a node to an ``N``-node ring moves roughly
``1/(N+1)`` of the keys *to the new node only*; ownership between surviving
nodes never changes.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing", "RingEmptyError", "DEFAULT_VNODES"]

#: virtual nodes per physical node (128 keeps share imbalance within ~20%)
DEFAULT_VNODES = 128


class RingEmptyError(LookupError):
    """A key lookup reached a ring with no nodes."""


def _point(seed: int, *parts: str) -> int:
    """Deterministic 64-bit ring position for a seeded token tuple."""
    token = ":".join(str(p) for p in parts)
    digest = hashlib.blake2b(
        f"{seed}:{token}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping keys to node names."""

    def __init__(self, nodes=(), vnodes: int = DEFAULT_VNODES, seed: int = 2013):
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        self._points = []  # sorted ring positions
        self._owners = []  # node name at the same index
        self._nodes = set()
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------------

    @property
    def nodes(self) -> tuple:
        """Member node names, sorted (the ring itself is unordered)."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Add ``node``'s virtual points; idempotent errors are loud."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = _point(self.seed, "node", node, i)
            idx = bisect.bisect_left(self._points, point)
            # break the (astronomically unlikely) point collision by name
            # so placement stays independent of insertion order
            while (
                idx < len(self._points)
                and self._points[idx] == point
                and self._owners[idx] < node
            ):
                idx += 1
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    def remove(self, node: str) -> None:
        """Remove ``node``; keys it owned flow to their ring successors."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- placement -----------------------------------------------------------

    def key_point(self, key: str) -> int:
        """The key's own 64-bit ring position."""
        return _point(self.seed, "key", key)

    def owner(self, key: str) -> str:
        """The node owning ``key`` (first point clockwise from the key)."""
        if not self._nodes:
            raise RingEmptyError(
                "consistent-hash ring has no nodes; add nodes before "
                "routing keys"
            )
        idx = bisect.bisect_right(self._points, self.key_point(key))
        if idx == len(self._points):
            idx = 0  # wrap past the top of the ring
        return self._owners[idx]

    def preference(self, key: str, n: int) -> list:
        """First ``min(n, len(ring))`` distinct nodes clockwise from ``key``.

        ``preference(key, 1)[0] == owner(key)``; the tail names the replica
        targets, in the order the owner pushes to them.
        """
        if not self._nodes:
            raise RingEmptyError(
                "consistent-hash ring has no nodes; add nodes before "
                "routing keys"
            )
        want = min(n, len(self._nodes))
        found = []
        start = bisect.bisect_right(self._points, self.key_point(key))
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in found:
                found.append(owner)
                if len(found) == want:
                    break
        return found

    # -- analysis helpers (tests, `repro cluster status`) ---------------------

    def shares(self, sample_keys) -> dict:
        """Fraction of ``sample_keys`` owned per node (placement balance)."""
        counts = {node: 0 for node in self._nodes}
        total = 0
        for key in sample_keys:
            counts[self.owner(key)] += 1
            total += 1
        return {
            node: counts[node] / total if total else 0.0
            for node in sorted(counts)
        }

    def fingerprint(self) -> str:
        """Stable digest of the whole placement (byte-stability checks)."""
        h = hashlib.blake2b(digest_size=16)
        for point, owner in zip(self._points, self._owners):
            h.update(point.to_bytes(8, "big"))
            h.update(owner.encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()
