"""CLI verbs for the cache cluster: ``repro cluster serve|bench|status|smoke``.

``serve`` boots an N-node :class:`~repro.cluster.local.LocalCluster` in the
foreground (SIGINT/SIGTERM drain every node before exit) and prints the
node addresses clients route to.

``bench`` measures the cluster's reason to exist: replaying the same
workload at **equal per-node RAM** over growing node counts, aggregate
hit capacity must grow — the scaled-out version of the paper's
hit-rate-per-MB argument.  :func:`run_cluster_benchmark` is importable so
``benchmarks/bench_cluster.py`` persists the sweep to ``BENCH_cluster.json``.

``status`` queries a running cluster's ``CSTATUS`` blocks over the wire
(``--node name=host:port``, repeatable).

``smoke`` is the CI gate: boot a 3-node cluster, drive loadgen through a
routing client, then run the invalidation storm of
:mod:`repro.cluster.consistency` and fail on any stale read.

``trace`` produces the distributed-tracing artifact of
:mod:`repro.obs.dist`: either boot a local cluster with per-node tracers,
drive a deterministic write/invalidate storm and drain every ring over the
``TRACE`` verb, or (with ``--node``) drain already-running nodes; the
per-node batches merge into one causally-validated Chrome trace
(``repro obs validate --causal`` compatible, cross-node edges included).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal

from ..obs import Observability, validate_chrome_trace
from ..obs.dist import merge_node_traces
from ..obs.logging import configure as configure_logging
from ..service.loadgen import VALUE_BYTES, replay_interleaved, replay_with_client
from ..workloads.mixes import EXAMPLE_MIX, build_workload
from .client import ClusterClient
from .consistency import run_storm
from .local import LocalCluster

#: CLI names handled by this module (dispatched from repro.__main__)
CLUSTER_COMMANDS = ("cluster",)


def build_cluster_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro cluster ...``."""
    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description="Multi-node cache cluster with coherence-based "
                    "cross-node invalidation.",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    def add_cluster_args(p):
        p.add_argument("--nodes", type=int, default=3,
                       help="number of cluster nodes")
        p.add_argument("--data-capacity", type=int, default=512,
                       help="data-store entries PER NODE")
        p.add_argument("--tag-capacity", type=int, default=None,
                       help="tag-directory entries per node (default 4x data)")
        p.add_argument("--shards", type=int, default=2,
                       help="store shards per node")
        p.add_argument("--admission", choices=("reuse", "always"),
                       default="reuse", help="admission policy")
        p.add_argument("--replicas", type=int, default=1,
                       help="replication factor (1 = owner only)")
        p.add_argument("--seed", type=int, default=2013)

    serve = sub.add_parser("serve", help="run an N-node cluster in the "
                                         "foreground until interrupted")
    add_cluster_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--base-port", type=int, default=0,
                       help="first node port; consecutive ports follow "
                            "(0 = ephemeral)")
    serve.add_argument("--no-metrics", action="store_true",
                       help="disable the obs metrics registry")
    serve.add_argument("--obs-port", type=int, default=None,
                       help="base port for per-node telemetry HTTP "
                            "endpoints (node i serves on obs-port+i); "
                            "each answers /metrics /healthz /readyz "
                            "/varz /history /alertz")
    serve.add_argument("--obs-interval", type=float, default=1.0,
                       help="telemetry sampling interval in seconds")
    serve.add_argument("--flight-dir", metavar="DIR", default=".",
                       help="directory for flight-recorder bundles "
                            "(SIGUSR2 dumps one per node)")

    bench = sub.add_parser(
        "bench",
        help="show aggregate hit capacity scaling with node count "
             "at equal per-node RAM",
    )
    add_cluster_args(bench)
    bench.set_defaults(data_capacity=256)
    bench.add_argument("--node-counts", type=int, nargs="*",
                       default=[1, 2, 3], help="cluster sizes to sweep")
    bench.add_argument("--refs", type=int, default=12_000,
                       help="memory references per core")
    bench.add_argument("--scale", type=int, default=32,
                       help="workload footprint divisor (matches simulator)")
    bench.add_argument("--mix", nargs="*", default=None,
                       help=f"application mix (default: {' '.join(EXAMPLE_MIX)})")
    bench.add_argument("--value-bytes", type=int, default=VALUE_BYTES)
    bench.add_argument("--json", metavar="FILE", default=None,
                       help="also dump the sweep as JSON")

    status = sub.add_parser("status", help="query CSTATUS from running nodes")
    status.add_argument("--node", action="append", required=True,
                        metavar="NAME=HOST:PORT",
                        help="node address (repeatable)")
    status.add_argument("--seed", type=int, default=2013,
                        help="ring seed (must match the servers')")

    smoke = sub.add_parser(
        "smoke",
        help="boot a cluster, run load + an invalidation storm, "
             "fail on any stale read",
    )
    add_cluster_args(smoke)
    smoke.set_defaults(replicas=2)
    smoke.add_argument("--refs", type=int, default=4_000,
                       help="loadgen references per core")
    smoke.add_argument("--scale", type=int, default=32)
    smoke.add_argument("--storm-writes", type=int, default=40,
                       help="storm writes per writer")
    smoke.add_argument("--json", metavar="FILE", default=None,
                       help="dump the smoke report as JSON")

    trace = sub.add_parser(
        "trace",
        help="storm a traced local cluster (or drain running nodes with "
             "--node) and write one merged causal Chrome trace",
    )
    add_cluster_args(trace)
    trace.set_defaults(replicas=2)
    trace.add_argument("--node", action="append", default=None,
                       metavar="NAME=HOST:PORT",
                       help="drain these already-running nodes instead of "
                            "booting a local storm (repeatable)")
    trace.add_argument("--refs", type=int, default=2_000,
                       help="loadgen references per core before the storm")
    trace.add_argument("--scale", type=int, default=32)
    trace.add_argument("--storm-writes", type=int, default=64,
                       help="deterministic get/set/del rounds in the storm")
    trace.add_argument("--sample-every", type=int, default=1,
                       help="tracer sampling period (>1 WILL orphan spans)")
    trace.add_argument("--trace-capacity", type=int, default=65536,
                       help="per-node trace ring capacity")
    trace.add_argument("--out", metavar="FILE", default="cluster-trace.json",
                       help="merged Chrome trace output path")
    return parser


# -- serve --------------------------------------------------------------------


def _build_cluster(args, obs=None, host="127.0.0.1",
                   obs_factory=None) -> LocalCluster:
    return LocalCluster(
        num_nodes=args.nodes,
        data_capacity_per_node=args.data_capacity,
        tag_capacity_per_node=args.tag_capacity,
        shards_per_node=args.shards,
        admission=args.admission,
        replicas=args.replicas,
        host=host,
        seed=args.seed,
        obs=obs,
        obs_factory=obs_factory,
    )


def _node_health(node):
    """Health callable bound to one node's drain state and server."""

    def health() -> dict:
        serving = node.server._server is not None
        draining = node.draining or node.server.draining
        return {
            "healthy": serving and not draining,
            "ready": serving and not draining,
            "draining": draining,
            "node": node.name,
            "uptime_s": node.server.uptime_s,
        }

    return health


def _install_cluster_sigusr2(telemetries) -> None:
    """One SIGUSR2 handler dumping a flight bundle per node.

    ``add_signal_handler`` replaces rather than chains, so per-node
    handlers would leave only the last node dumping.
    """
    if not telemetries:
        return

    def dump_all():
        for telemetry in telemetries:
            path = telemetry.dump_flight("sigusr2")
            print(f"repro.cluster: flight bundle written to {path}")

    try:
        asyncio.get_running_loop().add_signal_handler(
            signal.SIGUSR2, dump_all
        )
    except (NotImplementedError, RuntimeError, AttributeError, ValueError):
        pass  # no SIGUSR2 on this platform


async def _serve_cluster(args) -> None:
    obs = (Observability.disabled() if args.no_metrics
           else Observability.enabled())
    cluster = _build_cluster(args, obs=obs, host=args.host)
    if args.base_port:
        for i, node in enumerate(cluster.nodes.values()):
            node.server.port = args.base_port + i
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # non-unix event loops
            pass
    await cluster.start()
    print(f"repro.cluster: {len(cluster.nodes)} node(s), "
          f"{args.data_capacity} entries/node, replicas={args.replicas}, "
          f"{args.admission} admission")
    for name, (host, port) in sorted(cluster.addresses().items()):
        print(f"repro.cluster:   {name} @ {host}:{port}")
    # one telemetry plane per node on consecutive ports; the in-process
    # harness shares one registry (metrics are node-labelled), but health
    # and /varz are bound to each node's own drain state and server
    telemetries = []
    if getattr(args, "obs_port", None) is not None:
        from ..service.telemetry import ServiceTelemetry

        for i, (name, node) in enumerate(sorted(cluster.nodes.items())):
            telemetry = ServiceTelemetry(
                node.server, port=args.obs_port + i,
                interval=args.obs_interval, flight_dir=args.flight_dir,
                health=_node_health(node), signal_handler=False,
            )
            await telemetry.start()
            telemetries.append(telemetry)
            print(f"repro.cluster:   {name} telemetry @ "
                  f"http://{telemetry.http.host}:{telemetry.http.port}")
        _install_cluster_sigusr2(telemetries)
    try:
        await stop.wait()
    finally:
        for telemetry in telemetries:
            await telemetry.stop()
        snapshot = cluster.status_snapshot()
        await cluster.stop()
        print(f"repro.cluster: drained and stopped "
              f"({snapshot['stored']} stored, "
              f"{snapshot['replicas_held']} replicas held, "
              f"{snapshot['protocol_races']} protocol races)")


def cmd_cluster_serve(args) -> int:
    try:
        asyncio.run(_serve_cluster(args))
    except KeyboardInterrupt:
        pass
    return 0


# -- bench --------------------------------------------------------------------


async def _bench_one(num_nodes: int, workload, args) -> dict:
    cluster = LocalCluster(
        num_nodes=num_nodes,
        data_capacity_per_node=args.data_capacity,
        tag_capacity_per_node=args.tag_capacity,
        shards_per_node=args.shards,
        admission=args.admission,
        replicas=args.replicas,
        seed=args.seed,
    )
    async with cluster:
        client = cluster.client(pool_size=2)
        # deterministic interleave: the sweep compares hit rates across
        # topologies, so the arrival order must not vary with node count
        result = await replay_interleaved(
            client, workload, value_bytes=args.value_bytes, sample_every=4,
        )
        stats = await client.stats()
    summary = result.summary()
    summary["nodes"] = num_nodes
    summary["data_capacity_entries"] = args.data_capacity * num_nodes
    data_bytes = args.data_capacity * num_nodes * args.value_bytes
    summary["data_capacity_bytes"] = data_bytes
    summary["stored_entries"] = stats["total"]["stored_entries"]
    summary["server_hit_rate"] = stats["total"]["hit_rate"]
    return summary


def run_cluster_benchmark(args=None, **overrides) -> dict:
    """Sweep cluster sizes at equal per-node RAM; returns a JSON-safe dict.

    The headline claim is ``monotonic_hit_rate``: with the workload
    footprint held fixed and per-node capacity held fixed, adding nodes
    adds aggregate capacity, and the client-observed hit rate must grow
    monotonically along ``node_counts``.
    """
    if args is None:
        args = build_cluster_parser().parse_args(["bench"])
    for name, value in overrides.items():
        setattr(args, name, value)
    mix = args.mix if args.mix else EXAMPLE_MIX
    workload = build_workload(mix, n_refs=args.refs, seed=args.seed,
                              scale=args.scale)

    async def _run():
        out = []
        for n in args.node_counts:
            out.append(await _bench_one(n, workload, args))
        return out

    sweep = asyncio.run(_run())
    hit_rates = [row["hit_rate"] for row in sweep]
    return {
        "workload": workload.name,
        "refs_per_core": args.refs,
        "cores": workload.num_cores,
        "scale": args.scale,
        "data_capacity_per_node": args.data_capacity,
        "replicas": args.replicas,
        "value_bytes": args.value_bytes,
        "node_counts": list(args.node_counts),
        "sweep": sweep,
        "hit_rates": hit_rates,
        "monotonic_hit_rate": all(
            b >= a for a, b in zip(hit_rates, hit_rates[1:])
        ),
    }


def format_cluster_benchmark(result: dict) -> str:
    """Human-readable table of the scaling sweep."""
    lines = [
        f"cluster benchmark — workload {result['workload']} "
        f"({result['cores']} cores x {result['refs_per_core']} refs, "
        f"{result['data_capacity_per_node']} entries/node)",
        f"{'nodes':>5} {'capacity':>9} {'hit rate':>9} {'stored':>8} "
        f"{'rps':>9} {'p50 ms':>8} {'p99 ms':>8}",
    ]
    for row in result["sweep"]:
        lines.append(
            f"{row['nodes']:>5} {row['data_capacity_entries']:>9} "
            f"{row['hit_rate']:>9.4f} {row['stored_entries']:>8} "
            f"{row['throughput_rps']:>9.0f} {row['p50_ms']:>8.3f} "
            f"{row['p99_ms']:>8.3f}"
        )
    verdict = "grows monotonically" if result["monotonic_hit_rate"] \
        else "DOES NOT grow monotonically"
    lines.append(
        f"aggregate hit capacity {verdict} with node count "
        f"at equal per-node RAM"
    )
    return "\n".join(lines)


def cmd_cluster_bench(args) -> int:
    result = run_cluster_benchmark(args)
    print(format_cluster_benchmark(result))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.json}")
    return 0 if result["monotonic_hit_rate"] else 1


# -- status -------------------------------------------------------------------


def _parse_node_args(specs) -> dict:
    nodes = {}
    for spec in specs:
        try:
            name, addr = spec.split("=", 1)
            host, port = addr.rsplit(":", 1)
            nodes[name] = (host, int(port))
        except ValueError:
            raise SystemExit(
                f"bad --node {spec!r}; expected NAME=HOST:PORT"
            ) from None
    return nodes


async def _cluster_status(nodes: dict, seed: int) -> dict:
    async with ClusterClient(nodes, seed=seed) as client:
        return await client.status()


def cmd_cluster_status(args) -> int:
    nodes = _parse_node_args(args.node)
    status = asyncio.run(_cluster_status(nodes, args.seed))
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0 if not any(
        blk.get("unreachable") for blk in status.values()
    ) else 1


# -- smoke --------------------------------------------------------------------


async def _smoke(args) -> dict:
    mix = EXAMPLE_MIX
    workload = build_workload(mix, n_refs=args.refs, seed=args.seed,
                              scale=args.scale)
    cluster = _build_cluster(args)
    async with cluster:
        client = cluster.client(read_replicas=True)
        load = await replay_with_client(client, workload, sample_every=8)
        storm = await run_storm(
            client, writes_per_writer=args.storm_writes,
        )
        stats = await client.stats()
        snapshot = cluster.status_snapshot()
    return {
        "nodes": args.nodes,
        "replicas": args.replicas,
        "load": load.summary(),
        "storm": storm.to_dict(),
        "server_hit_rate": stats["total"]["hit_rate"],
        "stored_entries": stats["total"]["stored_entries"],
        "replicas_held": snapshot["replicas_held"],
        "protocol_races": snapshot["protocol_races"],
        "ok": storm.ok,
    }


def cmd_cluster_smoke(args) -> int:
    report = asyncio.run(_smoke(args))
    storm = report["storm"]
    print(f"cluster smoke — {report['nodes']} node(s), "
          f"replicas={report['replicas']}")
    print(f"  load:  {report['load']['ops']} ops, "
          f"hit rate {report['load']['hit_rate']:.4f}, "
          f"{report['stored_entries']} stored, "
          f"{report['replicas_held']} replicas held")
    print(f"  storm: {storm['writes']} writes, {storm['deletes']} deletes, "
          f"{storm['reads']} reads "
          f"({storm['read_hits']} hits / {storm['read_misses']} misses)")
    print(f"  stale reads: {storm['stale_reads']}"
          + ("" if report["ok"] else f"  violations: {storm['violations']}"))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}")
    print("cluster smoke: " + ("PASS" if report["ok"] else "FAIL"))
    return 0 if report["ok"] else 1


# -- trace --------------------------------------------------------------------


async def _sequential_storm(client, writes: int, keys: int = 8) -> dict:
    """Deterministic GET→SET(→DEL) rounds that exercise every trace edge.

    The GET before each SET is what makes the storm produce cross-node
    traffic under reuse admission: round one tags the key (SET declined),
    round two detects reuse and stores, which replicates; later rounds
    update in place, which INVALs the replica holders before re-pushing —
    owner-write → INVAL fan-out → peer ack, the tree the merged trace
    must connect.  Every 7th round deletes, adding DEL→INVAL edges.
    """
    ops = {"gets": 0, "sets": 0, "stored": 0, "deletes": 0}
    for i in range(writes):
        key = f"storm:{i % keys}"
        await client.get(key)
        ops["gets"] += 1
        if await client.set(key, b"storm-value-%d" % i):
            ops["stored"] += 1
        ops["sets"] += 1
        if i % 7 == 6:
            await client.delete(key)
            ops["deletes"] += 1
    return ops


async def collect_cluster_trace(args) -> dict:
    """Run the traced storm (or drain live nodes) and merge the rings.

    Returns ``{"merged": <chrome doc>, "problems": [...], "storm": ...}``;
    importable so tests drive the same path as ``repro cluster trace``.
    """
    if args.node:
        nodes = _parse_node_args(args.node)
        async with ClusterClient(nodes, seed=args.seed) as client:
            node_events = await client.traces()
        storm = None
    else:
        def obs_factory(name, index):
            return Observability.enabled(
                tracing=True,
                trace_capacity=args.trace_capacity,
                sample_every=args.sample_every,
                time_unit="s",
            )

        cluster = _build_cluster(args, obs_factory=obs_factory)
        async with cluster:
            client = cluster.client()
            if args.refs:
                workload = build_workload(EXAMPLE_MIX, n_refs=args.refs,
                                          seed=args.seed, scale=args.scale)
                await replay_interleaved(client, workload, sample_every=8)
            storm = await _sequential_storm(client, args.storm_writes)
            # let the final request's span land in its ring before draining
            # (spans are recorded right after the response is flushed)
            await asyncio.sleep(0.05)
            node_events = await client.traces()
    merged = merge_node_traces(node_events, time_unit="s")
    problems = validate_chrome_trace(merged, causal=True)
    return {"merged": merged, "problems": problems, "storm": storm}


def cmd_cluster_trace(args) -> int:
    result = asyncio.run(collect_cluster_trace(args))
    merged, problems = result["merged"], result["problems"]
    events = merged["traceEvents"]
    other = merged["otherData"]
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=1)
    mode = "drained live nodes" if args.node else (
        f"storm over {args.nodes} node(s), replicas={args.replicas}"
    )
    print(f"cluster trace — {mode}")
    if result["storm"]:
        storm = result["storm"]
        print(f"  storm: {storm['gets']} gets, {storm['sets']} sets "
              f"({storm['stored']} stored), {storm['deletes']} deletes")
    print(f"  merged: {len(events)} event(s) from "
          f"{len(other['nodes'])} node(s), "
          f"{other['cross_node_edges']} cross-node edge(s)")
    print(f"  wrote {args.out}")
    if problems:
        for problem in problems[:10]:
            print(f"  CAUSAL PROBLEM: {problem}")
        print("cluster trace: FAIL")
        return 1
    print("cluster trace: PASS (causally complete — no orphans, no cycles)")
    return 0


def main(argv) -> int:
    """Entry point for ``repro cluster ...`` (argv excludes "cluster")."""
    configure_logging()
    args = build_cluster_parser().parse_args(argv)
    handler = {
        "serve": cmd_cluster_serve,
        "bench": cmd_cluster_bench,
        "status": cmd_cluster_status,
        "smoke": cmd_cluster_smoke,
        "trace": cmd_cluster_trace,
    }[args.subcommand]
    return handler(args)
