"""Client-side routing for the cache cluster.

:class:`ClusterClient` is the cluster twin of
:class:`~repro.service.client.CacheClient`: it owns (or shares) a
:class:`~repro.cluster.ring.HashRing`, keeps one pooled connection set per
node, and routes every operation to the key's owner — the same "compute
the placement locally, never ask" discipline the sharded store uses one
level down.

Reads can optionally spread over replica holders (``read_replicas=True``):
the client round-robins the key's preference list, reading replicas with
``RGET`` and falling back to the owner's authoritative ``GET`` on a
replica miss.  Because owners invalidate replicas *before* acknowledging
writes, a replica read can return the current value or miss — never a
stale one — so spreading reads costs no consistency.

Writes always go to the owner.  Nodes that repeatedly fail are marked
down: reads fail over along the preference list, writes raise
:class:`NodeDownError` (routing a write elsewhere would fork ownership).
``health()`` re-probes down nodes and revives the ones that answer.
"""

from __future__ import annotations

import asyncio

from ..obs.logging import get_logger
from .node import PeerClient
from .ring import HashRing

log = get_logger(__name__)

#: consecutive transport failures before a node is considered down
DOWN_AFTER = 3


class ClusterError(Exception):
    """Cluster-level routing failure."""


class NodeDownError(ClusterError):
    """The key's owner is marked down; writes cannot be re-routed."""


class ClusterClient:
    """Route cache operations across a cluster by consistent hashing."""

    def __init__(
        self,
        nodes: dict,
        ring: HashRing | None = None,
        replicas: int = 1,
        read_replicas: bool = False,
        pool_size: int = 2,
        timeout: float = 5.0,
        seed: int = 2013,
    ):
        """``nodes`` maps node name -> ``(host, port)``.

        Pass the cluster's own ``ring`` to share placement updates (node
        join/leave) in-process; otherwise a ring is built from the node
        names with ``seed`` and must match the server side's.
        """
        if not nodes:
            raise ClusterError("a cluster client needs at least one node")
        self.ring = ring if ring is not None else HashRing(nodes, seed=seed)
        self.replicas = replicas
        self.read_replicas = read_replicas
        self._clients = {
            name: PeerClient(host, port, pool_size=pool_size, timeout=timeout)
            for name, (host, port) in nodes.items()
        }
        self._failures = {name: 0 for name in nodes}
        self._down = set()
        self._reads = 0  # round-robin cursor for replica spreading

    # -- membership (kept in lockstep with the cluster manager) ---------------

    def add_node(self, name: str, host: str, port: int,
                 pool_size: int = 2, timeout: float = 5.0) -> None:
        """Register a node's address (the ring is updated by its owner)."""
        self._clients[name] = PeerClient(
            host, port, pool_size=pool_size, timeout=timeout
        )
        self._failures[name] = 0
        self._down.discard(name)

    async def remove_node(self, name: str) -> None:
        client = self._clients.pop(name, None)
        self._failures.pop(name, None)
        self._down.discard(name)
        if client is not None:
            await client.close()

    @property
    def node_names(self) -> tuple:
        return tuple(sorted(self._clients))

    @property
    def down_nodes(self) -> tuple:
        return tuple(sorted(self._down))

    # -- failure accounting ----------------------------------------------------

    def _ok(self, name: str) -> None:
        self._failures[name] = 0
        self._down.discard(name)

    def _fail(self, name: str) -> None:
        self._failures[name] = self._failures.get(name, 0) + 1
        if self._failures[name] >= DOWN_AFTER and name not in self._down:
            self._down.add(name)
            log.warning("marking node %s down after %d consecutive failures",
                        name, self._failures[name])

    def _client_for(self, name: str) -> PeerClient:
        try:
            return self._clients[name]
        except KeyError:
            raise ClusterError(
                f"ring routed to unknown node {name!r}; client membership "
                "is stale"
            ) from None

    # -- operations ------------------------------------------------------------

    def _read_order(self, key: str) -> list:
        """Nodes to try for a read: preference list, replica-rotated."""
        width = self.replicas if self.read_replicas else 1
        pref = self.ring.preference(key, width)
        if len(pref) > 1:
            self._reads += 1
            start = self._reads % len(pref)
            pref = pref[start:] + pref[:start]
        return pref

    async def get(self, key: str, trace=None):
        """Value bytes for ``key`` or None; replica-spread, never stale."""
        owner = self.ring.owner(key)
        last_exc = None
        for name in self._read_order(key):
            if name in self._down:
                continue
            client = self._client_for(name)
            try:
                if name == owner:
                    value = await client.get(key, trace=trace)
                else:
                    value = await client.rget(key, trace=trace)
                self._ok(name)
            except (ConnectionError, asyncio.TimeoutError, OSError) as exc:
                self._fail(name)
                last_exc = exc
                continue
            if value is not None:
                return value
            if name == owner:
                return None  # authoritative miss
        # every replica missed (or was down): ask the owner directly
        if owner not in self._down:
            client = self._client_for(owner)
            try:
                value = await client.get(key, trace=trace)
                # repro: atomic=_down/_failures are advisory routing hints; a stale check only costs one extra try, never consistency
                self._ok(owner)
                return value
            except (ConnectionError, asyncio.TimeoutError, OSError) as exc:
                # repro: atomic=same advisory-health invariant as the _ok above
                self._fail(owner)
                last_exc = exc
        raise NodeDownError(
            f"no reachable node can answer GET {key!r} "
            f"(owner {owner!r}, down={sorted(self._down)})"
        ) from last_exc

    async def set(self, key: str, value: bytes, trace=None) -> bool:
        """Offer ``value`` to the key's owner; True iff stored."""
        owner = self.ring.owner(key)
        if owner in self._down:
            raise NodeDownError(f"owner {owner!r} of {key!r} is down")
        client = self._client_for(owner)
        try:
            stored = await client.set(key, value, trace=trace)
        except (ConnectionError, asyncio.TimeoutError, OSError):
            self._fail(owner)
            raise
        self._ok(owner)
        return stored

    async def delete(self, key: str, trace=None) -> bool:
        """Delete ``key`` at its owner; True iff a stored value was removed."""
        owner = self.ring.owner(key)
        if owner in self._down:
            raise NodeDownError(f"owner {owner!r} of {key!r} is down")
        client = self._client_for(owner)
        try:
            removed = await client.delete(key, trace=trace)
        except (ConnectionError, asyncio.TimeoutError, OSError):
            self._fail(owner)
            raise
        self._ok(owner)
        return removed

    # -- batch operations ------------------------------------------------------

    def _group_by_owner(self, keys) -> dict:
        """owner name -> ``[(position, key), ...]`` preserving key order.

        Raises :class:`NodeDownError` up front if any owner is down:
        batches are all-or-nothing at routing time, so a partial batch
        never silently drops the down node's slice.
        """
        groups = {}
        for idx, key in enumerate(keys):
            groups.setdefault(self.ring.owner(key), []).append((idx, key))
        for owner in groups:
            if owner in self._down:
                raise NodeDownError(f"owner {owner!r} is down")
        return groups

    async def _batch_per_owner(self, groups, op):
        """Fan ``op(client, pairs)`` out per owner node, concurrently.

        Owners hold disjoint key sets, so the fan-out preserves per-key
        operation order; results come back as ``(pairs, values)`` for
        positional reassembly.
        """
        async def one(owner, pairs):
            client = self._client_for(owner)
            try:
                values = await op(client, pairs)
            except (ConnectionError, asyncio.TimeoutError, OSError):
                self._fail(owner)
                raise
            self._ok(owner)
            return pairs, values

        return await asyncio.gather(
            *[one(owner, pairs) for owner, pairs in groups.items()]
        )

    async def mget(self, keys, trace=None) -> list:
        """Batch get across the cluster: one ``bytes | None`` per key.

        Keys are grouped by owner and fetched with one MGET per node
        (single round trip on v2).  Batch reads are owner-only — they
        skip the replica spreading of :meth:`get`, trading read fan-out
        for round-trip amortisation — and raise :class:`NodeDownError`
        if any key's owner is down.
        """
        keys = list(keys)
        if not keys:
            return []
        groups = self._group_by_owner(keys)
        results = await self._batch_per_owner(
            groups,
            lambda client, pairs: client.mget(
                [k for _, k in pairs], trace=trace
            ),
        )
        out = [None] * len(keys)
        for pairs, values in results:
            for (idx, _), value in zip(pairs, values):
                out[idx] = value
        return out

    async def mset(self, items, trace=None) -> list:
        """Batch set of ``(key, value)`` pairs: one stored-bool per item.

        Every item still goes to its key's owner and runs the owner's
        full write path (cluster nodes fan INVALs out per item before
        acking), so batching changes round trips, not semantics.
        """
        items = list(items)
        if not items:
            return []
        values_by_pos = [value for _, value in items]
        groups = self._group_by_owner([key for key, _ in items])
        results = await self._batch_per_owner(
            groups,
            lambda client, pairs: client.mset(
                [(k, values_by_pos[idx]) for idx, k in pairs], trace=trace
            ),
        )
        out = [False] * len(items)
        for pairs, flags in results:
            for (idx, _), flag in zip(pairs, flags):
                out[idx] = flag
        return out

    async def mdel(self, keys, trace=None) -> list:
        """Batch delete across the cluster: one removed-bool per key."""
        keys = list(keys)
        if not keys:
            return []
        groups = self._group_by_owner(keys)
        results = await self._batch_per_owner(
            groups,
            lambda client, pairs: client.mdel(
                [k for _, k in pairs], trace=trace
            ),
        )
        out = [False] * len(keys)
        for pairs, flags in results:
            for (idx, _), flag in zip(pairs, flags):
                out[idx] = flag
        return out

    # -- cluster-wide introspection --------------------------------------------

    async def ping_all(self) -> dict:
        """name -> bool reachability, without changing down-marks."""
        async def probe(name, client):
            try:
                return name, await asyncio.wait_for(client.ping(), 2.0)
            except (ConnectionError, asyncio.TimeoutError, OSError):
                return name, False

        results = await asyncio.gather(
            *[probe(n, c) for n, c in self._clients.items()]
        )
        return dict(sorted(results))

    async def health(self) -> dict:
        """Probe every node; revive down nodes that answer.

        Returns ``{name: {"up": bool, "was_down": bool}}``.
        """
        reachable = await self.ping_all()
        report = {}
        for name, up in reachable.items():
            was_down = name in self._down
            if up:
                self._ok(name)
            else:
                self._down.add(name)
            report[name] = {"up": up, "was_down": was_down}
        return report

    async def stats(self) -> dict:
        """Per-node STATS snapshots plus a cluster aggregate."""
        out = {"nodes": {}, "total": {}}
        hits = misses = stored = 0
        for name in self.node_names:
            if name in self._down:
                continue
            snap = await self._client_for(name).stats()
            out["nodes"][name] = snap
            total = snap.get("total", {})
            hits += total.get("hits", 0)
            misses += total.get("misses", 0)
            stored += snap.get("stored_entries", 0)
        lookups = hits + misses
        out["total"] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
            "stored_entries": stored,
        }
        return out

    async def status(self) -> dict:
        """Per-node CSTATUS blocks (cluster-layer view)."""
        out = {}
        for name in self.node_names:
            if name in self._down:
                out[name] = {"name": name, "unreachable": True}
                continue
            try:
                out[name] = await self._client_for(name).cstatus()
            except (ConnectionError, asyncio.TimeoutError, OSError):
                out[name] = {"name": name, "unreachable": True}
        return out

    #: CSTATUS counters summed into the ``totals`` block of
    #: :meth:`cstatus_summary` (absent keys count as zero)
    _SUMMED_STATUS_KEYS = (
        "stored", "data_capacity", "replicas_held", "pending_invals",
        "stale_rejects", "protocol_races", "directory_entries",
    )

    async def cstatus_summary(self) -> dict:
        """One aggregated cluster-health view over every node's CSTATUS.

        Backs ``repro top --cluster`` and tests: per-node blocks under
        ``"nodes"``, summed counters under ``"totals"``, plus the
        ``unreachable`` / ``draining`` name lists.  Down or mid-drain
        nodes are *reported*, never raised over.
        """
        nodes = await self.status()
        totals = {key: 0 for key in self._SUMMED_STATUS_KEYS}
        unreachable, draining = [], []
        for name, block in nodes.items():
            if block.get("unreachable"):
                unreachable.append(name)
                continue
            if block.get("draining"):
                draining.append(name)
            for key in self._SUMMED_STATUS_KEYS:
                totals[key] += block.get(key, 0)
        return {
            "nodes": nodes,
            "totals": totals,
            "num_nodes": len(nodes),
            "unreachable": sorted(unreachable),
            "draining": sorted(draining),
        }

    async def metrics(self) -> dict:
        """name -> Prometheus text from each node's METRICS verb.

        Unreachable nodes map to ``None`` (and count one failure toward
        the down-mark); nodes already marked down are skipped as ``None``
        without a probe.
        """
        out = {}
        for name in self.node_names:
            if name in self._down:
                out[name] = None
                continue
            try:
                out[name] = await self._client_for(name).metrics()
                self._ok(name)
            except (ConnectionError, asyncio.TimeoutError, OSError):
                self._fail(name)
                out[name] = None
        return out

    async def traces(self) -> dict:
        """Drain every reachable node's trace ring; name -> event dicts.

        The building block of ``repro cluster trace``: each node's TRACE
        verb hands over a disjoint JSONL batch (the server clears its ring
        on drain), parsed here into event dicts ready for
        :func:`repro.obs.dist.merge_node_traces`.  Down/unreachable nodes
        are skipped — their events stay in their rings for a later drain.
        """
        out = {}
        for name in self.node_names:
            if name in self._down:
                continue
            try:
                out[name] = await self._client_for(name).trace()
                self._ok(name)
            except (ConnectionError, asyncio.TimeoutError, OSError):
                self._fail(name)
        return out

    async def close(self) -> None:
        for client in self._clients.values():
            await client.close()

    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc):
        await self.close()
