"""Multi-node cache cluster with coherence-based cross-node invalidation.

``repro.cluster`` scales the single-process reuse-cache service
(:mod:`repro.service`) out to N nodes behind a client-side consistent-hash
ring, and reuses the paper's TO-MSI coherence protocol — generalised in
:mod:`repro.coherence.distributed` — as the *distributed* invalidation
protocol: each owner node keeps tag-only directory entries naming which
peers hold a replica, and every write, delete, or store eviction becomes a
``DataRepl``-style ``INVAL`` fan-out that completes before the triggering
operation is acknowledged.

Layer map:

* :mod:`~repro.cluster.ring` — seeded consistent-hash ring (virtual
  nodes, byte-stable placement, bounded movement on membership change);
* :mod:`~repro.cluster.node` — one cluster member: the wire verbs
  (``REPL``/``INVAL``/``PUTS``/``RGET``/``CSTATUS``/``DRAIN``), the
  replica directory, the versioned replica store;
* :mod:`~repro.cluster.client` — ring-routing client with per-node
  pools, replica-spread reads and down-node failover;
* :mod:`~repro.cluster.local` — boot/join/leave/drain an N-node cluster
  in one process (the harness behind ``repro cluster ...``);
* :mod:`~repro.cluster.consistency` — the invalidation-storm checker
  certifying zero stale reads.
"""

from .client import ClusterClient, ClusterError, NodeDownError
from .consistency import StormReport, run_storm
from .local import LocalCluster
from .node import (
    ClusterNode,
    ClusterServer,
    InvalidationError,
    PeerClient,
    ReplicaStore,
)
from .ring import HashRing, RingEmptyError

__all__ = [
    "ClusterClient",
    "ClusterError",
    "ClusterNode",
    "ClusterServer",
    "HashRing",
    "InvalidationError",
    "LocalCluster",
    "NodeDownError",
    "PeerClient",
    "ReplicaStore",
    "RingEmptyError",
    "StormReport",
    "run_storm",
]
