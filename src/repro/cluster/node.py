"""One cluster node: an owner store, a replica store, and the wire verbs.

A :class:`ClusterNode` wraps the single-process serving stack
(:class:`~repro.service.sharding.ShardedStore` behind a
:class:`~repro.service.server.CacheServer`) and adds the cross-node
machinery of :mod:`repro.coherence.distributed`:

* as the **owner** of the keys the ring assigns it, the node keeps a
  :class:`~repro.coherence.distributed.ReplicaDirectory` — tag-only
  entries naming which peers hold a replica — and turns every write,
  delete, and store-internal eviction into the protocol's ``INVAL``
  fan-out *before* acknowledging the triggering operation;
* as a **peer**, it holds versioned read-only replicas pushed by other
  owners in a bounded :class:`ReplicaStore`, serving them over ``RGET``
  and dropping them on ``INVAL``.

Wire verbs added on top of the :mod:`repro.service` protocol (all
line-framed, same framing rules):

=========================================  =================================
request                                    response
=========================================  =================================
``REPL <key> <version> <len>\\n<bytes>\\n``  ``REPLICATED\\n`` or ``STALE\\n``
``INVAL <key> <version>\\n``                ``INVALED\\n``
``PUTS <key> <node>\\n``                    ``OK\\n``
``RGET <key>\\n``                           ``VALUE <len>\\n<bytes>\\n``/``MISS\\n``
``CSTATUS\\n``                              ``CSTATUS <len>\\n<json>\\n``
``DRAIN\\n``                                ``DRAINING\\n`` (node stops
                                           accepting, drains in-flight)
=========================================  =================================

Writes carry a per-key monotonic **version** assigned by the owner.
``INVAL`` establishes a *floor*: a peer that saw ``INVAL(key, v)`` rejects
any later ``REPL(key, v' <= v)`` as ``STALE``, so a replication push that
raced a newer write can never resurrect an old value.  Because the owner
awaits every ``INVAL`` ack before acknowledging the write, an acknowledged
write guarantees no replica of an older version survives anywhere — the
cluster-wide version of the paper's rule that a line leaves the data array
the moment its tag group changes.

A holder that does not ack (down, or merely slow) is *not* papered over:
the write fails with ``ERR`` (:class:`InvalidationError`) after one INVAL
retry, and the holder is parked in the key's **pending-INVAL set** — every
later fan-out for the key re-targets it, and no write to the key acks
until the debt clears.  Store evictions record the same debt without
failing the triggering operation (the surviving replica still equals the
last acked value, so nothing is stale *yet* — but the next write to the
key must reach it before acking).
"""

from __future__ import annotations

import asyncio
import json
import time

from ..obs import Observability
from ..obs.dist import (
    CAT_AUDIT,
    REPLICA_INVALIDATED,
    SpanIds,
    current_context,
    leaf_args,
    span_args,
    use_context,
)
from ..obs.logging import get_logger
from ..obs.prof import clock
from ..coherence.distributed import ReplicaDirectory
from ..coherence.states import State
from ..service.client import CacheClient
from ..service.protocol import STATUS_IDS
from ..service.server import (
    MAX_VALUE_BYTES,
    CacheServer,
    ProtocolError,
)
from ..service.sharding import ShardedStore

log = get_logger(__name__)

#: wire verbs handled by the cluster layer (the rest fall through to the
#: base service protocol)
CLUSTER_VERBS = ("SET", "DEL", "REPL", "INVAL", "PUTS", "RGET", "CSTATUS",
                 "DRAIN")

#: tracing category for cross-node flows
CAT_CLUSTER = "cluster"

#: seconds a replica-store version floor survives even past the count
#: bound — long enough to fence any REPL push still in flight (pool
#: retries included) when the INVAL that raced ahead of it was applied
FLOOR_MIN_AGE = 60.0


class InvalidationError(ProtocolError):
    """The INVAL fan-out for a write is missing acks: the write is NOT
    acknowledged (the client sees ``ERR``), because a holder that never
    acked may still serve its old replica over ``RGET``."""


class ReplicaStore:
    """Bounded, versioned store of read-only replicas held for peers.

    Entries are ``key -> (version, value, owner)``; capacity is enforced
    FIFO (oldest push evicted first) and evictions are reported back so the
    node can send the owner a ``PUTS`` notice.  ``invalidate(key, v)``
    drops any replica *strictly older* than ``v`` and records ``v`` as the
    key's version floor; pushes strictly below the floor are rejected —
    the ordering guard described in the module docstring.  The bounds are
    strict so the fan-out for version ``v`` (INVAL first, REPL after the
    acks) invalidates every older copy yet still lets the version-``v``
    value itself replicate; a REPL retried after a lost response is
    likewise accepted idempotently rather than misreported as stale.

    The floor map is bounded at 4x capacity, but a floor younger than
    ``floor_min_age`` seconds is never evicted: it may still be fencing
    an in-flight REPL, and dropping it would reopen the exact
    resurrection window floors exist to close.  Residual window: a push
    delayed past ``floor_min_age`` *and* 4x-capacity younger
    invalidations of distinct keys can be re-accepted — the owner's
    pessimistic holder tracking (see :meth:`ClusterNode._replicate`)
    still reaches such a replica on the key's next write.
    """

    def __init__(self, capacity: int, floor_min_age: float = FLOOR_MIN_AGE):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.floor_min_age = floor_min_age
        self._entries = {}  # key -> (version, value, owner); insertion-ordered
        self._floor = {}  # key -> (version, monotonic stamp); insertion-ordered
        #: pushes rejected as stale (version below the key's floor or the
        #: held copy) — the fence working; CSTATUS surfaces it
        self.stale_rejects = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        """Replica value bytes for ``key``, or ``None``."""
        entry = self._entries.get(key)
        return entry[1] if entry is not None else None

    def put(self, key: str, version: int, value: bytes, owner: str):
        """Accept a replica push; returns ``(accepted, evicted)``.

        ``evicted`` is a list of ``(key, owner)`` pairs displaced by the
        capacity bound, for PUTS notices.
        """
        floor = self._floor.get(key)
        if floor is not None and version < floor[0]:
            self.stale_rejects += 1
            return False, []
        current = self._entries.get(key)
        if current is not None and version < current[0]:
            self.stale_rejects += 1
            return False, []
        self._entries.pop(key, None)  # refresh insertion order
        self._entries[key] = (version, value, owner)
        evicted = []
        while len(self._entries) > self.capacity:
            old_key, (_, _, old_owner) = next(iter(self._entries.items()))
            del self._entries[old_key]
            evicted.append((old_key, old_owner))
        return True, evicted

    def invalidate(self, key: str, version: int) -> bool:
        """Drop any replica of ``key`` strictly older than ``version``.

        Records the floor either way; returns True iff a copy was dropped.
        """
        old = self._floor.pop(key, None)  # re-insert to refresh order
        now = time.monotonic()
        self._floor[key] = (max(old[0] if old else 0, version), now)
        while len(self._floor) > 4 * self.capacity:
            oldest, (_, stamp) = next(iter(self._floor.items()))
            if now - stamp < self.floor_min_age:
                break  # young floors may fence in-flight REPLs: overgrow
            del self._floor[oldest]
        entry = self._entries.get(key)
        if entry is not None and entry[0] < version:
            del self._entries[key]
            return True
        return False

    def evict(self, key: str):
        """Voluntarily drop ``key``; returns its owner or None."""
        entry = self._entries.pop(key, None)
        return entry[2] if entry is not None else None


class PeerClient(CacheClient):
    """Owner-to-peer client speaking the cluster verbs.

    Unlike the base client, the cluster verbs default their ``trace``
    argument to the *ambient* context (:func:`current_context`): fan-outs
    run under the triggering request's span (``use_context``), so the
    propagation happens without threading a ctx through every patchable
    call-site signature.  Pass ``trace`` explicitly to override.
    """

    _BODY_TOKENS = CacheClient._BODY_TOKENS + ("CSTATUS",)

    async def repl(self, key: str, version: int, value: bytes,
                   trace=None) -> bool:
        """Push a replica; True iff the peer accepted (not STALE)."""
        trace = trace if trace is not None else current_context()
        reply = await self.transport.call("REPL", key, version, value,
                                          trace=trace)
        if reply.status == "REPLICATED":
            return True
        if reply.status == "STALE":
            return False
        raise ProtocolError(f"unexpected response {reply.status!r}")

    async def inval(self, key: str, version: int, trace=None) -> bool:
        """Invalidate the peer's replica up to ``version``."""
        trace = trace if trace is not None else current_context()
        reply = await self.transport.call("INVAL", key, version, trace=trace)
        return reply.status == "INVALED"

    async def puts(self, key: str, node: str, trace=None) -> bool:
        """Tell the owner this node dropped its replica of ``key``."""
        trace = trace if trace is not None else current_context()
        reply = await self.transport.call("PUTS", key, node, trace=trace)
        return reply.status == "OK"

    async def rget(self, key: str, trace=None):
        """Read the peer's replica of ``key``; None on a replica miss."""
        trace = trace if trace is not None else current_context()
        reply = await self.transport.call("RGET", key, trace=trace)
        if reply.status == "MISS":
            return None
        if reply.status == "VALUE":
            return reply.body if reply.body is not None else b""
        raise ProtocolError(f"unexpected response {reply.status!r}")

    async def cstatus(self) -> dict:
        """The node's cluster-level status block."""
        reply = await self.transport.call("CSTATUS")
        if reply.status != "CSTATUS":
            raise ProtocolError(f"unexpected response {reply.status!r}")
        return json.loads((reply.body or b"{}").decode("utf-8"))

    async def drain(self) -> bool:
        """Ask the peer to stop accepting connections and drain.

        The peer acks before it begins shutting down; in-flight requests
        on other connections still complete.
        """
        reply = await self.transport.call("DRAIN")
        return reply.status == "DRAINING"


class ClusterServer(CacheServer):
    """The service protocol plus the cluster verbs, bound to one node."""

    def __init__(self, node: "ClusterNode", store, **kwargs):
        super().__init__(store, **kwargs)
        self.node = node

    async def _serve_request(self, cmd: str, parts: list, reader, writer,
                             conn_id: int = 0):
        """Cluster-verb dispatch; non-cluster verbs fall through to the base.

        Same contract as the base method: ``cmd``/``parts`` are the decoded
        request line with any trace field already stripped (the shared
        ``_handle_request`` wrapper popped it and opened the request span),
        and the returned outcome label feeds ``_record_request``.
        """
        if cmd not in CLUSTER_VERBS:
            return await super()._serve_request(cmd, parts, reader, writer,
                                                conn_id)
        node = self.node

        if cmd == "SET":
            if len(parts) != 3:
                raise ProtocolError("usage: SET <key> <len>")
            key, value = parts[1], await self._read_body(reader, parts[2])
            stored = await node.handle_set(key, value)
            writer.write(b"STORED\n" if stored else b"TAGGED\n")
            return "stored" if stored else "tagged"
        elif cmd == "DEL":
            if len(parts) != 2:
                raise ProtocolError("usage: DEL <key>")
            key = parts[1]
            removed = await node.handle_delete(key)
            writer.write(b"DELETED\n" if removed else b"NOTFOUND\n")
            return "deleted" if removed else "notfound"
        elif cmd == "REPL":
            if len(parts) != 4:
                raise ProtocolError("usage: REPL <key> <version> <len>")
            key, version = parts[1], self._int(parts[2], "version")
            value = await self._read_body(reader, parts[3])
            accepted = await node.handle_repl(key, version, value)
            writer.write(b"REPLICATED\n" if accepted else b"STALE\n")
            return "replicated" if accepted else "stale"
        elif cmd == "INVAL":
            if len(parts) != 3:
                raise ProtocolError("usage: INVAL <key> <version>")
            dropped = node.handle_inval(parts[1], self._int(parts[2], "version"))
            writer.write(b"INVALED\n")
            return "dropped" if dropped else "clean"
        elif cmd == "PUTS":
            if len(parts) != 3:
                raise ProtocolError("usage: PUTS <key> <node>")
            node.handle_puts(parts[1], parts[2])
            writer.write(b"OK\n")
        elif cmd == "RGET":
            if len(parts) != 2:
                raise ProtocolError("usage: RGET <key>")
            value = node.handle_rget(parts[1])
            if value is None:
                writer.write(b"MISS\n")
                return "miss"
            writer.write(b"VALUE %d\n" % len(value))
            writer.write(value)
            writer.write(b"\n")
            return "hit"
        elif cmd == "CSTATUS":
            payload = json.dumps(node.status()).encode("utf-8")
            writer.write(b"CSTATUS %d\n" % len(payload))
            writer.write(payload)
            writer.write(b"\n")
        else:  # DRAIN
            node.draining = True
            writer.write(b"DRAINING\n")
            await writer.drain()
            # stop accepting & drain in the background; this response (and
            # every other in-flight request) still completes
            asyncio.ensure_future(self.stop())
        return None

    async def _serve_frame(self, cmd: str, fields: list, seq: int, enc,
                           writer, conn_id: int = 0):
        """v2 frame dispatch for the cluster verbs; the rest fall through.

        Mirrors :meth:`_serve_request` verb for verb, so FLOW003's
        framing-coverage check sees the cluster layer serving the same
        verb set in both framings.  Batch verbs are *not* intercepted:
        the base arms route every item through :meth:`_apply_set` /
        :meth:`_apply_delete` below, so a batched write on a cluster node
        still runs the full INVAL-before-ack fan-out per item.
        """
        if cmd not in CLUSTER_VERBS:
            return await super()._serve_frame(cmd, fields, seq, enc, writer,
                                              conn_id)
        node = self.node

        if cmd == "SET":
            stored = await node.handle_set(fields[0], fields[1])
            writer.write(enc.simple(
                STATUS_IDS["STORED" if stored else "TAGGED"], seq
            ))
            return "stored" if stored else "tagged"
        elif cmd == "DEL":
            removed = await node.handle_delete(fields[0])
            writer.write(enc.simple(
                STATUS_IDS["DELETED" if removed else "NOTFOUND"], seq
            ))
            return "deleted" if removed else "notfound"
        elif cmd == "REPL":
            key, version, value = fields
            accepted = await node.handle_repl(key, version, value)
            writer.write(enc.simple(
                STATUS_IDS["REPLICATED" if accepted else "STALE"], seq
            ))
            return "replicated" if accepted else "stale"
        elif cmd == "INVAL":
            dropped = node.handle_inval(fields[0], fields[1])
            writer.write(enc.simple(STATUS_IDS["INVALED"], seq))
            return "dropped" if dropped else "clean"
        elif cmd == "PUTS":
            node.handle_puts(fields[0], fields[1])
            writer.write(enc.simple(STATUS_IDS["OK"], seq))
        elif cmd == "RGET":
            value = node.handle_rget(fields[0])
            if value is None:
                writer.write(enc.simple(STATUS_IDS["MISS"], seq))
                return "miss"
            writer.write(enc.simple(STATUS_IDS["VALUE"], seq, value))
            return "hit"
        elif cmd == "CSTATUS":
            payload = json.dumps(node.status()).encode("utf-8")
            writer.write(enc.simple(STATUS_IDS["CSTATUS"], seq, payload))
        else:  # DRAIN
            node.draining = True
            writer.write(enc.simple(STATUS_IDS["DRAINING"], seq))
            await writer.drain()
            # stop accepting & drain in the background; this response (and
            # every other in-flight request) still completes
            asyncio.ensure_future(self.stop())
        return None

    async def _apply_set(self, key: str, value: bytes) -> bool:
        """Batched writes go through the owner write path, fan-out included."""
        return await self.node.handle_set(key, value)

    async def _apply_delete(self, key: str) -> bool:
        """Batched deletes run the same INVAL-before-ack path as singles."""
        return await self.node.handle_delete(key)

    def _record_request(self, cmd: str, parts: list, start: float,
                        elapsed: float, conn_id: int, ctx, outcome) -> None:
        if cmd not in CLUSTER_VERBS:
            super()._record_request(cmd, parts, start, elapsed, conn_id,
                                    ctx, outcome)
            return
        if cmd in ("SET", "DEL") and len(parts) > 1:
            shard_idx = self.store.shard_of(parts[1])
            self.store.shards[shard_idx].stats.record_latency(elapsed)
        key = parts[1] if cmd in ("SET", "DEL", "REPL", "INVAL", "PUTS",
                                  "RGET") and len(parts) > 1 else None
        self.node.record_request(cmd, elapsed, conn_id, start=start,
                                 ctx=ctx, key=key, outcome=outcome)

    async def _read_body(self, reader, length_token: str) -> bytes:
        length = self._int(length_token, "length")
        if not 0 <= length <= MAX_VALUE_BYTES:
            raise ProtocolError(f"length {length} out of range")
        try:
            body = await reader.readexactly(length + 1)  # value + '\n'
        except asyncio.IncompleteReadError:
            raise ProtocolError("value body truncated") from None
        if body[-1:] != b"\n":
            raise ProtocolError("value not newline-terminated")
        return body[:-1]

    @staticmethod
    def _int(token: str, what: str) -> int:
        try:
            return int(token)
        except ValueError:
            raise ProtocolError(f"bad {what} {token!r}") from None


class ClusterNode:
    """One member of a cache cluster: owner of its ring span, peer to all.

    The node owns a sharded store, the replica directory for its keys, a
    replica store for other owners' keys, and one :class:`PeerClient` per
    peer.  ``lane`` indexes the node's tracing lane (the Chrome-trace
    *process* row), so a multi-node run reads as parallel timelines.
    """

    def __init__(
        self,
        name: str,
        store: ShardedStore,
        ring,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 1,
        replica_capacity: int | None = None,
        lane: int = 0,
        peer_timeout: float = 2.0,
        obs: Observability | None = None,
        **server_kwargs,
    ):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.name = name
        self.store = store
        self.ring = ring
        self.replicas = replicas
        self.lane = lane
        self.peer_timeout = peer_timeout
        self.obs = obs if obs is not None else Observability.disabled()
        self.directory = ReplicaDirectory()
        self.replica_store = ReplicaStore(
            replica_capacity if replica_capacity is not None
            else max(1, store.data_capacity)
        )
        self.versions = {}  # key -> last version this owner assigned
        self._version_base = 0  # floor under every compacted-away counter
        self._pending_invals = {}  # key -> holders whose INVAL ack is owed
        self.draining = False
        self._peers = {}  # name -> PeerClient
        self._write_locks = {}  # key -> asyncio.Lock (pruned when idle)
        self._pending_evictions = []  # (key, kind) from the store listener
        store.set_evict_listener(self._on_store_evict)
        #: one id allocator for the node's request spans *and* its fan-out
        #: spans (the server shares it), prefixed with the node name so a
        #: merged trace's ids read as ``node0.17``
        self._trace_ids = SpanIds(name)
        self.server = ClusterServer(
            self, store, host=host, port=port, obs=self.obs,
            trace_ids=self._trace_ids, **server_kwargs
        )
        if self.obs.registry.enabled:
            self.obs.registry.gauge_callback(
                "repro_cluster_pending_invals",
                lambda: float(sum(
                    len(h) for h in self._pending_invals.values()
                )),
                help="unacked-INVAL debt currently fencing writes",
                node=name,
            )

    # -- lifecycle -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    async def start(self) -> None:
        await self.server.start()

    async def stop(self, drain_timeout: float = 5.0) -> None:
        self.draining = True
        await self.server.stop(drain_timeout)
        for peer in self._peers.values():
            await peer.close()

    def connect_peer(self, name: str, host: str, port: int) -> None:
        """Register (or re-register) a peer's address."""
        old = self._peers.pop(name, None)
        if old is not None:
            # close asynchronously; the pool may be mid-request elsewhere
            asyncio.ensure_future(old.close())
        self._peers[name] = PeerClient(
            host, port, pool_size=2, timeout=self.peer_timeout
        )

    async def disconnect_peer(self, name: str) -> None:
        peer = self._peers.pop(name, None)
        if peer is not None:
            await peer.close()
        # a removed member leaves read routing entirely, so any INVAL
        # debt owed to it is moot
        for key in [k for k, h in self._pending_invals.items() if name in h]:
            self._pending_invals[key].discard(name)
            if not self._pending_invals[key]:
                del self._pending_invals[key]

    def peer_names(self) -> tuple:
        return tuple(sorted(self._peers))

    # -- owner-side write path ------------------------------------------------

    def _key_lock(self, key: str) -> asyncio.Lock:
        lock = self._write_locks.get(key)
        if lock is None:
            lock = self._write_locks[key] = asyncio.Lock()
        return lock

    def _unlock(self, key: str, lock: asyncio.Lock) -> None:
        if not lock.locked() and self._write_locks.get(key) is lock:
            del self._write_locks[key]

    def version_of(self, key: str) -> int:
        """The key's effective version counter (base-folded after pruning)."""
        return self.versions.get(key, self._version_base)

    def _compact_versions(self) -> None:
        """Bound the version map (counters are deliberately never reset).

        Counters for keys gone from the store, the directory and the
        pending-INVAL set fold into a single global base that seeds every
        later assignment, so per-key monotonicity — the property peers'
        version floors rely on — survives the prune without per-key
        state.
        """
        limit = max(1024, 4 * self.store.data_capacity)
        if len(self.versions) <= limit:
            return
        for key in list(self.versions):
            if (key in self._pending_invals or self.store.contains(key)
                    or self.directory.state_of(key) is not State.I):
                continue
            self._version_base = max(self._version_base, self.versions.pop(key))

    async def handle_set(self, key: str, value: bytes, writer: str | None = None) -> bool:
        """Owner write: invalidate replicas, store, re-replicate, then ack.

        Raises :class:`InvalidationError` (wire: ``ERR``) when a replica
        holder cannot be invalidated — the store is left untouched and
        the write is *not* acknowledged, so the surviving old replica is
        never newer-than-acked stale.
        """
        lock = self._key_lock(key)
        async with lock:
            try:
                version = self.version_of(key) + 1
                self.versions[key] = version
                if self.store.contains(key):
                    holders = self.directory.note_update(key, writer)
                    await self._invalidate(key, version, holders)
                    stored = self.store.set(key, value)  # update in place
                else:
                    # clear any pending INVAL debt before the value lands
                    await self._invalidate(key, version, ())
                    stored = self.store.set(key, value)
                    if stored:
                        holders = self.directory.note_admit(key)
                        await self._invalidate(key, version, holders)
                await self._flush_evictions()
                self._compact_versions()
                if stored and self.replicas > 1:
                    await self._replicate(key, version, value)
                return stored
            finally:
                self._unlock(key, lock)

    async def handle_delete(self, key: str) -> bool:
        """Owner delete: invalidate every replica before dropping the key.

        Like :meth:`handle_set`, an unacked INVAL fails the delete
        (``ERR``) instead of acking with an old replica still readable;
        the unreached holders stay parked in the pending set.
        """
        lock = self._key_lock(key)
        async with lock:
            try:
                version = self.version_of(key) + 1
                self.versions[key] = version
                holders = self.directory.note_dropped(key)
                await self._invalidate(key, version, holders)
                removed = self.store.delete(key)
                await self._flush_evictions()
                self._compact_versions()
                return removed
            finally:
                self._unlock(key, lock)

    async def relinquish_key(self, key: str) -> tuple:
        """Give up ownership of ``key`` (migration): INVAL holders, drop.

        The INVAL version is bumped past the last write so the strict
        floor drops replicas of the current value too; the adopting owner
        (seeded with the un-bumped version) bumps to the same number on
        its first write, so its replication pushes clear the floor.

        Returns the holders whose INVAL ack is still missing, for the
        adopting owner to inherit (:meth:`inherit_pending`) — this node
        is leaving the key behind and can no longer collect the debt.

        Takes the key's write lock like :meth:`handle_set` /
        :meth:`handle_delete`: a client write racing the migration must
        either complete before the relinquish (and have its replicas
        invalidated here) or start after it (and be routed by the ring).
        Interleaving with a half-done write could fold a version counter
        the write is about to re-publish, breaking monotonicity.
        """
        lock = self._key_lock(key)
        async with lock:
            try:
                version = self.version_of(key) + 1
                holders = self.directory.note_dropped(key)
                await self._invalidate(key, version, holders, strict=False)
                self.store.delete(key)
                # fold into the base: were this node to own the key again,
                # its versions must not restart below a peer-recorded floor
                self._version_base = max(
                    self._version_base, self.versions.pop(key, 0)
                )
                await self._flush_evictions()
                return tuple(sorted(self._pending_invals.pop(key, ())))
            finally:
                self._unlock(key, lock)

    def inherit_pending(self, key: str, holders) -> None:
        """Adopt a relinquishing owner's unacked-INVAL debt for ``key``.

        The inherited holders join this owner's pending set, so its next
        fan-out for the key re-invalidates them and no write acks until
        they answer.
        """
        holders = {h for h in holders if h != self.name}
        if holders:
            self._pending_invals.setdefault(key, set()).update(holders)

    def adopt(self, key: str, value: bytes, version: int) -> bool:
        """Take ownership of a migrated key (store bypassing admission)."""
        self.versions[key] = max(self.version_of(key), version)
        self.replica_store.evict(key)  # owner now: the replica copy is moot
        stored = self.store.force_set(key, value)
        if stored:
            self.directory.note_admit(key)
        return stored

    def maybe_adopt(self, key: str, value: bytes, version: int) -> bool:
        """Adopt ``key`` unless this owner already assigned it a version.

        Migration publishes the ring before it copies keys, so a client
        write can reach the new owner mid-migration; that fresh write
        must win — force-adopting the migrated old value over it would
        be a silent lost update.
        """
        if key in self.versions:
            return False
        return self.adopt(key, value, version)

    # -- store eviction -> DataRepl/TagRepl ----------------------------------

    def _on_store_evict(self, key: str, kind: str) -> None:
        # runs synchronously under the store lock: just queue, the async
        # caller flushes (and awaits the INVAL fan-out) before acking
        self._pending_evictions.append((key, kind))

    async def _flush_evictions(self) -> None:
        while self._pending_evictions:
            key, kind = self._pending_evictions.pop(0)
            if kind == "data":
                holders = self.directory.note_data_evicted(key)
            else:
                holders = self.directory.note_dropped(key)
            if not holders:
                continue
            # the INVAL version is bumped past the evicted value's version
            # so the strict floor drops replicas of that exact version; the
            # bump is recorded (never reset — a reset would make peers
            # reject every replication of a re-admitted key as stale).
            # Non-strict: an unreached holder's replica still equals the
            # last acked value, so nothing is stale yet — the debt parks
            # in the pending set and fences the key's next write instead
            # of failing the unrelated operation that evicted it.
            version = self.version_of(key) + 1
            self.versions[key] = version
            await self._invalidate(key, version, holders, strict=False)

    # -- cross-node fan-out ---------------------------------------------------

    async def _invalidate(self, key: str, version: int, holders,
                          strict: bool = True) -> None:
        """Send INVAL to every holder and await the acks (before any ack
        of the operation that triggered it — the consistency linchpin).

        Holders still owed an INVAL from an earlier fan-out (the key's
        pending set) are always re-targeted.  A holder that does not ack
        after one retry is parked in the pending set, and with
        ``strict`` the triggering operation fails
        (:class:`InvalidationError`) rather than acking a write whose
        old copies may still be served — a slow peer keeps its replica;
        only the version floor on *recovery* is not enough.
        """
        targets = sorted(set(holders) | self._pending_invals.get(key, set()))
        if not targets:
            return
        tr = self.obs.tracer
        # the fan-out span: child of the request span that triggered it
        # (found via the contextvar — eviction fan-outs with no active
        # request become roots), propagated to each peer on the wire so
        # the peers' INVAL spans join the same tree
        ctx = self._trace_ids.begin(current_context()) if tr.enabled else None
        start = clock()
        # the rounds run under the fan-out span (a no-op re-set when
        # tracing is off), so each _inval_one picks the parent up from the
        # contextvar — keeping its signature patchable in tests
        with use_context(ctx if ctx is not None else current_context()):
            failed = await self._inval_round(targets, key, version)
            if failed:
                # one immediate retry: pool contention or a slow peer, not
                # necessarily a dead one
                failed = await self._inval_round(failed, key, version)
        registry = self.obs.registry
        if registry.enabled:
            registry.counter(
                "repro_cluster_invalidations_total",
                help="INVAL messages fanned out to replica holders",
                node=self.name,
            ).inc(len(targets))
            if failed:
                registry.counter(
                    "repro_cluster_inval_failures_total",
                    help="INVAL sends with no ack after retry",
                    node=self.name,
                ).inc(len(failed))
        # Merge, never overwrite: the eviction path fans out without the
        # key's write lock, so another round for the same key may have
        # parked debt of its own while this one awaited its acks.
        # Subtracting this round's acked holders and unioning its failed
        # ones is commutative across rounds; assigning (or popping) the
        # set wholesale would silently forgive a concurrent round's
        # unacked INVAL.
        acked = set(targets) - set(failed)
        pend = self._pending_invals.get(key)
        if failed:
            if pend is None:
                pend = self._pending_invals.setdefault(key, set())
            pend.difference_update(acked)
            pend.update(failed)
            log.warning(
                "%s: %d/%d INVAL(s) for %r unacked after retry; holders "
                "%s parked pending — no write to the key acks until they "
                "answer or leave the cluster",
                self.name, len(failed), len(targets), key, failed,
            )
        elif pend is not None:
            pend.difference_update(acked)
            if not pend:
                del self._pending_invals[key]
        if tr.enabled:
            tr.emit(
                "INVAL", cat=CAT_CLUSTER, ts=start, pid=self.lane, tid=0,
                dur=clock() - start,
                args=span_args(ctx, key=key, holders=len(targets)),
            )
        if failed and strict:
            raise InvalidationError(
                f"inval fan-out incomplete for {key!r}: no ack from "
                f"{','.join(failed)}"
            )

    async def _inval_round(self, targets, key: str, version: int) -> list:
        """One concurrent INVAL round; returns the holders that did not ack."""
        results = await asyncio.gather(
            *[self._inval_one(h, key, version) for h in targets],
            return_exceptions=True,
        )
        return [h for h, r in zip(targets, results) if r is not True]

    async def _inval_one(self, holder: str, key: str, version: int) -> bool:
        peer = self._peers.get(holder)
        if peer is None:
            # not a member any more: it left read routing with its peer
            # registration, so there is no replica left to invalidate
            return True
        return await asyncio.wait_for(
            peer.inval(key, version), self.peer_timeout
        )

    async def _replicate(self, key: str, version: int, value: bytes) -> None:
        """Push the freshly stored value to the key's ring successors.

        Each target is recorded as a holder *before* its push: a timed
        out push may still be delivered and stored (cancellation does
        not undeliver the request bytes), and an untracked holder would
        be invisible to every future INVAL fan-out — a stale replica no
        write could ever clear.  Only a confirmed ``STALE`` rejection
        proves the peer kept nothing and untracks it; after a transport
        failure the possibly-phantom holder stays, costing at worst one
        spurious INVAL on the key's next write.
        """
        targets = [
            n for n in self.ring.preference(key, self.replicas)
            if n != self.name and n in self._peers
        ]
        if not targets:
            return
        tr = self.obs.tracer
        ctx = self._trace_ids.begin(current_context()) if tr.enabled else None
        start = clock()
        with use_context(ctx if ctx is not None else current_context()):
            for target in targets:
                self.directory.note_replicate(key, target)
                try:
                    accepted = await asyncio.wait_for(
                        self._peers[target].repl(key, version, value),
                        self.peer_timeout,
                    )
                except (ConnectionError, asyncio.TimeoutError, OSError):
                    accepted = None  # unknown: the push may still land
                if accepted is False:
                    self.directory.note_replica_evicted(key, target)
                if self.obs.registry.enabled:
                    self.obs.registry.counter(
                        "repro_cluster_replications_total",
                        help="replica pushes, by acceptance",
                        node=self.name,
                        accepted=("unknown" if accepted is None
                                  else str(accepted).lower()),
                    ).inc()
        if tr.enabled:
            tr.emit(
                "REPL", cat=CAT_CLUSTER, ts=start, pid=self.lane, tid=0,
                dur=clock() - start,
                args=span_args(ctx, key=key, targets=len(targets)),
            )

    # -- peer-side handlers ---------------------------------------------------

    async def handle_repl(self, key: str, version: int, value: bytes) -> bool:
        owner = self.ring.owner(key) if len(self.ring) else ""
        accepted, evicted = self.replica_store.put(key, version, value, owner)
        for evicted_key, evicted_owner in evicted:
            await self._send_puts(evicted_key, evicted_owner)
        return accepted

    def handle_inval(self, key: str, version: int) -> bool:
        dropped = self.replica_store.invalidate(key, version)
        if self.obs.registry.enabled:
            self.obs.registry.counter(
                "repro_cluster_invals_received_total",
                help="INVAL messages applied to the local replica store",
                node=self.name,
            ).inc()
        tr = self.obs.tracer
        if tr.enabled and dropped:
            # audit instant hanging off this INVAL's request span: the
            # moment the replica actually left this holder
            tr.emit(
                REPLICA_INVALIDATED, cat=CAT_AUDIT, ts=clock(),
                pid=self.lane, tid=0,
                args=leaf_args(current_context(), key=key, version=version),
            )
        return dropped

    def handle_puts(self, key: str, holder: str) -> None:
        self.directory.note_replica_evicted(key, holder)

    def handle_rget(self, key: str):
        value = self.replica_store.get(key)
        if self.obs.registry.enabled:
            self.obs.registry.counter(
                "repro_cluster_replica_reads_total",
                help="RGET lookups against the local replica store",
                node=self.name,
                outcome="hit" if value is not None else "miss",
            ).inc()
        return value

    async def _send_puts(self, key: str, owner: str) -> None:
        peer = self._peers.get(owner)
        if peer is None:
            return
        try:
            await asyncio.wait_for(
                peer.puts(key, self.name, trace=current_context()),
                self.peer_timeout,
            )
        except (ConnectionError, asyncio.TimeoutError, OSError):
            pass  # best-effort notice; the owner's INVAL still finds nothing

    # -- introspection --------------------------------------------------------

    def record_request(self, cmd: str, elapsed: float, conn_id: int,
                       start: float | None = None, ctx=None,
                       key: str | None = None, outcome=None) -> None:
        """Counters + tracing for one cluster-verb request."""
        registry = self.obs.registry
        if registry.enabled:
            registry.counter(
                "repro_cluster_requests_total",
                help="cluster-verb requests answered, by node and verb",
                node=self.name, cmd=cmd,
            ).inc()
            registry.histogram(
                "repro_cluster_request_latency_seconds",
                help="cluster-verb service time, by node",
                node=self.name,
            ).observe(elapsed)
        tr = self.obs.tracer
        if tr.enabled:
            extra = {}
            if key is not None:
                extra["key"] = key
            if outcome is not None:
                extra["outcome"] = outcome
            tr.emit(
                cmd, cat=CAT_CLUSTER,
                ts=start if start is not None else clock() - elapsed,
                pid=self.lane, tid=conn_id, dur=elapsed,
                args=span_args(ctx, **extra),
            )

    def status(self) -> dict:
        """The CSTATUS block: ownership, replication and protocol health."""
        return {
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "draining": self.draining,
            "stored": len(self.store),
            "data_capacity": self.store.data_capacity,
            "replicas_held": len(self.replica_store),
            "replica_capacity": self.replica_store.capacity,
            "directory_entries": len(self.directory),
            "directory_holders": self.directory.tracked_holders,
            "protocol_races": self.directory.races,
            "versions_tracked": len(self.versions),
            "pending_invals": sum(
                len(h) for h in self._pending_invals.values()
            ),
            "stale_rejects": self.replica_store.stale_rejects,
            "eventloop_lag_s": self.server.eventloop_lag,
            "uptime_s": self.server.uptime_s,
            "connections_v1": self.server.connections_v1,
            "connections_v2": self.server.connections_v2,
            "peers": list(self.peer_names()),
            "replication_factor": self.replicas,
        }
