"""One cluster node: an owner store, a replica store, and the wire verbs.

A :class:`ClusterNode` wraps the single-process serving stack
(:class:`~repro.service.sharding.ShardedStore` behind a
:class:`~repro.service.server.CacheServer`) and adds the cross-node
machinery of :mod:`repro.coherence.distributed`:

* as the **owner** of the keys the ring assigns it, the node keeps a
  :class:`~repro.coherence.distributed.ReplicaDirectory` — tag-only
  entries naming which peers hold a replica — and turns every write,
  delete, and store-internal eviction into the protocol's ``INVAL``
  fan-out *before* acknowledging the triggering operation;
* as a **peer**, it holds versioned read-only replicas pushed by other
  owners in a bounded :class:`ReplicaStore`, serving them over ``RGET``
  and dropping them on ``INVAL``.

Wire verbs added on top of the :mod:`repro.service` protocol (all
line-framed, same framing rules):

=========================================  =================================
request                                    response
=========================================  =================================
``REPL <key> <version> <len>\\n<bytes>\\n``  ``REPLICATED\\n`` or ``STALE\\n``
``INVAL <key> <version>\\n``                ``INVALED\\n``
``PUTS <key> <node>\\n``                    ``OK\\n``
``RGET <key>\\n``                           ``VALUE <len>\\n<bytes>\\n``/``MISS\\n``
``CSTATUS\\n``                              ``CSTATUS <len>\\n<json>\\n``
``DRAIN\\n``                                ``DRAINING\\n`` (node stops
                                           accepting, drains in-flight)
=========================================  =================================

Writes carry a per-key monotonic **version** assigned by the owner.
``INVAL`` establishes a *floor*: a peer that saw ``INVAL(key, v)`` rejects
any later ``REPL(key, v' <= v)`` as ``STALE``, so a replication push that
raced a newer write can never resurrect an old value.  Because the owner
awaits every ``INVAL`` ack before acknowledging the write, an acknowledged
write guarantees no replica of an older version survives anywhere — the
cluster-wide version of the paper's rule that a line leaves the data array
the moment its tag group changes.
"""

from __future__ import annotations

import asyncio
import json

from ..obs import Observability
from ..obs.logging import get_logger
from ..obs.prof import clock
from ..coherence.distributed import ReplicaDirectory
from ..service.client import CacheClient
from ..service.server import (
    MAX_VALUE_BYTES,
    CacheServer,
    ProtocolError,
)
from ..service.sharding import ShardedStore

log = get_logger(__name__)

#: wire verbs handled by the cluster layer (the rest fall through to the
#: base service protocol)
CLUSTER_VERBS = ("SET", "DEL", "REPL", "INVAL", "PUTS", "RGET", "CSTATUS",
                 "DRAIN")

#: tracing category for cross-node flows
CAT_CLUSTER = "cluster"


class ReplicaStore:
    """Bounded, versioned store of read-only replicas held for peers.

    Entries are ``key -> (version, value, owner)``; capacity is enforced
    FIFO (oldest push evicted first) and evictions are reported back so the
    node can send the owner a ``PUTS`` notice.  ``invalidate(key, v)``
    drops any replica *strictly older* than ``v`` and records ``v`` as the
    key's version floor; pushes strictly below the floor are rejected —
    the ordering guard described in the module docstring.  The bounds are
    strict so the fan-out for version ``v`` (INVAL first, REPL after the
    acks) invalidates every older copy yet still lets the version-``v``
    value itself replicate; a REPL retried after a lost response is
    likewise accepted idempotently rather than misreported as stale.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries = {}  # key -> (version, value, owner); insertion-ordered
        self._floor = {}  # key -> minimum rejected version (insertion-ordered)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        """Replica value bytes for ``key``, or ``None``."""
        entry = self._entries.get(key)
        return entry[1] if entry is not None else None

    def put(self, key: str, version: int, value: bytes, owner: str):
        """Accept a replica push; returns ``(accepted, evicted)``.

        ``evicted`` is a list of ``(key, owner)`` pairs displaced by the
        capacity bound, for PUTS notices.
        """
        if version < self._floor.get(key, 0):
            return False, []
        current = self._entries.get(key)
        if current is not None and version < current[0]:
            return False, []
        self._entries.pop(key, None)  # refresh insertion order
        self._entries[key] = (version, value, owner)
        evicted = []
        while len(self._entries) > self.capacity:
            old_key, (_, _, old_owner) = next(iter(self._entries.items()))
            del self._entries[old_key]
            evicted.append((old_key, old_owner))
        return True, evicted

    def invalidate(self, key: str, version: int) -> bool:
        """Drop any replica of ``key`` strictly older than ``version``.

        Records the floor either way; returns True iff a copy was dropped.
        """
        floor = self._floor.pop(key, 0)  # re-insert to refresh order
        self._floor[key] = max(floor, version)
        while len(self._floor) > 4 * self.capacity:
            self._floor.pop(next(iter(self._floor)))
        entry = self._entries.get(key)
        if entry is not None and entry[0] < version:
            del self._entries[key]
            return True
        return False

    def evict(self, key: str):
        """Voluntarily drop ``key``; returns its owner or None."""
        entry = self._entries.pop(key, None)
        return entry[2] if entry is not None else None


class PeerClient(CacheClient):
    """Owner-to-peer client speaking the cluster verbs."""

    _BODY_TOKENS = CacheClient._BODY_TOKENS + ("CSTATUS",)

    async def repl(self, key: str, version: int, value: bytes) -> bool:
        """Push a replica; True iff the peer accepted (not STALE)."""
        payload = b"REPL %s %d %d\n%s\n" % (
            key.encode("utf-8"), version, len(value), value,
        )
        tokens, _ = await self._request(payload)
        if tokens[0] == "REPLICATED":
            return True
        if tokens[0] == "STALE":
            return False
        raise ProtocolError(f"unexpected response {tokens!r}")

    async def inval(self, key: str, version: int) -> bool:
        """Invalidate the peer's replica up to ``version``."""
        tokens, _ = await self._request(
            f"INVAL {key} {version}\n".encode("utf-8")
        )
        return tokens[0] == "INVALED"

    async def puts(self, key: str, node: str) -> bool:
        """Tell the owner this node dropped its replica of ``key``."""
        tokens, _ = await self._request(f"PUTS {key} {node}\n".encode("utf-8"))
        return tokens[0] == "OK"

    async def rget(self, key: str):
        """Read the peer's replica of ``key``; None on a replica miss."""
        tokens, body = await self._request(f"RGET {key}\n".encode("utf-8"))
        if tokens[0] == "MISS":
            return None
        if tokens[0] == "VALUE":
            return body
        raise ProtocolError(f"unexpected response {tokens!r}")

    async def cstatus(self) -> dict:
        """The node's cluster-level status block."""
        tokens, body = await self._request(b"CSTATUS\n")
        if tokens[0] != "CSTATUS":
            raise ProtocolError(f"unexpected response {tokens!r}")
        return json.loads(body.decode("utf-8"))


class ClusterServer(CacheServer):
    """The service protocol plus the cluster verbs, bound to one node."""

    def __init__(self, node: "ClusterNode", store, **kwargs):
        super().__init__(store, **kwargs)
        self.node = node

    async def _serve_request(self, line: bytes, reader, writer, conn_id: int = 0) -> None:
        try:
            parts = line.decode("utf-8").split()
        except UnicodeDecodeError:
            raise ProtocolError("request not utf-8") from None
        cmd = parts[0].upper() if parts else ""
        if cmd not in CLUSTER_VERBS:
            await super()._serve_request(line, reader, writer, conn_id)
            return
        start = clock()
        node = self.node

        if cmd == "SET":
            if len(parts) != 3:
                raise ProtocolError("usage: SET <key> <len>")
            key, value = parts[1], await self._read_body(reader, parts[2])
            stored = await node.handle_set(key, value)
            writer.write(b"STORED\n" if stored else b"TAGGED\n")
        elif cmd == "DEL":
            if len(parts) != 2:
                raise ProtocolError("usage: DEL <key>")
            key = parts[1]
            removed = await node.handle_delete(key)
            writer.write(b"DELETED\n" if removed else b"NOTFOUND\n")
        elif cmd == "REPL":
            if len(parts) != 4:
                raise ProtocolError("usage: REPL <key> <version> <len>")
            key, version = parts[1], self._int(parts[2], "version")
            value = await self._read_body(reader, parts[3])
            accepted = await node.handle_repl(key, version, value)
            writer.write(b"REPLICATED\n" if accepted else b"STALE\n")
        elif cmd == "INVAL":
            if len(parts) != 3:
                raise ProtocolError("usage: INVAL <key> <version>")
            node.handle_inval(parts[1], self._int(parts[2], "version"))
            writer.write(b"INVALED\n")
        elif cmd == "PUTS":
            if len(parts) != 3:
                raise ProtocolError("usage: PUTS <key> <node>")
            node.handle_puts(parts[1], parts[2])
            writer.write(b"OK\n")
        elif cmd == "RGET":
            if len(parts) != 2:
                raise ProtocolError("usage: RGET <key>")
            value = node.handle_rget(parts[1])
            if value is None:
                writer.write(b"MISS\n")
            else:
                writer.write(b"VALUE %d\n" % len(value))
                writer.write(value)
                writer.write(b"\n")
        elif cmd == "CSTATUS":
            payload = json.dumps(node.status()).encode("utf-8")
            writer.write(b"CSTATUS %d\n" % len(payload))
            writer.write(payload)
            writer.write(b"\n")
        else:  # DRAIN
            node.draining = True
            writer.write(b"DRAINING\n")
            await writer.drain()
            # stop accepting & drain in the background; this response (and
            # every other in-flight request) still completes
            asyncio.ensure_future(self.stop())

        await writer.drain()
        elapsed = clock() - start
        if cmd in ("SET", "DEL"):
            shard_idx = self.store.shard_of(parts[1])
            self.store.shards[shard_idx].stats.record_latency(elapsed)
        node.record_request(cmd, elapsed, conn_id)

    async def _read_body(self, reader, length_token: str) -> bytes:
        length = self._int(length_token, "length")
        if not 0 <= length <= MAX_VALUE_BYTES:
            raise ProtocolError(f"length {length} out of range")
        try:
            body = await reader.readexactly(length + 1)  # value + '\n'
        except asyncio.IncompleteReadError:
            raise ProtocolError("value body truncated") from None
        if body[-1:] != b"\n":
            raise ProtocolError("value not newline-terminated")
        return body[:-1]

    @staticmethod
    def _int(token: str, what: str) -> int:
        try:
            return int(token)
        except ValueError:
            raise ProtocolError(f"bad {what} {token!r}") from None


class ClusterNode:
    """One member of a cache cluster: owner of its ring span, peer to all.

    The node owns a sharded store, the replica directory for its keys, a
    replica store for other owners' keys, and one :class:`PeerClient` per
    peer.  ``lane`` indexes the node's tracing lane (the Chrome-trace
    *process* row), so a multi-node run reads as parallel timelines.
    """

    def __init__(
        self,
        name: str,
        store: ShardedStore,
        ring,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 1,
        replica_capacity: int | None = None,
        lane: int = 0,
        peer_timeout: float = 2.0,
        obs: Observability | None = None,
        **server_kwargs,
    ):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.name = name
        self.store = store
        self.ring = ring
        self.replicas = replicas
        self.lane = lane
        self.peer_timeout = peer_timeout
        self.obs = obs if obs is not None else Observability.disabled()
        self.directory = ReplicaDirectory()
        self.replica_store = ReplicaStore(
            replica_capacity if replica_capacity is not None
            else max(1, store.data_capacity)
        )
        self.versions = {}  # key -> last version this owner assigned
        self.draining = False
        self._peers = {}  # name -> PeerClient
        self._write_locks = {}  # key -> asyncio.Lock (pruned when idle)
        self._pending_evictions = []  # (key, kind) from the store listener
        store.set_evict_listener(self._on_store_evict)
        self.server = ClusterServer(
            self, store, host=host, port=port, obs=self.obs, **server_kwargs
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    async def start(self) -> None:
        await self.server.start()

    async def stop(self, drain_timeout: float = 5.0) -> None:
        self.draining = True
        await self.server.stop(drain_timeout)
        for peer in self._peers.values():
            await peer.close()

    def connect_peer(self, name: str, host: str, port: int) -> None:
        """Register (or re-register) a peer's address."""
        old = self._peers.pop(name, None)
        if old is not None:
            # close asynchronously; the pool may be mid-request elsewhere
            asyncio.ensure_future(old.close())
        self._peers[name] = PeerClient(
            host, port, pool_size=2, timeout=self.peer_timeout
        )

    async def disconnect_peer(self, name: str) -> None:
        peer = self._peers.pop(name, None)
        if peer is not None:
            await peer.close()

    def peer_names(self) -> tuple:
        return tuple(sorted(self._peers))

    # -- owner-side write path ------------------------------------------------

    def _key_lock(self, key: str) -> asyncio.Lock:
        lock = self._write_locks.get(key)
        if lock is None:
            lock = self._write_locks[key] = asyncio.Lock()
        return lock

    def _unlock(self, key: str, lock: asyncio.Lock) -> None:
        if not lock.locked() and self._write_locks.get(key) is lock:
            del self._write_locks[key]

    async def handle_set(self, key: str, value: bytes, writer: str | None = None) -> bool:
        """Owner write: invalidate replicas, store, re-replicate, then ack."""
        lock = self._key_lock(key)
        async with lock:
            try:
                version = self.versions.get(key, 0) + 1
                self.versions[key] = version
                if self.store.contains(key):
                    holders = self.directory.note_update(key, writer)
                    await self._invalidate(key, version, holders)
                    stored = self.store.set(key, value)  # update in place
                else:
                    stored = self.store.set(key, value)
                    if stored:
                        holders = self.directory.note_admit(key)
                        await self._invalidate(key, version, holders)
                await self._flush_evictions()
                if stored and self.replicas > 1:
                    await self._replicate(key, version, value)
                return stored
            finally:
                self._unlock(key, lock)

    async def handle_delete(self, key: str) -> bool:
        """Owner delete: invalidate every replica before dropping the key."""
        lock = self._key_lock(key)
        async with lock:
            try:
                version = self.versions.get(key, 0) + 1
                self.versions[key] = version
                holders = self.directory.note_dropped(key)
                await self._invalidate(key, version, holders)
                removed = self.store.delete(key)
                await self._flush_evictions()
                return removed
            finally:
                self._unlock(key, lock)

    async def relinquish_key(self, key: str) -> None:
        """Give up ownership of ``key`` (migration): INVAL holders, drop.

        The INVAL version is bumped past the last write so the strict
        floor drops replicas of the current value too; the adopting owner
        (seeded with the un-bumped version) bumps to the same number on
        its first write, so its replication pushes clear the floor.
        """
        version = self.versions.get(key, 0) + 1
        holders = self.directory.note_dropped(key)
        await self._invalidate(key, version, holders)
        self.store.delete(key)
        self.versions.pop(key, None)
        await self._flush_evictions()

    def adopt(self, key: str, value: bytes, version: int) -> bool:
        """Take ownership of a migrated key (store bypassing admission)."""
        self.versions[key] = max(self.versions.get(key, 0), version)
        stored = self.store.force_set(key, value)
        if stored:
            self.directory.note_admit(key)
        return stored

    # -- store eviction -> DataRepl/TagRepl ----------------------------------

    def _on_store_evict(self, key: str, kind: str) -> None:
        # runs synchronously under the store lock: just queue, the async
        # caller flushes (and awaits the INVAL fan-out) before acking
        self._pending_evictions.append((key, kind))

    async def _flush_evictions(self) -> None:
        while self._pending_evictions:
            key, kind = self._pending_evictions.pop(0)
            if kind == "data":
                holders = self.directory.note_data_evicted(key)
            else:
                holders = self.directory.note_dropped(key)
            if not holders:
                continue
            # the INVAL version is bumped past the evicted value's version
            # so the strict floor drops replicas of that exact version; the
            # bump is recorded (never reset — a reset would make peers
            # reject every replication of a re-admitted key as stale)
            version = self.versions.get(key, 0) + 1
            self.versions[key] = version
            await self._invalidate(key, version, holders)

    # -- cross-node fan-out ---------------------------------------------------

    async def _invalidate(self, key: str, version: int, holders) -> None:
        """Send INVAL to every holder and await the acks (before any ack
        of the operation that triggered it — the consistency linchpin)."""
        if not holders:
            return
        tr = self.obs.tracer
        start = clock()
        results = await asyncio.gather(
            *[self._inval_one(h, key, version) for h in holders],
            return_exceptions=True,
        )
        failures = sum(1 for r in results if r is not True)
        registry = self.obs.registry
        if registry.enabled:
            registry.counter(
                "repro_cluster_invalidations_total",
                help="INVAL messages fanned out to replica holders",
                node=self.name,
            ).inc(len(holders))
            if failures:
                registry.counter(
                    "repro_cluster_inval_failures_total",
                    help="INVAL sends that failed (peer down or timed out)",
                    node=self.name,
                ).inc(failures)
        if failures:
            log.warning(
                "%s: %d/%d INVAL(s) for %r failed; the peer is unreachable "
                "and will reject stale pushes by version floor on recovery",
                self.name, failures, len(holders), key,
            )
        if tr.enabled:
            tr.emit(
                "INVAL", cat=CAT_CLUSTER, ts=start, pid=self.lane, tid=0,
                dur=clock() - start,
                args={"key": key, "holders": len(holders)},
            )

    async def _inval_one(self, holder: str, key: str, version: int) -> bool:
        peer = self._peers.get(holder)
        if peer is None:
            return False
        return await asyncio.wait_for(
            peer.inval(key, version), self.peer_timeout
        )

    async def _replicate(self, key: str, version: int, value: bytes) -> None:
        """Push the freshly stored value to the key's ring successors."""
        targets = [
            n for n in self.ring.preference(key, self.replicas)
            if n != self.name and n in self._peers
        ]
        if not targets:
            return
        tr = self.obs.tracer
        start = clock()
        for target in targets:
            try:
                accepted = await asyncio.wait_for(
                    self._peers[target].repl(key, version, value),
                    self.peer_timeout,
                )
            except (ConnectionError, asyncio.TimeoutError, OSError):
                accepted = False
            if accepted:
                self.directory.note_replicate(key, target)
            if self.obs.registry.enabled:
                self.obs.registry.counter(
                    "repro_cluster_replications_total",
                    help="replica pushes, by acceptance",
                    node=self.name,
                    accepted=str(accepted).lower(),
                ).inc()
        if tr.enabled:
            tr.emit(
                "REPL", cat=CAT_CLUSTER, ts=start, pid=self.lane, tid=0,
                dur=clock() - start,
                args={"key": key, "targets": len(targets)},
            )

    # -- peer-side handlers ---------------------------------------------------

    async def handle_repl(self, key: str, version: int, value: bytes) -> bool:
        owner = self.ring.owner(key) if len(self.ring) else ""
        accepted, evicted = self.replica_store.put(key, version, value, owner)
        for evicted_key, evicted_owner in evicted:
            await self._send_puts(evicted_key, evicted_owner)
        return accepted

    def handle_inval(self, key: str, version: int) -> bool:
        dropped = self.replica_store.invalidate(key, version)
        if self.obs.registry.enabled:
            self.obs.registry.counter(
                "repro_cluster_invals_received_total",
                help="INVAL messages applied to the local replica store",
                node=self.name,
            ).inc()
        return dropped

    def handle_puts(self, key: str, holder: str) -> None:
        self.directory.note_replica_evicted(key, holder)

    def handle_rget(self, key: str):
        value = self.replica_store.get(key)
        if self.obs.registry.enabled:
            self.obs.registry.counter(
                "repro_cluster_replica_reads_total",
                help="RGET lookups against the local replica store",
                node=self.name,
                outcome="hit" if value is not None else "miss",
            ).inc()
        return value

    async def _send_puts(self, key: str, owner: str) -> None:
        peer = self._peers.get(owner)
        if peer is None:
            return
        try:
            await asyncio.wait_for(peer.puts(key, self.name), self.peer_timeout)
        except (ConnectionError, asyncio.TimeoutError, OSError):
            pass  # best-effort notice; the owner's INVAL still finds nothing

    # -- introspection --------------------------------------------------------

    def record_request(self, cmd: str, elapsed: float, conn_id: int) -> None:
        """Counters + tracing for one cluster-verb request."""
        registry = self.obs.registry
        if registry.enabled:
            registry.counter(
                "repro_cluster_requests_total",
                help="cluster-verb requests answered, by node and verb",
                node=self.name, cmd=cmd,
            ).inc()
            registry.histogram(
                "repro_cluster_request_latency_seconds",
                help="cluster-verb service time, by node",
                node=self.name,
            ).observe(elapsed)
        tr = self.obs.tracer
        if tr.enabled:
            tr.emit(
                cmd, cat=CAT_CLUSTER, ts=clock() - elapsed, pid=self.lane,
                tid=conn_id, dur=elapsed,
            )

    def status(self) -> dict:
        """The CSTATUS block: ownership, replication and protocol health."""
        return {
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "draining": self.draining,
            "stored": len(self.store),
            "data_capacity": self.store.data_capacity,
            "replicas_held": len(self.replica_store),
            "replica_capacity": self.replica_store.capacity,
            "directory_entries": len(self.directory),
            "directory_holders": self.directory.tracked_holders,
            "protocol_races": self.directory.races,
            "versions_tracked": len(self.versions),
            "peers": list(self.peer_names()),
            "replication_factor": self.replicas,
        }
