"""Invalidation-storm consistency checker for the cache cluster.

The cluster's contract is *read-your-acked-writes, everywhere*: once a
write is acknowledged, no client — reading the owner or any replica —
may observe an older value, because the owner fanned out ``INVAL`` to
every replica holder and awaited the acks before acking the write.

:func:`run_storm` attacks that contract directly.  Concurrent writers
hammer a small hot keyset (small on purpose: every overwrite triggers an
invalidation, so the replica-invalidation path is exercised constantly,
not occasionally) while concurrent readers spread over replicas.  Values
are self-describing — ``<key>:<counter>`` — and each key carries a
*floor*: the highest counter whose write has been acknowledged.  The
race discipline is one-sided on purpose:

* writers raise the floor only **after** the ack returns, and
* readers snapshot the floor **before** issuing the read,

so a read that observes ``counter < floor_before_read`` is unambiguously
stale — the write was fully acked before the read even started — while
a read racing an in-flight write is never miscounted.  Misses are legal
at any time (a freshly invalidated replica, a reuse-cache admission
decline, a capacity eviction); only an *old value* is a violation.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field


@dataclass
class StormReport:
    """Outcome of one invalidation storm."""

    writes: int = 0
    deletes: int = 0
    reads: int = 0
    read_hits: int = 0
    read_misses: int = 0
    stale_reads: int = 0
    violations: list = field(default_factory=list)  # (key, seen, floor)

    @property
    def ok(self) -> bool:
        return self.stale_reads == 0

    def to_dict(self) -> dict:
        return {
            "writes": self.writes,
            "deletes": self.deletes,
            "reads": self.reads,
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "stale_reads": self.stale_reads,
            "ok": self.ok,
            "violations": [
                {"key": k, "seen": s, "acked_floor": f}
                for k, s, f in self.violations[:20]
            ],
        }


def encode_value(key: str, counter: int) -> bytes:
    """Self-describing storm value: ``<key>:<counter>``."""
    return f"{key}:{counter:08d}".encode("utf-8")


def decode_counter(key: str, value: bytes) -> int:
    """The counter a storm value carries (raises on foreign values)."""
    text = value.decode("utf-8")
    prefix = f"{key}:"
    if not text.startswith(prefix):
        raise ValueError(f"value {text!r} does not belong to key {key!r}")
    return int(text[len(prefix):])


async def run_storm(
    client,
    num_keys: int = 16,
    writers: int = 4,
    readers: int = 8,
    writes_per_writer: int = 50,
    delete_every: int = 7,
    key_prefix: str = "storm",
) -> StormReport:
    """Run an invalidation storm through ``client``; count stale reads.

    ``client`` is a :class:`~repro.cluster.client.ClusterClient` (any
    object with async ``get``/``set``/``delete`` works).  Readers run
    until every writer finishes.  A zero ``stale_reads`` in the returned
    :class:`StormReport` is the cluster's consistency certificate.
    """
    keys = [f"{key_prefix}:{i}" for i in range(num_keys)]
    counters = {k: 0 for k in keys}  # next counter to write
    floors = {k: 0 for k in keys}  # highest *acked* counter
    report = StormReport()
    done = asyncio.Event()

    async def writer(wid: int) -> None:
        # each writer owns a disjoint key slice, so per-key counters and
        # floors are single-writer — a racing pair of writers could
        # otherwise ack out of payload order and fake a staleness report
        my_keys = keys[wid::writers]
        if not my_keys:
            return
        for step in range(writes_per_writer):
            key = my_keys[step % len(my_keys)]
            if delete_every and step % delete_every == delete_every - 1:
                await client.delete(key)
                report.deletes += 1
                continue
            counters[key] += 1
            counter = counters[key]
            await client.set(key, encode_value(key, counter))
            # the ack is back: from here on, no reader may see < counter
            report.writes += 1
            if counter > floors[key]:
                floors[key] = counter

    async def reader(rid: int) -> None:
        step = 0
        while not done.is_set():
            key = keys[(rid + step) % num_keys]
            step += 1
            floor = floors[key]
            value = await client.get(key)
            report.reads += 1
            if value is None:
                report.read_misses += 1
                continue
            report.read_hits += 1
            seen = decode_counter(key, value)
            # counters are never reset (deletes only create legal misses),
            # so any value older than the pre-read acked floor is stale
            if seen < floor:
                report.stale_reads += 1
                report.violations.append((key, seen, floor))
            await asyncio.sleep(0)  # yield so writers interleave

    reader_tasks = [asyncio.ensure_future(reader(r)) for r in range(readers)]
    await asyncio.gather(*[writer(w) for w in range(writers)])
    done.set()
    await asyncio.gather(*reader_tasks)
    return report
