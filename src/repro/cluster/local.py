"""Boot and manage an N-node cache cluster inside one process.

:class:`LocalCluster` is the cluster's test/bench/CI harness and the body
behind ``repro cluster serve``: it builds N :class:`ClusterNode` servers on
loopback ports, wires every node to every peer, and hands out
:class:`ClusterClient` instances that *share the cluster's ring object*, so
membership changes propagate to routing atomically (no config-push
window).  Traffic still crosses real asyncio TCP sockets — the in-process
part is only construction and migration.

Join/leave implement the bounded-rebalancing contract of the consistent
ring:

* ``add_node`` boots the node, adds it to the ring (only keys whose owner
  becomes the new node change hands — roughly ``1/(N+1)`` of them), then
  migrates exactly those keys: the old owner invalidates their replica
  holders and drops them *first*, then the new owner adopts value *and
  version* so the version-floor ordering survives the move.  Because the
  ring is published before the copy, a client write can reach the new
  owner mid-migration; adoption is skipped for any key the new owner has
  already versioned (``maybe_adopt``), so the fresh write wins instead of
  being silently clobbered by the migrated old value;
* ``remove_node`` drains the node (stop accepting, finish in-flight),
  removes it from the ring, migrates its keys to their ring successors,
  and invalidates whatever replicas it still tracked.
"""

from __future__ import annotations

import asyncio

from ..obs import Observability
from ..obs.logging import get_logger
from ..service.sharding import ShardedStore
from .client import ClusterClient
from .node import ClusterNode
from .ring import DEFAULT_VNODES, HashRing

log = get_logger(__name__)


class LocalCluster:
    """N cluster nodes in one process, behind one shared hash ring."""

    def __init__(
        self,
        num_nodes: int = 3,
        data_capacity_per_node: int = 512,
        tag_capacity_per_node: int | None = None,
        tag_assoc: int = 8,
        shards_per_node: int = 2,
        admission: str = "reuse",
        replicas: int = 1,
        host: str = "127.0.0.1",
        seed: int = 2013,
        vnodes: int = DEFAULT_VNODES,
        obs: Observability | None = None,
        obs_factory=None,
    ):
        """``obs_factory``, when given, is ``fn(name, index) -> Observability``
        called once per node so each node gets its *own* bundle — required
        for per-node trace ring buffers (one shared tracer would interleave
        every node's events into one ring and defeat the per-node TRACE
        drain).  Without it every node shares ``obs``.
        """
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.data_capacity_per_node = data_capacity_per_node
        self.tag_capacity_per_node = tag_capacity_per_node
        self.tag_assoc = tag_assoc
        self.shards_per_node = shards_per_node
        self.admission = admission
        self.replicas = replicas
        self.host = host
        self.seed = seed
        self.obs = obs if obs is not None else Observability.disabled()
        self.obs_factory = obs_factory
        self.ring = HashRing(vnodes=vnodes, seed=seed)
        self.nodes = {}  # name -> ClusterNode
        self._next_index = 0
        self._clients = []
        # serializes membership changes: a join and a leave migrating the
        # same span concurrently could relinquish a key to a node that is
        # itself mid-departure
        self._membership_lock = asyncio.Lock()
        for _ in range(num_nodes):
            self._build_node()

    # -- construction ---------------------------------------------------------

    def _build_node(self, name: str | None = None) -> ClusterNode:
        index = self._next_index
        self._next_index += 1
        name = name if name is not None else f"node{index}"
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        store = ShardedStore(
            num_shards=self.shards_per_node,
            data_capacity=self.data_capacity_per_node,
            tag_capacity=self.tag_capacity_per_node,
            tag_assoc=self.tag_assoc,
            admission=self.admission,
            seed=self.seed + 1000 * (index + 1),
            obs=Observability.disabled(),  # node-level obs covers serving
        )
        node_obs = (self.obs_factory(name, index)
                    if self.obs_factory is not None else self.obs)
        node = ClusterNode(
            name,
            store,
            self.ring,
            host=self.host,
            port=0,
            replicas=self.replicas,
            lane=index,
            obs=node_obs,
        )
        self.nodes[name] = node
        return node

    async def start(self) -> None:
        """Start every node, join them to the ring, wire the peer mesh."""
        async with self._membership_lock:
            for node in self.nodes.values():
                await node.start()
            for name in self.nodes:
                self.ring.add(name)
            self._wire_peers()
        log.info("cluster up: %d node(s) x %d entries, replicas=%d",
                 len(self.nodes), self.data_capacity_per_node, self.replicas)

    def _wire_peers(self) -> None:
        for node in self.nodes.values():
            for other in self.nodes.values():
                if other.name != node.name and other.name not in node.peer_names():
                    node.connect_peer(other.name, other.host, other.port)

    def addresses(self) -> dict:
        """name -> (host, port) for every live node."""
        return {n.name: (n.host, n.port) for n in self.nodes.values()}

    def client(self, **kwargs) -> ClusterClient:
        """A routing client sharing this cluster's ring object."""
        kwargs.setdefault("replicas", self.replicas)
        client = ClusterClient(self.addresses(), ring=self.ring, **kwargs)
        self._clients.append(client)
        return client

    # -- membership ------------------------------------------------------------

    async def add_node(self, name: str | None = None) -> dict:
        """Boot a node, join it to the ring, migrate its keys to it.

        Returns a migration report: keys examined/moved and the moved
        fraction (bounded near ``1/(N+1)`` by the ring).
        """
        async with self._membership_lock:
            node = self._build_node(name)
            await node.start()
            for other in self.nodes.values():
                if other.name != node.name:
                    other.connect_peer(node.name, node.host, node.port)
                    node.connect_peer(other.name, other.host, other.port)
            for client in self._clients:
                client.add_node(node.name, node.host, node.port)
            self.ring.add(node.name)
            examined = moved = 0
            for other in list(self.nodes.values()):
                if other.name == node.name:
                    continue
                for key in other.store.keys():
                    examined += 1
                    if self.ring.owner(key) != node.name:
                        continue
                    value = other.store.get(key)
                    if value is None:
                        continue
                    version = other.version_of(key)
                    # relinquish first (INVAL the old value's replica
                    # holders, drop the old copy), adopt after: by adoption
                    # time no replica of the migrated value survives
                    # untracked
                    failed = await other.relinquish_key(key)
                    node.inherit_pending(key, failed)
                    # a racing client write to the already-published new
                    # owner wins over the migrated value (lost-update guard)
                    if node.maybe_adopt(key, value, version):
                        await node._flush_evictions()
                    moved += 1
            report = {
                "node": node.name,
                "examined": examined,
                "moved": moved,
                "moved_fraction": moved / examined if examined else 0.0,
            }
            log.info("join %s: moved %d/%d key(s)", node.name, moved, examined)
            return report

    async def remove_node(self, name: str, drain_timeout: float = 5.0) -> dict:
        """Drain ``name``, migrate its keys to ring successors, stop it."""
        async with self._membership_lock:
            node = self.nodes.get(name)
            if node is None:
                raise ValueError(f"no such node {name!r}")
            if len(self.nodes) == 1:
                raise ValueError("cannot remove the last node of the cluster")
            node.draining = True
            self.ring.remove(name)
            moved = 0
            for key in node.store.keys():
                value = node.store.get(key)
                if value is None:
                    continue
                version = node.version_of(key)
                new_owner = self.nodes[self.ring.owner(key)]
                failed = await node.relinquish_key(key)
                new_owner.inherit_pending(key, failed)
                # the ring already routes to the successor: a write that
                # beat the migration there must not be clobbered
                if new_owner.maybe_adopt(key, value, version):
                    await new_owner._flush_evictions()
                moved += 1
            for client in self._clients:
                await client.remove_node(name)
            for other in self.nodes.values():
                if other.name != name:
                    await other.disconnect_peer(name)
            await node.stop(drain_timeout)
            del self.nodes[name]
            log.info("leave %s: migrated %d key(s)", name, moved)
            return {"node": name, "moved": moved}

    # -- lifecycle / introspection ---------------------------------------------

    async def stop(self, drain_timeout: float = 5.0) -> None:
        for client in self._clients:
            await client.close()
        self._clients.clear()
        for node in self.nodes.values():
            await node.stop(drain_timeout)

    async def __aenter__(self):
        await self.start()
        return self

    async def __aexit__(self, *exc):
        await self.stop()

    def status_snapshot(self) -> dict:
        """Every node's CSTATUS block plus cluster totals (in-process)."""
        nodes = {name: node.status() for name, node in self.nodes.items()}
        return {
            "num_nodes": len(self.nodes),
            "replicas": self.replicas,
            "data_capacity": sum(
                n["data_capacity"] for n in nodes.values()
            ),
            "stored": sum(n["stored"] for n in nodes.values()),
            "replicas_held": sum(n["replicas_held"] for n in nodes.values()),
            "protocol_races": sum(
                n["protocol_races"] for n in nodes.values()
            ),
            "nodes": nodes,
        }
