"""Command-line interface: regenerate any table/figure of the paper.

Usage::

    python -m repro list
    python -m repro fig5 --workloads 8 --refs 30000
    python -m repro table6 --scale 32 --seed 7
    python -m repro all

Each experiment prints the same rows the paper reports; see EXPERIMENTS.md
for the paper-vs-measured comparison.

Serving mode (see ``docs/service.md``) lives under two extra subcommands
dispatched to :mod:`repro.service.cli`::

    python -m repro serve --shards 4 --data-capacity 4096
    python -m repro bench-service --refs 20000 --json BENCH_service.json

Static checks (see ``docs/devtools.md``) live under two more subcommands
dispatched to :mod:`repro.devtools.cli`::

    python -m repro lint src
    python -m repro check-protocol --format json

Observability (see ``docs/observability.md``) adds a live dashboard and
trace export, dispatched to :mod:`repro.obs.cli`::

    python -m repro top --port 9876
    python -m repro obs export --format chrome-trace --out trace.json
    python -m repro obs validate trace.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

from . import experiments as ex
from .devtools import cli as devtools_cli
from .experiments import ExperimentParams
from .obs import cli as obs_cli
from .obs.logging import configure as configure_logging
from .service import cli as service_cli

#: experiment name -> (runner, formatter, needs_params)
EXPERIMENTS = {
    "fig1a": (ex.run_fig1a, ex.format_fig1a, True),
    "fig1b": (ex.run_fig1b, ex.format_fig1b, True),
    "table2": (ex.run_table2, ex.format_table2, False),
    "table3": (ex.run_table3, ex.format_table3, False),
    "table5": (ex.run_table5, ex.format_table5, True),
    "table6": (ex.run_table6, ex.format_table6, True),
    "fig4": (ex.run_fig4, ex.format_fig4, True),
    "fig5": (ex.run_fig5, ex.format_fig5, True),
    "fig6": (ex.run_fig6, ex.format_fig6, True),
    "fig7": (ex.run_fig7, ex.format_fig7, True),
    "fig8": (ex.run_fig8, ex.format_fig8, True),
    "fig9": (ex.run_fig9, ex.format_fig9, True),
    "fig10": (ex.run_fig10, ex.format_fig10, True),
    "fig11": (ex.run_fig11, ex.format_fig11, True),
    "bandwidth": (ex.run_bandwidth, ex.format_bandwidth, True),
    # extensions beyond the paper's evaluation
    "zoo": (ex.run_zoo, ex.format_zoo, True),
    "energy": (ex.run_energy_study, ex.format_energy, True),
    "traffic": (ex.run_traffic, ex.format_traffic, True),
    "opt": (ex.run_opt_bound, ex.format_opt_bound, True),
    "prefetch": (ex.run_prefetch, ex.format_prefetch, True),
    "robustness": (ex.run_robustness, ex.format_robustness, True),
    "mlp": (ex.run_mlp, ex.format_mlp, True),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of 'The Reuse Cache' (MICRO 2013).",
    )
    parser.add_argument(
        "experiment",
        help="experiment name (see 'list'), or 'all', or 'list'",
    )
    defaults = ExperimentParams()
    parser.add_argument("--workloads", type=int, default=defaults.n_workloads,
                        help="number of multiprogrammed mixes")
    parser.add_argument("--refs", type=int, default=defaults.n_refs,
                        help="memory references per core")
    parser.add_argument("--scale", type=int, default=defaults.scale,
                        help="capacity divisor (1 = paper-size caches)")
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also dump the raw result dict as JSON (figure data for plotting)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="also append everything printed to FILE (report capture)",
    )
    return parser


class _Tee:
    """Duplicate stdout writes into a file (for ``--out`` report capture)."""

    def __init__(self, stream, fh):
        self._stream = stream
        self._fh = fh

    def write(self, text):
        self._stream.write(text)
        self._fh.write(text)

    def flush(self):
        self._stream.flush()
        self._fh.flush()


def _jsonable(obj):
    """Best-effort conversion of experiment results to JSON-safe values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _jsonable(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "tolist"):
        return obj.tolist()
    return str(obj)


def run_one(name: str, params: ExperimentParams, json_path=None) -> None:
    """Run one experiment, print its rows, optionally dump JSON."""
    runner, formatter, needs_params = EXPERIMENTS[name]
    start = time.time()
    result = runner(params) if needs_params else runner()
    print(formatter(result))
    print(f"[{name}: {time.time() - start:.1f}s]\n")
    if json_path:
        with open(json_path, "w") as fh:
            json.dump({name: _jsonable(result)}, fh, indent=2)
        print(f"wrote {json_path}")


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    configure_logging()
    if argv and argv[0] in service_cli.SERVICE_COMMANDS:
        return service_cli.main(argv)
    if argv and argv[0] in devtools_cli.DEVTOOLS_COMMANDS:
        return devtools_cli.main(argv)
    if argv and argv[0] in obs_cli.OBS_COMMANDS:
        return obs_cli.main(argv)
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("service commands (see 'repro serve --help'):")
        for name in service_cli.SERVICE_COMMANDS:
            print(f"  {name}")
        print("static checks (see 'repro lint --help'):")
        for name in devtools_cli.DEVTOOLS_COMMANDS:
            print(f"  {name}")
        print("observability (see 'repro obs --help'):")
        for name in obs_cli.OBS_COMMANDS:
            print(f"  {name}")
        return 0
    params = ExperimentParams(
        n_workloads=args.workloads,
        n_refs=args.refs,
        scale=args.scale,
        seed=args.seed,
    )
    out_fh = open(args.out, "a") if args.out else None
    original_stdout = sys.stdout
    if out_fh:
        sys.stdout = _Tee(original_stdout, out_fh)
    try:
        if args.experiment == "all":
            for name in EXPERIMENTS:
                run_one(name, params)
            return 0
        if args.experiment not in EXPERIMENTS:
            print(f"unknown experiment {args.experiment!r}; try 'list'",
                  file=sys.stderr)
            return 2
        run_one(args.experiment, params, json_path=args.json)
        return 0
    finally:
        if out_fh:
            sys.stdout = original_stdout
            out_fh.close()


if __name__ == "__main__":
    sys.exit(main())
