"""Command-line interface: regenerate any table/figure of the paper.

The front door is the experiment registry (see ``docs/runner.md``)::

    python -m repro list-experiments
    python -m repro run fig7 --parallel 4
    python -m repro run fig5 fig6 --workloads 8 --refs 30000
    python -m repro run all --cache-dir /tmp/rc --stats-json stats.json
    python -m repro run fig7 --plan

``repro run`` executes through :class:`repro.runner.Runner`: cells fan out
over ``--parallel N`` worker processes and results are memoized in a
content-addressed cache (``--cache-dir``, default ``.repro-cache``;
disable with ``--no-cache``, recompute with ``--force``).  Re-runs and
interrupted sweeps resume from cache with byte-identical output.

The legacy spellings (``python -m repro fig5``, ``list``, ``all``) still
work but print a deprecation note; so do the per-module entry points
(``python -m repro.experiments.fig5``).

Serving mode (see ``docs/service.md``) lives under two extra subcommands
dispatched to :mod:`repro.service.cli`::

    python -m repro serve --shards 4 --data-capacity 4096
    python -m repro serve --obs-port 9900 --flight-dir ./flight
    python -m repro bench-service --refs 20000 --json BENCH_service.json

Static checks (see ``docs/devtools.md``) live under three more
subcommands dispatched to :mod:`repro.devtools.cli`::

    python -m repro lint src
    python -m repro analyze src --baseline analyze-baseline.json
    python -m repro check-protocol --format json

Observability (see ``docs/observability.md``) adds a live dashboard,
trace export and the continuous-telemetry tools, dispatched to
:mod:`repro.obs.cli`::

    python -m repro top --port 9876
    python -m repro top --cluster --node node0=127.0.0.1:9876 ...
    python -m repro obs export --format chrome-trace --out trace.json
    python -m repro obs validate --causal trace.json
    python -m repro obs collect node0.jsonl node1.jsonl --out cluster.json
    python -m repro obs flight flight-20260808-120000-sigusr2.json
    python -m repro obs alert-replay --seed 2013 --json replay.json
    python -m repro explain --key storm:0 cluster-trace.json

Performance baselines (see ``docs/perf.md``) dispatch to
:mod:`repro.perf.cli`::

    python -m repro perf record --suite smoke --out BENCH_perf.json
    python -m repro perf compare --baseline BENCH_perf.json
    python -m repro perf trend --history-dir .repro-perf

Cluster mode (see ``docs/cluster.md``) dispatches to
:mod:`repro.cluster.cli`::

    python -m repro cluster serve --nodes 3 --data-capacity 512
    python -m repro cluster serve --nodes 3 --obs-port 9900
    python -m repro cluster bench --node-counts 1 2 3 --json BENCH_cluster.json
    python -m repro cluster smoke
    python -m repro cluster trace --nodes 3 --out cluster-trace.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time

from .cluster import cli as cluster_cli
from .devtools import cli as devtools_cli
from .experiments import ExperimentParams
from .experiments import registry
from .obs import cli as obs_cli
from .obs.logging import configure as configure_logging
from .perf import cli as perf_cli
from .runner import ResultCache, Runner, cell_key
from .runner.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR
from .service import cli as service_cli


def _add_param_args(parser: argparse.ArgumentParser) -> None:
    defaults = ExperimentParams()
    parser.add_argument("--workloads", type=int, default=defaults.n_workloads,
                        help="number of multiprogrammed mixes")
    parser.add_argument("--refs", type=int, default=defaults.n_refs,
                        help="memory references per core")
    parser.add_argument("--scale", type=int, default=defaults.scale,
                        help="capacity divisor (1 = paper-size caches)")
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also dump the raw result dict as JSON (figure data for plotting)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="also append everything printed to FILE (report capture)",
    )


def build_run_parser() -> argparse.ArgumentParser:
    """The ``repro run`` subcommand parser."""
    parser = argparse.ArgumentParser(
        prog="repro run",
        description="Run experiments through the parallel, cached engine.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help="experiment name(s) (see 'list-experiments'), or 'all'",
    )
    _add_param_args(parser)
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_PARALLEL or serial)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help=f"result cache directory (default: ${CACHE_DIR_ENV} or "
             f"{DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache entirely",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="recompute every cell, overwriting cached entries",
    )
    parser.add_argument(
        "--plan", action="store_true",
        help="show what would run (and what is already cached) and exit",
    )
    parser.add_argument(
        "--stats-json", metavar="FILE",
        help="dump runner statistics (cells run/cached/failed) as JSON",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    """The legacy single-positional CLI (``repro fig5``)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of 'The Reuse Cache' (MICRO 2013).",
    )
    parser.add_argument(
        "experiment",
        help="experiment name (see 'list-experiments'), or 'all', or 'list'",
    )
    _add_param_args(parser)
    return parser


class _Tee:
    """Duplicate stdout writes into a file (for ``--out`` report capture)."""

    def __init__(self, stream, fh):
        self._stream = stream
        self._fh = fh

    def write(self, text):
        self._stream.write(text)
        self._fh.write(text)

    def flush(self):
        self._stream.flush()
        self._fh.flush()


def _jsonable(obj):
    """Best-effort conversion of experiment results to JSON-safe values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _jsonable(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "tolist"):
        return obj.tolist()
    return str(obj)


def _resolve_names(requested) -> list:
    """Expand 'all' and validate every requested experiment name."""
    names = []
    for name in requested:
        if name == "all":
            names.extend(registry.names())
        elif name in registry.names():
            names.append(name)
        else:
            raise SystemExit(
                f"unknown experiment {name!r}; try 'repro list-experiments'"
            )
    return names


def _build_runner(args) -> Runner:
    """Translate ``repro run`` flags into a configured engine."""
    if args.parallel is not None and args.parallel < 0:
        raise SystemExit("--parallel must be >= 0")
    parallel = args.parallel
    if parallel is None:
        parallel = int(os.environ.get("REPRO_PARALLEL", "0") or 0)
    cache = None
    if not args.no_cache:
        cache_dir = (args.cache_dir or os.environ.get(CACHE_DIR_ENV)
                     or DEFAULT_CACHE_DIR)
        cache = ResultCache(cache_dir)
    return Runner(parallel=parallel, cache=cache, force=args.force)


def _print_plan(names, params: ExperimentParams, runner: Runner) -> None:
    """Preview the cells each experiment would request and their cache state."""
    for name in names:
        spec = registry.get(name)
        print(f"{name}: {spec.title}")
        if not spec.needs_params:
            print("  analytical (no simulation cells)")
            continue
        if spec.cells is None:
            print("  cells enumerated internally by the driver")
            continue
        cells = spec.cells(params)
        cached = 0
        if runner.cache is not None:
            fingerprint = runner._fingerprint
            cached = sum(
                1 for cell in cells
                if runner.cache.contains(cell_key(cell, fingerprint))
            )
        state = f", {cached} already cached" if runner.cache is not None else ""
        print(f"  {len(cells)} cell(s){state}")
        for cell in cells:
            print(f"    {cell.label}")


def _run_stats_line(runner: Runner) -> str:
    s = runner.stats
    saved = f", saved {s.cached_wall_s:.1f}s" if s.cached else ""
    return (f"[cells: {s.run} run, {s.cached} cached, {s.failed} failed"
            f" | cache hit rate {s.hit_rate:.0%}"
            f" | compute {s.seconds:.1f}s{saved}]")


def run_one(name: str, params: ExperimentParams, runner: Runner,
            json_results=None) -> None:
    """Run one experiment, print its rows, optionally collect JSON."""
    spec = registry.get(name)
    start = time.time()
    result = spec.execute(params, runner=runner)
    print(spec.format(result))
    print(f"[{name}: {time.time() - start:.1f}s]\n")
    if json_results is not None:
        json_results[name] = _jsonable(result)


def cmd_run(argv) -> int:
    """``repro run <name>... `` — the registry + runner front door."""
    args = build_run_parser().parse_args(argv)
    names = _resolve_names(args.experiments)
    params = ExperimentParams(
        n_workloads=args.workloads,
        n_refs=args.refs,
        scale=args.scale,
        seed=args.seed,
    )
    runner = _build_runner(args)
    if args.plan:
        _print_plan(names, params, runner)
        return 0
    json_results = {} if args.json else None
    out_fh = open(args.out, "a") if args.out else None
    original_stdout = sys.stdout
    if out_fh:
        sys.stdout = _Tee(original_stdout, out_fh)
    try:
        for name in names:
            run_one(name, params, runner, json_results)
        print(_run_stats_line(runner))
    finally:
        if out_fh:
            sys.stdout = original_stdout
            out_fh.close()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(json_results, fh, indent=2)
        print(f"wrote {args.json}")
    if args.stats_json:
        with open(args.stats_json, "w") as fh:
            json.dump(runner.stats.to_dict(), fh, indent=2)
        print(f"wrote {args.stats_json}")
    return 0


def cmd_list_experiments() -> int:
    """``repro list-experiments`` — every registered experiment."""
    width = max(len(name) for name in registry.names())
    for spec in registry.all_specs():
        kind = "analytical" if not spec.needs_params else "/".join(spec.tags)
        print(f"  {spec.name:<{width}}  {spec.title}  [{kind}]")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    configure_logging()
    if argv and argv[0] in service_cli.SERVICE_COMMANDS:
        return service_cli.main(argv)
    if argv and argv[0] in devtools_cli.DEVTOOLS_COMMANDS:
        return devtools_cli.main(argv)
    if argv and argv[0] in obs_cli.OBS_COMMANDS:
        return obs_cli.main(argv)
    if argv and argv[0] in perf_cli.PERF_COMMANDS:
        return perf_cli.main(argv)
    if argv and argv[0] in cluster_cli.CLUSTER_COMMANDS:
        return cluster_cli.main(argv[1:])
    if argv and argv[0] == "run":
        return cmd_run(argv[1:])
    if argv and argv[0] == "list-experiments":
        return cmd_list_experiments()

    # ---- legacy spellings ---------------------------------------------------
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print("experiments (run with 'repro run <name>'):")
        for name in registry.names():
            print(f"  {name}")
        print("service commands (see 'repro serve --help'):")
        for name in service_cli.SERVICE_COMMANDS:
            print(f"  {name}")
        print("static checks (see 'repro lint --help'):")
        for name in devtools_cli.DEVTOOLS_COMMANDS:
            print(f"  {name}")
        print("observability (see 'repro obs --help'):")
        for name in obs_cli.OBS_COMMANDS:
            print(f"  {name}")
        print("performance baselines (see 'repro perf --help'):")
        for name in perf_cli.PERF_COMMANDS:
            print(f"  {name}")
        print("cluster mode (see 'repro cluster --help'):")
        for name in cluster_cli.CLUSTER_COMMANDS:
            print(f"  {name} serve|bench|status|smoke|trace")
        return 0
    if args.experiment != "all" and args.experiment not in registry.names():
        print(f"unknown experiment {args.experiment!r}; try 'list-experiments'",
              file=sys.stderr)
        return 2
    print(
        f"DEPRECATED: 'repro {args.experiment}' is superseded by "
        f"'repro run {args.experiment}' (parallel + cached engine); "
        "forwarding.",
        file=sys.stderr,
    )
    forward = [args.experiment]
    forward += ["--workloads", str(args.workloads), "--refs", str(args.refs),
                "--scale", str(args.scale), "--seed", str(args.seed),
                "--no-cache"]
    if args.json:
        forward += ["--json", args.json]
    if args.out:
        forward += ["--out", args.out]
    return cmd_run(forward)


if __name__ == "__main__":
    sys.exit(main())
