"""Main-memory substrate: DDR3 channel/bank/row-buffer timing."""

from .ddr3 import DDR3Config, DDR3Memory

__all__ = ["DDR3Config", "DDR3Memory"]
