"""DDR3 main-memory timing model (paper Table 4).

One rank of 16 banks per channel, 4 KB pages, DDR3-1333 behind a 667 MHz,
8-byte bus — which at the paper's core clock means a 92-cycle raw access
latency and 16 processor cycles of bus occupancy per 64 B line.  The model
is trace-driven and contention-aware without being cycle-by-cycle:

* each bank tracks its open row; a row hit skips the activate/precharge
  portion of the raw latency;
* a bank serves one request at a time (``bank_free``), so bursts to one
  bank queue up;
* each channel's data bus is occupied for ``bus_cycles`` per transferred
  line, bounding bandwidth;
* writes occupy the same resources but complete asynchronously (write
  buffering), so they consume bandwidth without stalling the requester.

Address mapping: lines interleave across channels, pages interleave across
banks, so sequential streams enjoy row hits while spreading over banks.
Section 5.8's bandwidth study varies ``channels`` between 1, 2 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils import ilog2, require_power_of_two


@dataclass(frozen=True)
class DDR3Config:
    """Timing and geometry parameters, in processor cycles and cache lines."""

    channels: int = 1
    banks_per_channel: int = 16
    #: raw access latency for a row-buffer miss (activate+CAS+transfer)
    raw_latency: int = 92
    #: latency when the open row already holds the line
    row_hit_latency: int = 46
    #: processor cycles the channel bus is busy per 64 B line
    bus_cycles: int = 16
    #: lines per DRAM page (4 KB / 64 B)
    page_lines: int = 64
    #: row-buffer policy: 'open' keeps rows open between accesses (the
    #: default, matching the streaming-friendly controllers of the paper's
    #: era); 'closed' precharges after every access, so every access pays
    #: the full latency but row conflicts never queue behind a precharge
    page_policy: str = "open"

    def validate(self) -> "DDR3Config":
        """Check the configuration; returns self for chaining."""
        if self.page_policy not in ("open", "closed"):
            raise ValueError(f"unknown page_policy {self.page_policy!r}")
        require_power_of_two(self.channels, "channels")
        require_power_of_two(self.banks_per_channel, "banks_per_channel")
        require_power_of_two(self.page_lines, "page_lines")
        if not (0 < self.row_hit_latency <= self.raw_latency):
            raise ValueError("row_hit_latency must be in (0, raw_latency]")
        if self.bus_cycles <= 0:
            raise ValueError("bus_cycles must be positive")
        return self


class DDR3Memory:
    """Bank/bus contention model for one or more DDR3 channels."""

    def __init__(self, config: DDR3Config | None = None):
        self.config = (config or DDR3Config()).validate()
        cfg = self.config
        self._chan_mask = cfg.channels - 1
        self._chan_bits = ilog2(cfg.channels)
        self._bank_mask = cfg.banks_per_channel - 1
        self._bank_bits = ilog2(cfg.banks_per_channel)
        self._page_bits = ilog2(cfg.page_lines)
        nbanks = cfg.channels * cfg.banks_per_channel
        self._bank_free = [0] * nbanks
        self._open_row = [-1] * nbanks
        self._bus_free = [0] * cfg.channels
        # statistics
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.busy_read_cycles = 0  # queueing + service time of demand reads

    # -- address mapping ---------------------------------------------------------
    def _locate(self, line_addr: int):
        """(channel, global bank index, row) of ``line_addr``."""
        channel = line_addr & self._chan_mask
        page = line_addr >> self._chan_bits >> self._page_bits
        bank_local = page & self._bank_mask
        row = page >> self._bank_bits
        return channel, channel * self.config.banks_per_channel + bank_local, row

    def _bank_access(self, bank: int, row: int, now: int):
        """Reserve the bank; returns (start, access_latency)."""
        start = now if now > self._bank_free[bank] else self._bank_free[bank]
        if self._open_row[bank] == row:
            self.row_hits += 1
            access = self.config.row_hit_latency
        else:
            access = self.config.raw_latency
        if self.config.page_policy == "closed":
            self._open_row[bank] = -1  # precharged: the next access re-opens
        else:
            self._open_row[bank] = row
        return start, access

    # -- interface -----------------------------------------------------------------
    def read(self, line_addr: int, now: int) -> int:
        """Issue a demand read at ``now``; returns its completion time."""
        cfg = self.config
        self.reads += 1
        channel, bank, row = self._locate(line_addr)
        start, access = self._bank_access(bank, row, now)
        ready = start + access
        # the line occupies the channel data bus for bus_cycles at the end
        bus_start = ready - cfg.bus_cycles
        if bus_start < self._bus_free[channel]:
            bus_start = self._bus_free[channel]
        done = bus_start + cfg.bus_cycles
        self._bus_free[channel] = done
        # the bank frees once its access completes; bus queueing does not
        # hold the bank (the controller buffers the burst)
        self._bank_free[bank] = max(ready, done - cfg.bus_cycles)
        self.busy_read_cycles += done - now
        return done

    def write(self, line_addr: int, now: int) -> None:
        """Issue a (posted) writeback at ``now``.

        Writes drain from the controller's write buffer with low priority:
        they occupy their bank (contending with reads to the same bank) but
        their data transfer is scheduled into idle bus slots, so they do not
        delay demand reads on the bus — the standard read-priority policy of
        DDR3 controllers.
        """
        self.writes += 1
        _, bank, row = self._locate(line_addr)
        start, access = self._bank_access(bank, row, now)
        self._bank_free[bank] = start + access

    def stats(self) -> dict:
        """Traffic and latency statistics of this memory."""
        total = self.reads + self.writes
        return {
            "reads": self.reads,
            "writes": self.writes,
            "row_hits": self.row_hits,
            "row_hit_rate": self.row_hits / total if total else 0.0,
            "avg_read_latency": self.busy_read_cycles / self.reads if self.reads else 0.0,
        }
