"""CLI commands for the serving stack: ``repro serve`` / ``repro bench-service``.

``serve`` runs a :class:`~repro.service.server.CacheServer` in the
foreground until interrupted.  Both SIGINT and SIGTERM trigger a graceful
drain — stop accepting, let in-flight requests finish — followed by a
final stats flush: the closing hit/admission summary is printed (and the
full STATS snapshot written, with ``--final-stats-json``), so supervised
deployments (systemd, Kubernetes) keep the run's numbers on termination.
With ``--obs-port`` the node additionally runs the continuous-telemetry
plane (:class:`~repro.service.telemetry.ServiceTelemetry`): a scrapeable
HTTP endpoint (``/metrics`` ``/healthz`` ``/readyz`` ``/varz``
``/history`` ``/alertz``), per-second registry sampling into a
time-series store, the built-in alert rules, and a flight recorder that
dumps a forensic bundle into ``--flight-dir`` on SIGUSR2 or a fatal
server error.

``bench-service`` is the serving twin of the figure benchmarks: it replays
one synthetic workload twice against in-process servers that differ *only*
in admission policy — the paper's reuse-based selective allocation vs
admit-always — at identical data capacity, and reports hit rate, hit rate
per MB of data capacity, throughput and latency quantiles for both.
:func:`run_service_benchmark` is importable so ``benchmarks/bench_service.py``
persists the same comparison to ``BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal

from ..obs import Observability
from ..obs.prof import process_resources
from ..obs.logging import configure as configure_logging
from ..workloads.mixes import EXAMPLE_MIX, build_workload
from .client import CacheClient
from .loadgen import VALUE_BYTES, replay_batched, run_load
from .protocol import install_uvloop
from .server import CacheServer
from .sharding import ShardedStore

#: CLI names handled by this module (dispatched from repro.__main__)
SERVICE_COMMANDS = ("serve", "bench-service")


def build_service_parser() -> argparse.ArgumentParser:
    """Argument parser for the service subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Serving mode of the reuse-cache reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store_args(p):
        p.add_argument("--shards", type=int, default=4,
                       help="number of store shards")
        p.add_argument("--data-capacity", type=int, default=4096,
                       help="total data-store entries across shards")
        p.add_argument("--tag-capacity", type=int, default=None,
                       help="total tag-directory entries (default 4x data)")
        p.add_argument("--tag-assoc", type=int, default=8,
                       help="tag-directory associativity")
        p.add_argument("--admission", choices=("reuse", "always"),
                       default="reuse", help="admission policy")
        p.add_argument("--seed", type=int, default=2013)

    serve = sub.add_parser("serve", help="run the cache server in the foreground")
    add_store_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9876)
    serve.add_argument("--max-connections", type=int, default=256)
    serve.add_argument("--request-timeout", type=float, default=5.0)
    serve.add_argument("--no-metrics", action="store_true",
                       help="disable the obs metrics registry (and METRICS)")
    serve.add_argument("--trace-file", metavar="FILE", default=None,
                       help="record request spans; write a Chrome trace "
                            "(chrome://tracing / Perfetto) on shutdown")
    serve.add_argument("--trace-sample", type=int, default=1,
                       help="record every Nth request span (default: all)")
    serve.add_argument("--final-stats-json", metavar="FILE", default=None,
                       help="write the final STATS snapshot (plus obs "
                            "registry) on shutdown")
    serve.add_argument("--obs-port", type=int, default=None,
                       help="serve the telemetry HTTP endpoint on this "
                            "port (/metrics /healthz /readyz /varz "
                            "/history /alertz); enables continuous "
                            "sampling + the built-in alert rules")
    serve.add_argument("--obs-interval", type=float, default=1.0,
                       help="telemetry sampling interval in seconds")
    serve.add_argument("--flight-dir", metavar="DIR", default=".",
                       help="directory for flight-recorder bundles "
                            "(SIGUSR2 or fatal error; needs --obs-port)")
    serve.add_argument("--uvloop", action="store_true",
                       help="use uvloop's event loop if installed "
                            "(silently ignored when unavailable)")

    bench = sub.add_parser(
        "bench-service",
        help="compare reuse-admission vs admit-always on live traffic",
    )
    add_store_args(bench)
    # downsized data store: the regime where selective allocation pays
    # (a plentiful capacity hides admission mistakes, cf. paper Fig. 6)
    bench.set_defaults(data_capacity=512)
    bench.add_argument("--refs", type=int, default=20_000,
                       help="memory references per core")
    bench.add_argument("--scale", type=int, default=32,
                       help="workload footprint divisor (matches simulator)")
    bench.add_argument("--mix", nargs="*", default=None,
                       help=f"application mix (default: {' '.join(EXAMPLE_MIX)})")
    bench.add_argument("--value-bytes", type=int, default=VALUE_BYTES)
    bench.add_argument("--pipeline", type=int, default=1,
                       help="concurrent workers per trace in the admission "
                            "legs (v2 multiplexes them over one connection)")
    bench.add_argument("--batch", type=int, default=64,
                       help="MGET/MSET batch size for the wire-protocol "
                            "comparison legs")
    bench.add_argument("--no-wire", action="store_true",
                       help="skip the v1-vs-v2 wire-protocol comparison")
    bench.add_argument("--uvloop", action="store_true",
                       help="use uvloop's event loop if installed")
    bench.add_argument("--json", metavar="FILE", default=None,
                       help="also dump the comparison as JSON")
    bench.add_argument("--stats-json", metavar="FILE", default=None,
                       help="dump the servers' final STATS snapshots as "
                            "JSON (mirrors 'repro run --stats-json')")
    return parser


def make_store(args, obs: Observability | None = None) -> ShardedStore:
    """Build a :class:`ShardedStore` from parsed CLI arguments."""
    return ShardedStore(
        num_shards=args.shards,
        data_capacity=args.data_capacity,
        tag_capacity=args.tag_capacity,
        tag_assoc=args.tag_assoc,
        admission=args.admission,
        seed=args.seed,
        obs=obs,
    )


def _serve_obs(args) -> Observability:
    """Observability bundle for ``repro serve``: metrics on by default."""
    tracing = args.trace_file is not None
    if args.no_metrics and not tracing:
        return Observability.disabled()
    obs = Observability.enabled(
        tracing=tracing, sample_every=args.trace_sample, time_unit="s"
    )
    if args.no_metrics:
        obs.registry.enabled = False
    return obs


def _final_stats_flush(server: CacheServer, args) -> None:
    """Print (and optionally persist) the closing STATS/obs snapshot."""
    snapshot = server.store.stats_snapshot()
    snapshot["process"] = {"pid": os.getpid(), **process_resources()}
    if server.obs.registry.enabled:
        snapshot["obs"] = server.obs.registry.snapshot()
    total = snapshot["total"]
    print(f"repro.service: final stats — {total['hits']} hits / "
          f"{total['misses']} misses (hit rate {total['hit_rate']:.4f}), "
          f"{snapshot['stored_entries']} stored, "
          f"{total['reuse_admissions']} admitted, "
          f"{total['tag_only_sets']} tagged-only")
    if args.final_stats_json:
        with open(args.final_stats_json, "w") as fh:
            json.dump(snapshot, fh, indent=2)
        print(f"repro.service: wrote {args.final_stats_json}")


async def _serve(args) -> None:
    obs = _serve_obs(args)
    server = CacheServer(
        make_store(args, obs=obs),
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        request_timeout=args.request_timeout,
        obs=obs,
    )
    # SIGTERM (systemd/Kubernetes stop) and SIGINT (Ctrl-C) both request a
    # graceful drain; the event lets serve_forever unwind normally so the
    # finally block runs the connection drain and final stats flush
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # non-unix event loops
            pass
    await server.start()
    print(f"repro.service: {args.admission}-admission store, "
          f"{args.shards} shards x {args.data_capacity // args.shards} entries, "
          f"listening on {server.host}:{server.port}")
    if not args.no_metrics:
        print("repro.service: metrics on — `repro top` or the METRICS verb")
    telemetry = None
    if args.obs_port is not None:
        from .telemetry import ServiceTelemetry

        telemetry = ServiceTelemetry(
            server, port=args.obs_port, interval=args.obs_interval,
            flight_dir=args.flight_dir,
        )
        await telemetry.start()
        print(f"repro.service: telemetry on "
              f"http://{telemetry.http.host}:{telemetry.http.port} "
              f"(/metrics /healthz /readyz /varz /history /alertz; "
              f"SIGUSR2 dumps a flight bundle to {args.flight_dir})")
    serve_task = asyncio.ensure_future(server.serve_forever())
    try:
        stop_wait = asyncio.ensure_future(stop.wait())
        await asyncio.wait(
            (serve_task, stop_wait), return_when=asyncio.FIRST_COMPLETED
        )
        stop_wait.cancel()
        # a serve_forever that *raised* (not cancelled/stopped) is a fatal
        # server error: capture the last N minutes before going down
        if serve_task.done() and not serve_task.cancelled():
            exc = serve_task.exception()
            if exc is not None and telemetry is not None:
                path = telemetry.dump_flight("fatal-error")
                print(f"repro.service: fatal error ({exc!r}); "
                      f"flight bundle written to {path}")
    finally:
        serve_task.cancel()
        if telemetry is not None:
            await telemetry.stop()
        await server.stop()
        if args.trace_file:
            obs.tracer.write(args.trace_file, fmt="chrome-trace")
            print(f"repro.service: wrote {obs.tracer.recorded} request "
                  f"span(s) to {args.trace_file}")
        _final_stats_flush(server, args)
        print("repro.service: drained and stopped")


def cmd_serve(args) -> int:
    """Run the server until SIGINT/SIGTERM, then drain and flush stats."""
    if getattr(args, "uvloop", False) and install_uvloop():
        print("repro.service: uvloop event loop installed")
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


async def _bench_one(admission, workload, args) -> dict:
    """Serve the workload once under ``admission`` and summarise."""
    store = ShardedStore(
        num_shards=args.shards,
        data_capacity=args.data_capacity,
        tag_capacity=args.tag_capacity,
        tag_assoc=args.tag_assoc,
        admission=admission,
        seed=args.seed,
    )
    server = CacheServer(store, port=0)
    await server.start()
    try:
        result = await run_load(
            server.host, server.port, workload,
            value_bytes=args.value_bytes, sample_every=4,
            pipeline=getattr(args, "pipeline", 1),
        )
    finally:
        await server.stop()
    summary = result.summary()
    summary["admission"] = admission
    data_bytes = store.data_capacity * args.value_bytes
    summary["data_capacity_entries"] = store.data_capacity
    summary["data_capacity_bytes"] = data_bytes
    summary["hit_rate_per_mb"] = result.hit_rate / (data_bytes / 2**20)
    summary["server_total"] = result.server_stats.get("total", {})
    return summary, result.server_stats


async def _wire_one(protocol: str, workload, args) -> dict:
    """Replay the workload batched over one pinned wire framing.

    Fresh identically-seeded store per leg and a deterministic batched
    replay (one worker, pinned arrival order, v1 expands batches to the
    same singles), so the two legs differ in *framing only* and must
    report identical hit rates — the parity gate behind the quoted
    speedup.
    """
    store = ShardedStore(
        num_shards=args.shards,
        data_capacity=args.data_capacity,
        tag_capacity=args.tag_capacity,
        tag_assoc=args.tag_assoc,
        admission=args.admission,
        seed=args.seed,
    )
    server = CacheServer(store, port=0)
    await server.start()
    try:
        client = CacheClient(server.host, server.port, protocol=protocol)
        try:
            result = await replay_batched(
                client, workload,
                value_bytes=args.value_bytes,
                batch=args.batch,
                sample_every=4,
            )
        finally:
            await client.close()
    finally:
        await server.stop()
    summary = result.summary()
    summary["protocol"] = protocol
    summary["batch"] = args.batch
    return summary


def run_wire_benchmark(args, workload) -> dict:
    """v1 text vs v2 binary framing at a matched batched workload."""

    async def _run():
        v1 = await _wire_one("v1", workload, args)
        v2 = await _wire_one("v2", workload, args)
        return v1, v2

    v1, v2 = asyncio.run(_run())
    return {
        "v1": v1,
        "v2": v2,
        "batch": args.batch,
        "speedup": (v2["throughput_rps"] / v1["throughput_rps"]
                    if v1["throughput_rps"] else 0.0),
        "hit_rate_match": v1["hit_rate"] == v2["hit_rate"],
    }


def run_service_benchmark(args=None, **overrides) -> dict:
    """Run the reuse-vs-always comparison; returns a JSON-safe dict.

    ``args`` is a parsed ``bench-service`` namespace; keyword overrides are
    applied on top (so tests and the bench harness can shrink the run).
    The result carries a ``"wire"`` block — v1 text vs v2 binary framing
    at a matched batched workload — unless ``--no-wire`` skipped it.
    """
    if args is None:
        args = build_service_parser().parse_args(["bench-service"])
    for name, value in overrides.items():
        setattr(args, name, value)
    mix = args.mix if args.mix else EXAMPLE_MIX
    workload = build_workload(mix, n_refs=args.refs, seed=args.seed,
                              scale=args.scale)

    async def _run():
        reuse = await _bench_one("reuse", workload, args)
        always = await _bench_one("always", workload, args)
        return reuse, always

    (reuse, reuse_stats), (always, always_stats) = asyncio.run(_run())
    result = {
        "server_stats": {"reuse": reuse_stats, "always": always_stats},
        "workload": workload.name,
        "refs_per_core": args.refs,
        "cores": workload.num_cores,
        "scale": args.scale,
        "shards": args.shards,
        "value_bytes": args.value_bytes,
        "reuse": reuse,
        "always": always,
        "hit_rate_gain": reuse["hit_rate"] - always["hit_rate"],
        "hit_rate_per_mb_gain":
            reuse["hit_rate_per_mb"] - always["hit_rate_per_mb"],
    }
    if not getattr(args, "no_wire", False):
        result["wire"] = run_wire_benchmark(args, workload)
    return result


def format_service_benchmark(result: dict) -> str:
    """Human-readable table of the admission comparison."""
    lines = [
        f"service benchmark — workload {result['workload']} "
        f"({result['cores']} cores x {result['refs_per_core']} refs, "
        f"scale {result['scale']})",
        f"{'admission':<10} {'hit rate':>9} {'hr/MB':>8} {'stored':>8} "
        f"{'tagged':>8} {'rps':>9} {'p50 ms':>8} {'p99 ms':>8}",
    ]
    for mode in ("reuse", "always"):
        row = result[mode]
        lines.append(
            f"{mode:<10} {row['hit_rate']:>9.4f} {row['hit_rate_per_mb']:>8.3f} "
            f"{row['sets_stored']:>8} {row['sets_tagged']:>8} "
            f"{row['throughput_rps']:>9.0f} {row['p50_ms']:>8.3f} "
            f"{row['p99_ms']:>8.3f}"
        )
    lines.append(
        f"hit-rate gain (reuse - always) at equal data capacity: "
        f"{result['hit_rate_gain']:+.4f} "
        f"({result['hit_rate_per_mb_gain']:+.3f} per MB)"
    )
    wire = result.get("wire")
    if wire:
        lines.append(
            f"wire protocol — batched replay (batch {wire['batch']}):"
        )
        lines.append(
            f"{'framing':<10} {'hit rate':>9} {'rps':>9} {'p50 ms':>8} "
            f"{'p99 ms':>8}"
        )
        for leg in ("v1", "v2"):
            row = wire[leg]
            lines.append(
                f"{leg:<10} {row['hit_rate']:>9.4f} "
                f"{row['throughput_rps']:>9.0f} {row['p50_ms']:>8.3f} "
                f"{row['p99_ms']:>8.3f}"
            )
        parity = "identical" if wire["hit_rate_match"] else "MISMATCH"
        lines.append(
            f"v2/v1 speedup: {wire['speedup']:.2f}x (hit rates {parity})"
        )
    return "\n".join(lines)


def cmd_bench_service(args) -> int:
    """Run the comparison, print it, optionally dump JSON."""
    if getattr(args, "uvloop", False) and install_uvloop():
        print("repro.service: uvloop event loop installed")
    result = run_service_benchmark(args)
    # the full per-server STATS snapshots go to --stats-json, not --json
    server_stats = result.pop("server_stats", {})
    print(format_service_benchmark(result))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.json}")
    if getattr(args, "stats_json", None):
        with open(args.stats_json, "w") as fh:
            json.dump(server_stats, fh, indent=2)
        print(f"wrote {args.stats_json}")
    return 0


def main(argv) -> int:
    """Entry point for the service subcommands."""
    configure_logging()
    args = build_service_parser().parse_args(argv)
    if args.command == "serve":
        return cmd_serve(args)
    return cmd_bench_service(args)
