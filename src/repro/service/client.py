"""Asyncio client for the :mod:`repro.service` cache protocol.

:class:`CacheClient` is a thin verb layer over one shared
:class:`~repro.service.transport.Transport`: connection pooling, retry
with exponential backoff, protocol negotiation (binary v2 frames with
pipelining when the server speaks them, v1 text otherwise) and batch
framing all live in the transport, so the cluster's ``PeerClient`` and
``ClusterClient`` reuse the exact same plumbing instead of
reimplementing it.  Protocol-level errors (``ERR ...``) are *not*
retried, they raise :class:`ServerError` immediately.

Typical use::

    async with CacheClient("127.0.0.1", 9876) as client:
        value = await client.get("user:42")
        if value is None:                       # miss: read through
            value = await fetch_from_backend()
            await client.set("user:42", value)  # admitted only on reuse
        hot = await client.mget(["user:42", "user:43"])  # one round trip on v2
"""

from __future__ import annotations

import json

from .transport import Reply, ServerError, Transport  # noqa: F401  (re-export)


class CacheClient:
    """Pooled asyncio client with retry/backoff and protocol negotiation.

    The key/value verbs accept an optional ``trace`` keyword — a
    :class:`repro.obs.dist.TraceContext` carried as a trailing
    ``T=<trace>/<span>`` text field (v1) or a typed trace frame field
    (v2) — so a caller's span becomes the parent of the server-side
    request span (distributed causal tracing).  ``trace=None`` (the
    default) sends the exact same bytes as before the field existed.

    ``protocol`` pins the wire framing: ``"auto"`` (default) negotiates
    v2 with v1 fallback at connect time, ``"v1"``/``"v2"`` force one
    framing (forced v2 against a v1-only server raises
    ``ConnectionError``).
    """

    #: response headers followed by a length-prefixed body; subclasses
    #: (the cluster's peer client) extend this for their extra verbs
    _BODY_TOKENS = ("VALUE", "STATS", "METRICS", "TRACE")

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9876,
        pool_size: int = 4,
        max_retries: int = 3,
        backoff: float = 0.05,
        timeout: float = 5.0,
        protocol: str = "auto",
        mux_conns: int = 1,
    ):
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.max_retries = max_retries
        self.backoff = backoff
        self.timeout = timeout
        self.transport = Transport(
            host, port,
            pool_size=pool_size,
            max_retries=max_retries,
            backoff=backoff,
            timeout=timeout,
            mode=protocol,
            mux_conns=mux_conns,
            body_tokens=self._BODY_TOKENS,
        )

    # -- transport delegation -------------------------------------------------
    #
    # The pool internals moved into the Transport; these delegates keep
    # the old surface (tests and operational probes inspect them).

    @property
    def protocol_version(self):
        """Negotiated wire version: ``None`` before first use, then 1 or 2."""
        return self.transport.version

    @property
    def _pool(self):
        return self.transport._pool

    @property
    def _open(self) -> int:
        return self.transport._open

    async def _acquire(self):
        return await self.transport._acquire()

    def _release(self, conn) -> None:
        self.transport._release(conn)

    def _discard(self, conn) -> None:
        self.transport._discard(conn)

    async def close(self) -> None:
        """Close every connection; in-flight requests finish first."""
        await self.transport.close()

    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc):
        await self.close()

    # -- request plumbing ------------------------------------------------------

    async def _request(self, payload: bytes):
        """Send one hand-framed v1 text request; returns (tokens, body).

        .. deprecated:: the text-only spelling survives for callers that
           build raw request lines; new code calls :meth:`Transport.call`
           (via the verb methods), which frames for the negotiated
           protocol version and pipelines on v2.
        """
        return await self.transport._request(payload)

    # -- protocol commands -----------------------------------------------------

    async def get(self, key: str, trace=None):
        """Value bytes for ``key``, or ``None`` on a miss."""
        reply = await self.transport.call("GET", key, trace=trace)
        if reply.status == "MISS":
            return None
        if reply.status == "VALUE":
            return reply.body if reply.body is not None else b""
        raise ServerError(f"unexpected response {reply.status!r}")

    async def set(self, key: str, value: bytes, trace=None) -> bool:
        """Offer ``value``; True if stored, False if only tagged (declined)."""
        reply = await self.transport.call("SET", key, value, trace=trace)
        if reply.status == "STORED":
            return True
        if reply.status == "TAGGED":
            return False
        raise ServerError(f"unexpected response {reply.status!r}")

    async def delete(self, key: str, trace=None) -> bool:
        """Delete ``key``; True iff a stored value was removed."""
        reply = await self.transport.call("DEL", key, trace=trace)
        if reply.status == "DELETED":
            return True
        if reply.status == "NOTFOUND":
            return False
        raise ServerError(f"unexpected response {reply.status!r}")

    async def mget(self, keys, trace=None) -> list:
        """Batch get: one ``bytes | None`` per key, in key order.

        One round trip on v2; emulated as sequential GETs over v1, so the
        observable store behaviour is framing-independent.
        """
        keys = list(keys)
        if not keys:
            return []
        reply = await self.transport.call("MGET", keys, trace=trace)
        if reply.status != "VALUES":
            raise ServerError(f"unexpected response {reply.status!r}")
        return reply.values

    async def mset(self, items, trace=None) -> list:
        """Batch set of ``(key, value)`` pairs: one stored-bool per item."""
        items = list(items)
        if not items:
            return []
        reply = await self.transport.call("MSET", items, trace=trace)
        if reply.status != "STATUSES":
            raise ServerError(f"unexpected response {reply.status!r}")
        return reply.values

    async def mdel(self, keys, trace=None) -> list:
        """Batch delete: one removed-bool per key, in key order."""
        keys = list(keys)
        if not keys:
            return []
        reply = await self.transport.call("MDEL", keys, trace=trace)
        if reply.status != "STATUSES":
            raise ServerError(f"unexpected response {reply.status!r}")
        return reply.values

    async def stats(self) -> dict:
        """The server's stats snapshot (per shard + aggregate)."""
        reply = await self.transport.call("STATS")
        if reply.status != "STATS":
            raise ServerError(f"unexpected response {reply.status!r}")
        return json.loads((reply.body or b"{}").decode("utf-8"))

    async def metrics(self) -> str:
        """The server's obs registry in Prometheus text format.

        Empty when the server runs with observability disabled.
        """
        reply = await self.transport.call("METRICS")
        if reply.status != "METRICS":
            raise ServerError(f"unexpected response {reply.status!r}")
        return (reply.body or b"").decode("utf-8")

    async def trace(self) -> list:
        """Drain the server's trace ring; returns the events as dicts.

        Each call hands back a disjoint batch (the server clears its ring
        on drain), so a collector polling several nodes never
        double-counts.  Empty list when tracing is disabled server-side.
        """
        reply = await self.transport.call("TRACE")
        if reply.status != "TRACE":
            raise ServerError(f"unexpected response {reply.status!r}")
        text = (reply.body or b"").decode("utf-8")
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    async def ping(self) -> bool:
        """Round-trip health check."""
        reply = await self.transport.call("PING")
        return reply.status == "PONG"

    async def quit(self) -> bool:
        """Ask the server to close this connection after acking.

        The server hangs up right after the ``BYE``; the transport drops
        the dead connection on its next checkout.
        """
        reply = await self.transport.call("QUIT")
        return reply.status == "BYE"
