"""Asyncio client for the :mod:`repro.service` cache protocol.

:class:`CacheClient` keeps a pool of TCP connections (opened lazily up to
``pool_size``) and checks one out per request, so a single client instance
can be shared by many concurrent coroutines.  Transient transport failures
— connection refused during server start, a connection dropped mid-request
— are retried with exponential backoff on a fresh connection, up to
``max_retries`` attempts; protocol-level errors (``ERR ...``) are *not*
retried, they raise :class:`ServerError` immediately.

Typical use::

    async with CacheClient("127.0.0.1", 9876) as client:
        value = await client.get("user:42")
        if value is None:                       # miss: read through
            value = await fetch_from_backend()
            await client.set("user:42", value)  # admitted only on reuse
"""

from __future__ import annotations

import asyncio
import json

from ..obs.dist import wire_token
from .server import MAX_VALUE_BYTES


class ServerError(Exception):
    """The server answered ``ERR <reason>`` (not retried)."""


class CacheClient:
    """Pooled asyncio client with retry/backoff.

    The key/value verbs accept an optional ``trace`` keyword — a
    :class:`repro.obs.dist.TraceContext` appended to the request line as a
    trailing ``T=<trace>/<span>`` field — so a caller's span becomes the
    parent of the server-side request span (distributed causal tracing).
    ``trace=None`` (the default) sends the exact same bytes as before the
    field existed.
    """

    #: response headers followed by a length-prefixed body; subclasses
    #: (the cluster's peer client) extend this for their extra verbs
    _BODY_TOKENS = ("VALUE", "STATS", "METRICS", "TRACE")

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9876,
        pool_size: int = 4,
        max_retries: int = 3,
        backoff: float = 0.05,
        timeout: float = 5.0,
    ):
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.max_retries = max_retries
        self.backoff = backoff
        self.timeout = timeout
        self._pool = asyncio.Queue()
        self._open = 0
        self._closed = False

    # -- pool management ------------------------------------------------------

    async def _acquire(self):
        """Check a connection out of the pool, dialing a new one if allowed."""
        if self._closed:
            raise RuntimeError("client is closed")
        while True:
            try:
                conn = self._pool.get_nowait()
            except asyncio.QueueEmpty:
                break
            if not conn[1].is_closing():
                return conn
            self._open -= 1  # stale connection: drop and look again
        if self._open < self.pool_size:
            self._open += 1
            try:
                return await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port), self.timeout
                )
            except BaseException:
                # repro: atomic=releases the slot the += above reserved; every path balances the counter, no read is re-used across the await
                self._open -= 1
                raise
        return await self._pool.get()

    def _release(self, conn) -> None:
        if self._closed or conn[1].is_closing():
            self._discard(conn)
        else:
            self._pool.put_nowait(conn)

    def _discard(self, conn) -> None:
        self._open -= 1
        conn[1].close()

    async def close(self) -> None:
        """Close every pooled connection; in-flight requests finish first."""
        self._closed = True
        while self._open > 0:
            try:
                reader, writer = await asyncio.wait_for(self._pool.get(), 1.0)
            except asyncio.TimeoutError:
                break  # still checked out; the holder discards on release
            # repro: atomic=loop re-reads _open each pass; concurrent _discard only decrements, so the worst case is an early exit
            self._open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc):
        await self.close()

    # -- request plumbing ------------------------------------------------------

    async def _request(self, payload: bytes):
        """Send one framed request, return the response header tokens + body."""
        attempt = 0
        while True:
            conn = None
            try:
                conn = await self._acquire()
                reader, writer = conn
                writer.write(payload)
                await writer.drain()
                header = await asyncio.wait_for(reader.readline(), self.timeout)
                if not header:
                    raise ConnectionError("server closed connection")
                tokens = header.decode("utf-8").split()
                body = None
                if tokens and tokens[0] in self._BODY_TOKENS:
                    length = int(tokens[1])
                    if not 0 <= length <= MAX_VALUE_BYTES:
                        raise ConnectionError(f"insane body length {length}")
                    body = await asyncio.wait_for(
                        reader.readexactly(length + 1), self.timeout
                    )
                    body = body[:-1]
            except asyncio.CancelledError:
                # cancelled from outside (e.g. a caller's wait_for) with
                # the request possibly already on the wire: the pending
                # response would poison the next request on this
                # connection, so tear it down instead of repooling it
                if conn is not None:
                    self._discard(conn)
                raise
            except (ConnectionError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError, OSError) as exc:
                if conn is not None:  # dial failures never joined the pool
                    self._discard(conn)
                attempt += 1
                if attempt > self.max_retries:
                    raise ConnectionError(
                        f"request failed after {attempt} attempts: {exc}"
                    ) from exc
                await asyncio.sleep(self.backoff * (2 ** (attempt - 1)))
                continue
            self._release(conn)
            if tokens and tokens[0] == "ERR":
                raise ServerError(" ".join(tokens[1:]))
            return tokens, body

    # -- protocol commands -----------------------------------------------------

    async def get(self, key: str, trace=None):
        """Value bytes for ``key``, or ``None`` on a miss."""
        tail = f" {wire_token(trace)}" if trace is not None else ""
        tokens, body = await self._request(f"GET {key}{tail}\n".encode("utf-8"))
        if tokens[0] == "MISS":
            return None
        if tokens[0] == "VALUE":
            return body
        raise ServerError(f"unexpected response {tokens!r}")

    async def set(self, key: str, value: bytes, trace=None) -> bool:
        """Offer ``value``; True if stored, False if only tagged (declined)."""
        tail = f" {wire_token(trace)}" if trace is not None else ""
        payload = b"SET %s %d%s\n%s\n" % (
            key.encode("utf-8"), len(value), tail.encode("utf-8"), value,
        )
        tokens, _ = await self._request(payload)
        if tokens[0] == "STORED":
            return True
        if tokens[0] == "TAGGED":
            return False
        raise ServerError(f"unexpected response {tokens!r}")

    async def delete(self, key: str, trace=None) -> bool:
        """Delete ``key``; True iff a stored value was removed."""
        tail = f" {wire_token(trace)}" if trace is not None else ""
        tokens, _ = await self._request(f"DEL {key}{tail}\n".encode("utf-8"))
        if tokens[0] == "DELETED":
            return True
        if tokens[0] == "NOTFOUND":
            return False
        raise ServerError(f"unexpected response {tokens!r}")

    async def stats(self) -> dict:
        """The server's stats snapshot (per shard + aggregate)."""
        tokens, body = await self._request(b"STATS\n")
        if tokens[0] != "STATS":
            raise ServerError(f"unexpected response {tokens!r}")
        return json.loads(body.decode("utf-8"))

    async def metrics(self) -> str:
        """The server's obs registry in Prometheus text format.

        Empty when the server runs with observability disabled.
        """
        tokens, body = await self._request(b"METRICS\n")
        if tokens[0] != "METRICS":
            raise ServerError(f"unexpected response {tokens!r}")
        return body.decode("utf-8")

    async def trace(self) -> list:
        """Drain the server's trace ring; returns the events as dicts.

        Each call hands back a disjoint batch (the server clears its ring
        on drain), so a collector polling several nodes never
        double-counts.  Empty list when tracing is disabled server-side.
        """
        tokens, body = await self._request(b"TRACE\n")
        if tokens[0] != "TRACE":
            raise ServerError(f"unexpected response {tokens!r}")
        text = body.decode("utf-8")
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    async def ping(self) -> bool:
        """Round-trip health check."""
        tokens, _ = await self._request(b"PING\n")
        return tokens[0] == "PONG"

    async def quit(self) -> bool:
        """Ask the server to close this connection after acking.

        The server hangs up right after the ``BYE``; the pool's stale
        check drops the dead connection on its next checkout.
        """
        tokens, _ = await self._request(b"QUIT\n")
        return tokens[0] == "BYE"
