"""Load generation: replay simulator workloads as GET/SET cache traffic.

The generator converts the reference streams of
:mod:`repro.workloads.synthetic` / :mod:`repro.workloads.mixes` into
read-through cache traffic: each line address becomes a key, each reference
a GET, and every miss is followed by a SET offering the (deterministic)
value a backing store would have returned.  Because the key stream *is* the
simulator's address stream, the hit rates the service reports are directly
comparable to the simulator's SLLC hit rates on the same workload — the
point of the exercise is seeing the paper's selective allocation act as an
admission policy on live traffic.

Two harnesses share that conversion:

* :func:`replay_store` — drive a store in-process (no sockets), the fastest
  way to compare admission policies at equal data capacity;
* :func:`run_load` — closed-loop load against a running server: one pooled
  asyncio client per core-trace, each issuing its trace's requests
  back-to-back, measuring client-side throughput and latency quantiles.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from ..obs.logging import get_logger
from ..obs.prof import clock
from ..workloads.trace import Trace, Workload
from .client import CacheClient
from .stats import quantile

log = get_logger(__name__)

#: default value payload size (one cache line, matching the simulator)
VALUE_BYTES = 64


def key_of(addr: int) -> str:
    """Stable key for a line address (``line:<hex>``)."""
    return f"line:{addr:x}"


def value_of(addr: int, size: int = VALUE_BYTES) -> bytes:
    """Deterministic value payload a backing store would return."""
    seed = addr.to_bytes(8, "little", signed=True)
    reps = size // len(seed) + 1
    return (seed * reps)[:size]


@dataclass
class LoadResult:
    """Client-side measurements of one load-generation run."""

    name: str
    ops: int = 0
    gets: int = 0
    hits: int = 0
    sets: int = 0
    sets_stored: int = 0
    sets_tagged: int = 0
    wall_s: float = 0.0
    latencies_s: list = field(default_factory=list, repr=False)
    server_stats: dict = field(default_factory=dict, repr=False)

    @property
    def hit_rate(self) -> float:
        """Fraction of GETs answered from the cache (client-observed)."""
        return self.hits / self.gets if self.gets else 0.0

    @property
    def throughput(self) -> float:
        """Requests per second over the whole run."""
        return self.ops / self.wall_s if self.wall_s else 0.0

    def summary(self) -> dict:
        """JSON-safe summary (what the bench harness persists)."""
        return {
            "name": self.name,
            "ops": self.ops,
            "gets": self.gets,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "sets": self.sets,
            "sets_stored": self.sets_stored,
            "sets_tagged": self.sets_tagged,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput,
            "p50_ms": quantile(self.latencies_s, 0.50) * 1e3,
            "p99_ms": quantile(self.latencies_s, 0.99) * 1e3,
        }


# -- in-process replay (no sockets) -----------------------------------------


def replay_store(store, workload: Workload, value_bytes: int = VALUE_BYTES) -> LoadResult:
    """Replay ``workload`` against a store object in-process.

    ``store`` is anything with ``get``/``set`` (a
    :class:`~repro.service.store.ReuseStore` or
    :class:`~repro.service.sharding.ShardedStore`).  Traces are interleaved
    round-robin, approximating the concurrent arrival order the simulator's
    cores would produce.
    """
    result = LoadResult(name=workload.name)
    start = clock()
    streams = [(t.addrs, len(t.addrs)) for t in workload.traces]
    longest = max(n for _, n in streams)
    for i in range(longest):
        for addrs, n in streams:
            if i >= n:
                continue
            addr = addrs[i]
            key = key_of(addr)
            result.gets += 1
            result.ops += 1
            if store.get(key) is not None:
                result.hits += 1
                continue
            result.sets += 1
            result.ops += 1
            if store.set(key, value_of(addr, value_bytes)):
                result.sets_stored += 1
            else:
                result.sets_tagged += 1
    result.wall_s = clock() - start
    return result


# -- closed-loop load against a live server ----------------------------------


async def _replay_trace(
    client: CacheClient,
    trace: Trace,
    result: LoadResult,
    value_bytes: int,
    sample_every: int,
) -> None:
    """One worker: issue the trace's read-through traffic back-to-back."""
    await _replay_addrs(client, trace.addrs, result, value_bytes, sample_every)


async def _replay_addrs(
    client,
    addrs,
    result: LoadResult,
    value_bytes: int,
    sample_every: int,
) -> None:
    """Issue one address stream's read-through traffic back-to-back."""
    for i, addr in enumerate(addrs):
        key = key_of(addr)
        t0 = clock()
        value = await client.get(key)
        if i % sample_every == 0:
            result.latencies_s.append(clock() - t0)
        result.gets += 1
        result.ops += 1
        if value is not None:
            result.hits += 1
            continue
        stored = await client.set(key, value_of(addr, value_bytes))
        result.sets += 1
        result.ops += 1
        if stored:
            result.sets_stored += 1
        else:
            result.sets_tagged += 1


async def replay_with_client(
    client,
    workload: Workload,
    value_bytes: int = VALUE_BYTES,
    sample_every: int = 1,
) -> LoadResult:
    """Replay ``workload`` through an existing client, traces concurrent.

    ``client`` is anything with async ``get``/``set`` — a
    :class:`CacheClient` or a cluster-routing client — and is *shared* by
    all trace workers (its pool provides the concurrency).  The caller
    keeps ownership: the client is not closed.
    """
    result = LoadResult(name=workload.name)
    start = clock()
    await asyncio.gather(*[
        _replay_trace(client, trace, result, value_bytes, sample_every)
        for trace in workload.traces
    ])
    result.wall_s = clock() - start
    return result


async def replay_interleaved(
    client,
    workload: Workload,
    value_bytes: int = VALUE_BYTES,
    sample_every: int = 1,
) -> LoadResult:
    """Replay ``workload`` through ``client`` in deterministic arrival order.

    One worker round-robins the traces ref by ref — the live twin of
    :func:`replay_store`'s interleaving.  Concurrent workers
    (:func:`replay_with_client`) reach a different interleaving for every
    pool/topology, which perturbs replacement locality by more than a
    capacity change moves the hit rate; sweeps that *compare* hit rates
    across topologies (``repro cluster bench``) need the arrival order
    pinned so capacity is the only variable.  The caller keeps ownership
    of the client.
    """
    result = LoadResult(name=workload.name)
    start = clock()
    streams = [(t.addrs, len(t.addrs)) for t in workload.traces]
    longest = max(n for _, n in streams)
    step = 0
    for i in range(longest):
        for addrs, n in streams:
            if i >= n:
                continue
            addr = addrs[i]
            key = key_of(addr)
            t0 = clock()
            value = await client.get(key)
            if step % sample_every == 0:
                result.latencies_s.append(clock() - t0)
            step += 1
            result.gets += 1
            result.ops += 1
            if value is not None:
                result.hits += 1
                continue
            stored = await client.set(key, value_of(addr, value_bytes))
            result.sets += 1
            result.ops += 1
            if stored:
                result.sets_stored += 1
            else:
                result.sets_tagged += 1
    result.wall_s = clock() - start
    return result


async def _replay_addrs_batched(
    client,
    addrs,
    result: LoadResult,
    value_bytes: int,
    batch: int,
    sample_every: int,
) -> None:
    """Issue one address stream as MGET/MSET batches of ``batch`` refs.

    Each chunk is one MGET for the keys followed by one MSET offering
    values for the misses (read-through).  The store sees exactly the
    sequential op order of :func:`_replay_addrs` chunk by chunk — v1
    transports expand the batches to the same singles — so hit rates are
    framing-independent while round trips drop by ~``batch``×.
    """
    for start in range(0, len(addrs), batch):
        chunk = addrs[start:start + batch]
        keys = [key_of(addr) for addr in chunk]
        t0 = clock()
        values = await client.mget(keys)
        if (start // batch) % sample_every == 0:
            result.latencies_s.append(clock() - t0)
        result.gets += len(chunk)
        result.ops += len(chunk)
        misses = [(addr, key) for addr, key, value
                  in zip(chunk, keys, values) if value is None]
        result.hits += len(chunk) - len(misses)
        if not misses:
            continue
        flags = await client.mset(
            [(key, value_of(addr, value_bytes)) for addr, key in misses]
        )
        result.sets += len(misses)
        result.ops += len(misses)
        stored = sum(1 for flag in flags if flag)
        result.sets_stored += stored
        result.sets_tagged += len(misses) - stored


def _interleaved_addrs(workload: Workload) -> list:
    """The workload's refs in deterministic round-robin arrival order."""
    streams = [(t.addrs, len(t.addrs)) for t in workload.traces]
    longest = max(n for _, n in streams)
    out = []
    for i in range(longest):
        for addrs, n in streams:
            if i < n:
                out.append(addrs[i])
    return out


async def replay_batched(
    client,
    workload: Workload,
    value_bytes: int = VALUE_BYTES,
    batch: int = 64,
    sample_every: int = 1,
) -> LoadResult:
    """Replay ``workload`` as batch verbs in deterministic arrival order.

    The batched twin of :func:`replay_interleaved`: one worker walks the
    round-robin interleaved ref stream in MGET/MSET chunks of ``batch``.
    Because the op order is pinned and batch emulation over v1 issues the
    identical singles sequence, a v1 and a v2 run of this function report
    *the same hit rate* — the parity gate ``bench-service`` relies on when
    it quotes the v2 speedup.  The caller keeps ownership of the client.
    """
    result = LoadResult(name=workload.name)
    start = clock()
    await _replay_addrs_batched(
        client, _interleaved_addrs(workload), result, value_bytes, batch,
        sample_every,
    )
    result.wall_s = clock() - start
    return result


async def run_load(
    host: str,
    port: int,
    workload: Workload,
    pool_size: int = 2,
    value_bytes: int = VALUE_BYTES,
    sample_every: int = 1,
    fetch_server_stats: bool = True,
    pipeline: int = 1,
    batch: int = 1,
    protocol: str = "auto",
) -> LoadResult:
    """Closed-loop run: one client (with ``pool_size`` connections) per trace.

    Every core-trace of ``workload`` gets its own worker coroutine and
    client, all running concurrently; each worker issues its next request as
    soon as the previous response arrives (closed loop).  Client-side
    latency is sampled every ``sample_every`` GETs to bound memory on long
    runs.

    ``pipeline`` splits each trace over N concurrent workers sharing the
    trace's client (on v2 they multiplex one framed connection — many
    requests in flight per socket); ``batch`` > 1 chunks each worker's
    refs into MGET/MSET batch verbs; ``protocol`` pins the wire framing
    (``auto``/``v1``/``v2``).
    """
    result = LoadResult(name=workload.name)
    log.debug(
        "load %s: %d trace(s) against %s:%d",
        workload.name, len(workload.traces), host, port,
    )
    clients = [
        CacheClient(host, port, pool_size=pool_size, protocol=protocol)
        for _ in workload.traces
    ]
    start = clock()
    try:
        workers = []
        for client, trace in zip(clients, workload.traces):
            if pipeline <= 1:
                slices = [trace.addrs]
            else:
                # stride slices: worker w takes refs w, w+N, w+2N, ... so
                # every worker sees the trace's locality, not one segment
                slices = [trace.addrs[w::pipeline] for w in range(pipeline)]
            for addrs in slices:
                if len(addrs) == 0:
                    continue
                if batch > 1:
                    workers.append(_replay_addrs_batched(
                        client, addrs, result, value_bytes, batch,
                        sample_every,
                    ))
                else:
                    workers.append(_replay_addrs(
                        client, addrs, result, value_bytes, sample_every
                    ))
        await asyncio.gather(*workers)
        result.wall_s = clock() - start
        log.debug(
            "load %s: %d ops in %.2fs (hit rate %.4f)",
            workload.name, result.ops, result.wall_s, result.hit_rate,
        )
        if fetch_server_stats:
            result.server_stats = await clients[0].stats()
    finally:
        for client in clients:
            await client.close()
    return result
