"""Hash-based sharding of :class:`~repro.service.store.ReuseStore` instances.

:class:`ShardedStore` spreads keys across N independent stores the way a
banked SLLC spreads line addresses across banks: a stable hash of the key
(low 32 bits of :func:`~repro.service.store.stable_hash`; the stores' tag
directories index with the high bits, so the two maps stay decorrelated)
picks the shard, and each shard serialises its own operations behind its own
lock.  Disjoint keys on different shards therefore never contend — the
property that lets the asyncio server and thread-pool clients scale.

The key→shard map depends only on ``(key, num_shards)``, never on process
state or insertion order, so a client computing shards locally and a server
routing internally always agree.
"""

from __future__ import annotations

from ..obs import Observability
from .stats import merge_snapshots
from .store import ReuseStore, stable_hash


class ShardedStore:
    """N-way sharded front end over independent :class:`ReuseStore` shards."""

    def __init__(
        self,
        num_shards: int = 4,
        data_capacity: int = 1024,
        tag_capacity: int | None = None,
        tag_assoc: int = 8,
        admission: str = "reuse",
        seed: int = 0,
        obs: Observability | None = None,
    ):
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if data_capacity < num_shards:
            raise ValueError(
                f"data_capacity ({data_capacity}) must be >= num_shards "
                f"({num_shards}) so every shard holds at least one entry"
            )
        self.num_shards = num_shards
        self.admission = admission
        per_shard_data = data_capacity // num_shards
        per_shard_tags = tag_capacity // num_shards if tag_capacity else None
        self.shards = [
            ReuseStore(
                data_capacity=per_shard_data,
                tag_capacity=per_shard_tags,
                tag_assoc=tag_assoc,
                admission=admission,
                seed=seed + i,
            )
            for i in range(num_shards)
        ]
        self.data_capacity = per_shard_data * num_shards
        #: observability bundle (disabled by default: zero overhead).  When
        #: metrics are on, a collector mirrors each shard's ShardStats into
        #: the registry at snapshot time — the request path stays plain ints.
        self.obs = obs if obs is not None else Observability.disabled()
        if self.obs.registry.enabled:
            self.obs.registry.register_collector(self._publish_metrics)

    # -- routing -------------------------------------------------------------

    def shard_of(self, key: str) -> int:
        """Deterministic shard index for ``key`` (stable across processes)."""
        return (stable_hash(key) & 0xFFFFFFFF) % self.num_shards

    def shard_for(self, key: str) -> ReuseStore:
        """The shard instance responsible for ``key``."""
        return self.shards[self.shard_of(key)]

    # -- key/value API (delegates under the owning shard's lock) -------------

    def get(self, key: str):
        """Look up ``key`` on its shard; value bytes or ``None``."""
        return self.shard_for(key).get(key)

    def set(self, key: str, value: bytes) -> bool:
        """Offer ``value`` on the owning shard; True iff stored."""
        return self.shard_for(key).set(key, value)

    def delete(self, key: str) -> bool:
        """Remove ``key`` from its shard; True iff a value was held."""
        return self.shard_for(key).delete(key)

    def force_set(self, key: str, value: bytes) -> bool:
        """Store bypassing admission (cluster migration; see ReuseStore)."""
        return self.shard_for(key).force_set(key, value)

    def contains(self, key: str) -> bool:
        """True iff ``key``'s value is stored on its shard."""
        return self.shard_for(key).contains(key)

    def keys(self) -> list:
        """Every stored key across shards, sorted (deterministic order)."""
        out = []
        for shard in self.shards:
            out.extend(shard.keys())
        return sorted(out)

    def set_evict_listener(self, fn) -> None:
        """Install ``fn(key, kind)`` as every shard's eviction listener."""
        for shard in self.shards:
            shard.evict_listener = fn

    def set_decision_listener(self, fn) -> None:
        """Install ``fn(key, decision)`` as every shard's decision listener."""
        for shard in self.shards:
            shard.decision_listener = fn

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def clear(self) -> None:
        """Clear every shard (entries and stats)."""
        for shard in self.shards:
            shard.clear()

    # -- stats ---------------------------------------------------------------

    #: monotonic ShardStats fields mirrored as registry counters
    _COUNTER_KEYS = (
        "hits", "misses", "reuse_admissions", "tag_only_sets",
        "data_evictions", "tag_evictions", "deletes", "bytes_written",
        "latency_samples",
    )

    def _publish_metrics(self, registry) -> None:
        """Collector mirroring per-shard ShardStats into the obs registry."""
        for i, shard in enumerate(self.shards):
            snap = shard.stats.snapshot()
            label = str(i)
            for key in self._COUNTER_KEYS:
                registry.counter(
                    f"repro_service_shard_{key}",
                    help="per-shard ShardStats counter",
                    shard=label,
                ).set_total(snap[key])
            registry.gauge(
                "repro_service_shard_bytes_stored", shard=label
            ).set(float(snap["bytes_stored"]))
            registry.gauge(
                "repro_service_shard_hit_rate", shard=label
            ).set(snap["hit_rate"])
            registry.gauge(
                "repro_service_shard_p50_seconds", shard=label
            ).set(snap["p50_s"])
            registry.gauge(
                "repro_service_shard_p99_seconds", shard=label
            ).set(snap["p99_s"])
            registry.gauge(
                "repro_service_shard_reservoir_occupancy", shard=label
            ).set(float(snap["reservoir_occupancy"]))

    def stats_snapshot(self) -> dict:
        """Per-shard snapshots plus the cluster-wide aggregate."""
        per_shard = [shard.stats.snapshot() for shard in self.shards]
        return {
            "num_shards": self.num_shards,
            "admission": self.admission,
            "data_capacity": self.data_capacity,
            "stored_entries": sum(len(s) for s in self.shards),
            "shards": per_shard,
            "total": merge_snapshots(per_shard),
        }
