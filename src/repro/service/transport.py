"""One shared client transport for the service and cluster protocols.

Every client in the tree — :class:`~repro.service.client.CacheClient`,
the cluster's ``PeerClient`` and ``ClusterClient`` — used to reimplement
the same ``_request`` plumbing: a lazy connection pool, retry with
exponential backoff, and v1 text framing.  :class:`Transport` is that
plumbing extracted once, extended with wire protocol v2
(:mod:`repro.service.protocol`): binary frames, request pipelining over
multiplexed connections, and batch verbs.

Protocol negotiation happens on first use.  In ``auto`` mode the
transport dials one connection and sends a v2 ``HELLO`` probe frame; a
v2 server answers with a ``HELLO`` frame (magic first byte) and the
probe connection becomes the first multiplexed v2 connection, while a
v1 server answers a text ``ERR`` line (the probe frame decodes as one
newline-terminated garbage line) and the transport falls back to v1
text on pooled connections.  ``mode="v1"``/``mode="v2"`` pin the
framing; forced v2 against a v1-only server raises
:class:`ConnectionError` instead of falling back.

Batch verbs (``MGET``/``MSET``/``MDEL``) are emulated over v1 as
sequential singles, so callers get one behaviour — and identical
operation order, which is what the bench's hit-rate parity gate relies
on — regardless of the negotiated framing.
"""

from __future__ import annotations

import asyncio

from ..obs.dist import wire_token
from .protocol import (
    HELLO_PAYLOAD,
    MAGIC,
    MAX_VALUE_BYTES,
    REQUEST_FIELDS,
    FrameEncoder,
    FrameError,
    PayloadReader,
    STATUS_NAMES,
    VERB_IDS,
    encode_request,
    read_frame,
)

#: batch verbs emulated as sequential singles over v1 text
BATCH_VERBS = ("MGET", "MSET", "MDEL")

#: v1 request-line templates per verb: positional fields fill ``{0}``,
#: ``{1}``, ... and ``{n}`` is the byte length of the value body sent
#: after the line.  Plain literal on purpose — FLOW003 cross-checks these
#: keys against the protocol spec's v1 framing table, so a verb present
#: here but absent from the spec (or vice versa) is a finding.
V1_LINES = {
    "GET": "GET {0}",
    "SET": "SET {0} {n}",
    "DEL": "DEL {0}",
    "STATS": "STATS",
    "METRICS": "METRICS",
    "TRACE": "TRACE",
    "PING": "PING",
    "QUIT": "QUIT",
    "REPL": "REPL {0} {1} {n}",
    "INVAL": "INVAL {0} {1}",
    "PUTS": "PUTS {0} {1}",
    "RGET": "RGET {0}",
    "CSTATUS": "CSTATUS",
    "DRAIN": "DRAIN",
}

class ServerError(Exception):
    """The server answered ``ERR <reason>`` (not retried)."""


class Reply:
    """One decoded response, framing-independent.

    ``status`` is the v1 response token / v2 status name (``"VALUE"``,
    ``"STORED"``, ...); ``body`` carries blob payloads (VALUE, STATS,
    METRICS, TRACE, CSTATUS); ``values`` carries batch payloads — a list
    of ``bytes | None`` for VALUES, a list of ``bool`` for STATUSES.
    """

    __slots__ = ("status", "body", "values")

    def __init__(self, status, body=None, values=None):
        self.status = status
        self.body = body
        self.values = values

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Reply({self.status}, body={self.body!r:.40}, values={self.values!r:.40})"


class _MuxConn:
    """One multiplexed v2 connection: many in-flight frames, one reader.

    Requests are tagged with a per-connection sequence id; a background
    read loop matches response frames back to caller futures, so any
    number of tasks can pipeline through one socket.  A caller that
    times out or is cancelled just abandons its sequence id — the late
    response is dropped on arrival and the connection stays healthy
    (unlike v1, where an unconsumed response poisons the stream).
    """

    __slots__ = ("transport", "reader", "writer", "enc", "pending",
                 "next_seq", "dead", "task")

    def __init__(self, transport, reader, writer):
        self.transport = transport
        self.reader = reader
        self.writer = writer
        self.enc = FrameEncoder()
        self.pending = {}  # seq -> Future[Frame]
        self.next_seq = 1
        self.dead = False
        self.task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self):
        try:
            while True:
                frame = await read_frame(self.reader)
                if frame is None:
                    raise ConnectionError("server closed connection")
                fut = self.pending.pop(frame.seq, None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
        except asyncio.CancelledError:
            raise
        except (FrameError, ConnectionError, OSError,
                asyncio.IncompleteReadError) as exc:
            self._fail(exc)

    def _fail(self, exc) -> None:
        """Mark the connection dead and fail every in-flight caller."""
        self.dead = True
        pending, self.pending = self.pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(ConnectionError(str(exc)))
        self.writer.close()
        self.transport._drop_mux(self)

    async def call(self, verb: str, fields, token, timeout: float):
        """Send one frame and await its matching response frame."""
        seq = self.next_seq
        self.next_seq = (self.next_seq % 0xFFFFFFFF) + 1
        payload = encode_request(self.enc, verb, fields, seq, token)
        fut = asyncio.get_event_loop().create_future()
        self.pending[seq] = fut
        try:
            self.writer.write(payload)
            await self.writer.drain()
            return await asyncio.wait_for(fut, timeout)
        finally:
            self.pending.pop(seq, None)

    async def aclose(self):
        self.dead = True
        self.task.cancel()
        try:
            await self.task
        except (asyncio.CancelledError, Exception):
            pass
        pending, self.pending = self.pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(ConnectionError("transport closed"))
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class Transport:
    """Pooled, retrying, version-negotiating request transport.

    One instance per (host, port) client; shared by many concurrent
    coroutines.  v1 requests check pooled connections in and out
    (``pool_size`` caps dials); v2 requests pipeline through up to
    ``mux_conns`` multiplexed connections.  Transient transport failures
    are retried with exponential backoff up to ``max_retries`` attempts;
    ``ERR`` answers raise :class:`ServerError` immediately and are never
    retried.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9876,
        pool_size: int = 4,
        max_retries: int = 3,
        backoff: float = 0.05,
        timeout: float = 5.0,
        mode: str = "auto",
        mux_conns: int = 1,
        body_tokens=("VALUE", "STATS", "METRICS", "TRACE"),
    ):
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        if mode not in ("auto", "v1", "v2"):
            raise ValueError(f"mode must be auto/v1/v2, got {mode!r}")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.max_retries = max_retries
        self.backoff = backoff
        self.timeout = timeout
        self.mode = mode
        self.mux_conns = max(1, mux_conns)
        self.body_tokens = tuple(body_tokens)
        #: negotiated protocol version: None until first use, then 1 or 2
        self.version = 1 if mode == "v1" else None
        self._pool = asyncio.Queue()  # idle v1 (reader, writer) pairs
        self._open = 0  # pooled/checked-out v1 conns + live mux conns
        self._mux = []  # live _MuxConn instances
        self._next_mux = 0
        self._neg_lock = None  # created lazily: needs a running loop on 3.9
        self._closed = False

    # -- negotiation ----------------------------------------------------------

    async def _negotiate(self) -> None:
        """Resolve ``self.version`` by probing the server once.

        Serialised under a lazy lock so concurrent first requests probe
        exactly once; dial failures retry with the transport's backoff.
        """
        if self.version is not None:
            return
        if self._neg_lock is None:
            self._neg_lock = asyncio.Lock()
        async with self._neg_lock:
            if self.version is not None:
                return
            attempt = 0
            while True:
                try:
                    await self._probe_once()
                    return
                except asyncio.CancelledError:
                    raise
                except (ConnectionError, OSError, asyncio.TimeoutError,
                        asyncio.IncompleteReadError) as exc:
                    attempt += 1
                    if attempt > self.max_retries:
                        raise ConnectionError(
                            f"negotiation failed after {attempt} attempts: {exc}"
                        ) from exc
                    await asyncio.sleep(self.backoff * (2 ** (attempt - 1)))

    async def _probe_once(self) -> None:
        """One HELLO probe: dial, send, sniff the first response byte.

        On success the probe connection is committed — as the first mux
        connection (v2) or into the v1 pool — so negotiation costs no
        extra round trip.  On any failure (including cancellation) the
        connection is closed and ``_open`` is untouched: the probe is
        only counted once committed.
        """
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        try:
            enc = FrameEncoder()
            writer.write(enc.simple(VERB_IDS["HELLO"], 0, HELLO_PAYLOAD))
            await writer.drain()
            first = await asyncio.wait_for(reader.readexactly(1), self.timeout)
            if first[0] == MAGIC:
                # v2 server: consume the HELLO response frame, keep the conn
                frame = await asyncio.wait_for(
                    read_frame(reader, first_byte=first), self.timeout
                )
                if frame is None or STATUS_NAMES.get(frame.verb_id) != "HELLO":
                    raise ConnectionError("malformed HELLO response")
                self.version = 2
                # repro: atomic=committed under _neg_lock with no await between the version flip and the counter bump
                self._open += 1
                self._mux.append(_MuxConn(self, reader, writer))
                return
            if self.mode == "v2":
                raise ConnectionError(
                    f"server at {self.host}:{self.port} does not speak "
                    f"protocol v2 (forced mode=v2)"
                )
            # v1 server: the probe frame read as one garbage line and was
            # answered "ERR request not utf-8" — drain it, pool the conn
            line = first + await asyncio.wait_for(reader.readline(), self.timeout)
            if not line.endswith(b"\n"):
                raise ConnectionError("server closed during negotiation")
            self.version = 1
            # repro: atomic=committed under _neg_lock with no await between the version flip and the counter bump
            self._open += 1
            self._pool.put_nowait((reader, writer))
        except FrameError as exc:
            writer.close()
            raise ConnectionError(str(exc)) from exc
        except BaseException:
            # repro: atomic=probe conns are counted only once committed, so every failure path (cancel included) just closes
            writer.close()
            raise

    # -- unified request API --------------------------------------------------

    async def call(self, verb: str, *fields, trace=None) -> Reply:
        """Send ``verb`` with positional ``fields``; returns a :class:`Reply`.

        Negotiates the protocol on first use, frames the request for the
        negotiated version, retries transient transport failures, and
        raises :class:`ServerError` on an ``ERR`` answer.  ``trace`` is a
        :class:`~repro.obs.dist.TraceContext` carried as the typed trace
        frame field (v2) or the trailing ``T=`` text field (v1).
        """
        if self._closed:
            raise RuntimeError("client is closed")
        if self.version is None:
            await self._negotiate()
        if verb in BATCH_VERBS and self.version == 1:
            return await self._emulate_batch(verb, fields[0], trace)
        token = wire_token(trace) if trace is not None else None
        attempt = 0
        while True:
            try:
                if self.version == 2:
                    conn = await self._pick_mux()
                    frame = await conn.call(verb, fields, token, self.timeout)
                    return self._reply_v2(frame)
                tokens, body = await self._request_once(
                    _v1_payload(verb, fields, token)
                )
                return Reply(tokens[0], body=body)
            except asyncio.CancelledError:
                raise
            except (ConnectionError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError, OSError) as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise ConnectionError(
                        f"request failed after {attempt} attempts: {exc}"
                    ) from exc
                await asyncio.sleep(self.backoff * (2 ** (attempt - 1)))

    async def _emulate_batch(self, verb: str, items, trace) -> Reply:
        """Run a batch verb as sequential singles over a v1 connection.

        Sequential on purpose: the operations hit the store in exactly
        the order a v2 server applies a batch frame, so admission
        decisions (and therefore hit rates) are framing-independent.
        """
        if verb == "MGET":
            values = []
            for key in items:
                reply = await self.call("GET", key, trace=trace)
                values.append(reply.body if reply.status == "VALUE" else None)
            return Reply("VALUES", values=values)
        if verb == "MSET":
            flags = []
            for key, value in items:
                reply = await self.call("SET", key, value, trace=trace)
                flags.append(reply.status == "STORED")
            return Reply("STATUSES", values=flags)
        flags = []
        for key in items:
            reply = await self.call("DEL", key, trace=trace)
            flags.append(reply.status == "DELETED")
        return Reply("STATUSES", values=flags)

    def _reply_v2(self, frame) -> Reply:
        status = STATUS_NAMES.get(frame.verb_id)
        if status is None:
            raise ConnectionError(f"unknown status id {frame.verb_id}")
        if status == "ERR":
            raise ServerError(frame.payload.decode("utf-8", "replace"))
        if status == "VALUES":
            rd = PayloadReader(frame.payload)
            values = [rd.value() if rd.u8() else None
                      for _ in range(rd.u32())]
            return Reply(status, values=values)
        if status == "STATUSES":
            rd = PayloadReader(frame.payload)
            values = [bool(rd.u8()) for _ in range(rd.u32())]
            return Reply(status, values=values)
        return Reply(status, body=frame.payload if frame.payload else None)

    # -- v2 connection management ---------------------------------------------

    async def _pick_mux(self) -> _MuxConn:
        """Round-robin over live mux connections, dialing up to the cap."""
        self._mux = [c for c in self._mux if not c.dead]
        if len(self._mux) < self.mux_conns:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout
            )
            # repro: atomic=counter bumped in the same step the conn is registered; _drop_mux is the single decrement path
            self._open += 1
            conn = _MuxConn(self, reader, writer)
            # repro: atomic=concurrent dialers may briefly overshoot mux_conns; every conn is registered+counted, so close() still reaps all of them
            self._mux.append(conn)
            return conn
        self._next_mux = (self._next_mux + 1) % len(self._mux)
        return self._mux[self._next_mux]

    def _drop_mux(self, conn) -> None:
        if conn in self._mux:
            self._mux.remove(conn)
            self._open -= 1

    # -- v1 pool management ---------------------------------------------------

    async def _acquire(self):
        """Check a v1 connection out of the pool, dialing if allowed."""
        if self._closed:
            raise RuntimeError("client is closed")
        while True:
            try:
                conn = self._pool.get_nowait()
            except asyncio.QueueEmpty:
                break
            if not conn[1].is_closing():
                return conn
            self._open -= 1  # stale connection: drop and look again
        if self._open < self.pool_size:
            self._open += 1
            try:
                return await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port), self.timeout
                )
            except BaseException:
                # repro: atomic=releases the slot the += above reserved; every path balances the counter, no read is re-used across the await
                self._open -= 1
                raise
        return await self._pool.get()

    def _release(self, conn) -> None:
        if self._closed or conn[1].is_closing():
            self._discard(conn)
        else:
            self._pool.put_nowait(conn)

    def _discard(self, conn) -> None:
        self._open -= 1
        conn[1].close()

    # -- v1 request plumbing --------------------------------------------------

    async def _request_once(self, payload: bytes):
        """One v1 attempt on a pooled connection: no retries here."""
        conn = None
        try:
            conn = await self._acquire()
            reader, writer = conn
            writer.write(payload)
            await writer.drain()
            header = await asyncio.wait_for(reader.readline(), self.timeout)
            if not header:
                raise ConnectionError("server closed connection")
            tokens = header.decode("utf-8").split()
            body = None
            if tokens and tokens[0] in self.body_tokens:
                length = int(tokens[1])
                if not 0 <= length <= MAX_VALUE_BYTES:
                    raise ConnectionError(f"insane body length {length}")
                body = await asyncio.wait_for(
                    reader.readexactly(length + 1), self.timeout
                )
                body = body[:-1]
        except asyncio.CancelledError:
            # cancelled from outside (e.g. a caller's wait_for) with the
            # request possibly already on the wire: the pending response
            # would poison the next request on this connection, so tear
            # it down instead of repooling it
            if conn is not None:
                self._discard(conn)
            raise
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError, OSError):
            if conn is not None:  # dial failures never joined the pool
                self._discard(conn)
            raise
        self._release(conn)
        if tokens and tokens[0] == "ERR":
            raise ServerError(" ".join(tokens[1:]))
        return tokens, body

    async def _request(self, payload: bytes):
        """Send one raw v1 request line; retry loop around `_request_once`.

        .. deprecated:: retained for callers that hand-build v1 text
           payloads; new code goes through :meth:`call`, which frames for
           the negotiated protocol version.
        """
        attempt = 0
        while True:
            try:
                return await self._request_once(payload)
            except asyncio.CancelledError:
                raise
            except (ConnectionError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError, OSError) as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise ConnectionError(
                        f"request failed after {attempt} attempts: {exc}"
                    ) from exc
                await asyncio.sleep(self.backoff * (2 ** (attempt - 1)))

    # -- lifecycle ------------------------------------------------------------

    async def close(self) -> None:
        """Close every connection; in-flight v1 requests finish first."""
        self._closed = True
        for conn in list(self._mux):
            await conn.aclose()
            # repro: atomic=iterating a snapshot; _drop_mux is a no-op for conns a concurrent _read_loop failure already removed
            self._drop_mux(conn)
        while self._open > 0:
            try:
                reader, writer = await asyncio.wait_for(self._pool.get(), 1.0)
            except asyncio.TimeoutError:
                break  # still checked out; the holder discards on release
            # repro: atomic=loop re-reads _open each pass; concurrent _discard only decrements, so the worst case is an early exit
            self._open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def _v1_payload(verb: str, fields, token) -> bytes:
    """Build the v1 text payload for ``verb`` from positional fields."""
    template = V1_LINES.get(verb)
    if template is None:
        raise ServerError(f"verb {verb} has no v1 spelling")
    body = None
    args = []
    for kind, field in zip(REQUEST_FIELDS[verb], fields):
        if kind == "value":
            body = field
        else:
            args.append(str(field))
    line = template.format(*args, n=len(body) if body is not None else 0)
    if token is not None:
        line = f"{line} {token}"
    payload = line.encode("utf-8") + b"\n"
    if body is not None:
        payload += body + b"\n"
    return payload
