"""Continuous telemetry for a serving node: sampling, HTTP, alerts, flight.

:class:`ServiceTelemetry` is the composition root the CLIs use: given a
running :class:`~repro.service.server.CacheServer` it assembles

* a :class:`~repro.obs.timeseries.TimeSeriesStore` sampling the server's
  metrics registry every ``interval`` seconds,
* an :class:`~repro.obs.alerts.AlertEngine` evaluated after each sample
  (so alert decisions see exactly the history that exists — no racing),
* an :class:`~repro.obs.http.ObsHTTPServer` on ``--obs-port`` whose
  ``/healthz``/``/readyz`` are bound to live server state (DRAIN flips
  them with no polling), and
* a :class:`~repro.obs.flight.FlightRecorder` triggered by ``SIGUSR2``
  or explicitly on fatal errors (:meth:`dump_flight`).

Alert transitions are logged as they happen (warning on firing, info
otherwise), so a headless node leaves an incident trail even when nobody
scrapes ``/alertz``.

Everything here is optional plumbing around the server: a node started
without ``--obs-port`` never constructs one of these, and a constructed
one changes no serving behaviour — it only reads.
"""

from __future__ import annotations

import asyncio
import signal

from ..obs.alerts import AlertEngine, builtin_rules
from ..obs.flight import FlightRecorder
from ..obs.http import ObsHTTPServer
from ..obs.logging import get_logger
from ..obs.timeseries import TelemetrySampler, TimeSeriesStore

log = get_logger(__name__)

__all__ = ["ServiceTelemetry"]


class ServiceTelemetry:
    """Telemetry plane for one server: sampler + HTTP + alerts + flight.

    ``health`` overrides the default health callable (the cluster node
    passes one that consults ring membership); ``rules`` overrides the
    built-in alert pack.  ``http_host`` defaults to the server's bind
    host so the scrape endpoint is reachable wherever the service is.
    """

    def __init__(self, server, port=0, host=None, interval=1.0,
                 flight_dir=".", rules=None, health=None, window_s=30.0,
                 signal_handler=True):
        self.server = server
        #: install a SIGUSR2 handler on start() (a multi-node process
        #: sets False and installs one aggregate handler itself, since
        #: add_signal_handler replaces rather than chains)
        self.signal_handler = signal_handler
        registry = server.obs.registry
        self.timeseries = TimeSeriesStore(registry=registry)
        self.alerts = AlertEngine(
            self.timeseries,
            builtin_rules(window_s=window_s) if rules is None else rules,
        )
        self.alerts.on_transition(self._log_transition)
        self.sampler = TelemetrySampler(self.timeseries, interval=interval)
        self.sampler.on_sample(self.alerts.evaluate)
        self.recorder = FlightRecorder(
            out_dir=flight_dir,
            timeseries=self.timeseries,
            tracer=server.obs.tracer,
            alerts=self.alerts,
            stats_fn=self._stats,
        )
        self.http = ObsHTTPServer(
            registry=registry,
            timeseries=self.timeseries,
            alerts=self.alerts,
            health=health if health is not None else self._health,
            varz=server.server_info,
            host=host if host is not None else server.host,
            port=port,
        )
        self._signal_installed = False

    # -- server-state bindings -------------------------------------------------

    def _health(self) -> dict:
        serving = self.server._server is not None
        draining = self.server.draining
        return {
            "healthy": serving and not draining,
            "ready": serving and not draining,
            "draining": draining,
            "uptime_s": self.server.uptime_s,
        }

    def _stats(self) -> dict:
        import json

        return json.loads(self.server._stats_payload().decode("utf-8"))

    def _log_transition(self, event) -> None:
        message = "alert %s: %s -> %s (value=%s)"
        fields = (event["alert"], event["from"], event["to"], event["value"])
        if event["to"] == "firing":
            log.warning(message, *fields)
        else:
            log.info(message, *fields)

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        await self.http.start()
        self.sampler.start()
        self._install_signal()
        log.info("telemetry on http://%s:%d (/metrics /healthz /readyz "
                 "/varz /history /alertz)", self.http.host, self.http.port)

    async def stop(self) -> None:
        self._remove_signal()
        self.sampler.stop()
        await self.http.stop()

    def _install_signal(self) -> None:
        if not self.signal_handler:
            return
        try:
            loop = asyncio.get_running_loop()
            loop.add_signal_handler(
                signal.SIGUSR2, self._on_sigusr2
            )
            self._signal_installed = True
        except (NotImplementedError, RuntimeError, AttributeError, ValueError):
            # no SIGUSR2 on this platform / not the main thread — the
            # recorder still works via dump_flight()
            self._signal_installed = False

    def _remove_signal(self) -> None:
        if not self._signal_installed:
            return
        try:
            asyncio.get_running_loop().remove_signal_handler(signal.SIGUSR2)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        self._signal_installed = False

    def _on_sigusr2(self) -> None:
        path = self.dump_flight("sigusr2")
        log.warning("SIGUSR2: flight bundle written to %s", path)

    def dump_flight(self, reason: str) -> str:
        """Write a flight bundle now; returns its path."""
        return self.recorder.dump(reason=reason)
