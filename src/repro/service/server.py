"""Asyncio TCP front end for a :class:`~repro.service.sharding.ShardedStore`.

The server speaks two framings, detected per connection from the first
byte: the binary v2 frame protocol of :mod:`repro.service.protocol`
(magic byte ``0xA8``; pipelined requests, batch verbs, typed trace
field — see ``docs/protocol.md``) and the original v1 text protocol
below.  v1 is line-framed with length-prefixed values (one request,
one response; see ``docs/service.md``):

======================================  =========================================
request                                 response
======================================  =========================================
``GET <key>\\n``                         ``VALUE <len>\\n<bytes>\\n`` or ``MISS\\n``
``SET <key> <len>\\n<bytes>\\n``          ``STORED\\n`` or ``TAGGED\\n``
``DEL <key>\\n``                         ``DELETED\\n`` or ``NOTFOUND\\n``
``STATS\\n``                             ``STATS <len>\\n<json>\\n``
``METRICS\\n``                           ``METRICS <len>\\n<prometheus-text>\\n``
``PING\\n``                              ``PONG\\n``
``QUIT\\n``                              ``BYE\\n`` and the connection closes
``TRACE\\n``                             ``TRACE <len>\\n<jsonl>\\n`` (drains the
                                        node's trace ring)
======================================  =========================================

Every request line additionally accepts an optional trailing trace field
``T=<trace-id>/<span-id>`` (see :mod:`repro.obs.dist`): the server opens
its request span as a *child* of the caller's span, so a cluster write and
the INVAL fan-out it triggers on peer nodes merge into one causal tree.
The field is stripped before arity checks and ignored when tracing is off.

``TAGGED`` is the protocol-visible face of selective allocation: the server
*declined* to store the value but recorded the key in the tag directory, so
a client re-offering after the next miss will see ``STORED``.  Malformed
requests get ``ERR <reason>\\n`` and keep the connection open; a request
that exceeds ``request_timeout`` gets ``ERR timeout`` and the connection is
dropped (its framing can no longer be trusted).

Operational guards:

* ``max_connections`` — further clients are turned away with ``ERR busy``;
* per-request timeouts via :func:`asyncio.wait_for`;
* graceful shutdown — :meth:`CacheServer.stop` stops accepting, waits for
  in-flight requests to drain (bounded by ``drain_timeout``), then closes
  idle connections.

Request latency is recorded into the owning shard's stats, so STATS reports
per-shard p50/p99 and accumulated busy seconds alongside hit and admission
counters, plus a ``"process"`` block (pid, cumulative CPU seconds, peak
RSS) for the serving process as a whole.

Observability (:mod:`repro.obs`) is opt-in via the ``obs`` constructor
argument: with an enabled registry the server labels request counters and
latency histograms by command, samples its own event-loop lag, exposes
connection-pool gauges, serves the whole registry over the ``METRICS`` verb
and embeds a registry snapshot under the ``"obs"`` key of STATS.  With an
enabled tracer every request becomes a Chrome-trace span on the owning
shard's process lane, with the connection id as the thread lane.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os

from ..obs import Observability
from ..obs.dist import (
    DECISION_EVENTS,
    CAT_AUDIT,
    SpanIds,
    current_context,
    leaf_args,
    parse_token,
    pop_trace_token,
    span_args,
    use_context,
)
from ..obs.logging import get_logger
from ..obs.prof import clock, process_resources
from ..obs.tracing import CAT_REQUEST
from .protocol import (
    MAGIC,
    MAX_FRAME_PAYLOAD,
    MAX_VALUE_BYTES,  # noqa: F401  (re-export; the codec owns the cap now)
    STATUS_IDS,
    VERB_NAMES,
    FieldError,
    FrameEncoder,
    FrameError,
    decode_request_fields,
    decode_trace,
    read_frame,
)
from .sharding import ShardedStore

log = get_logger(__name__)

#: hard cap on request-line length (fits any sane key)
MAX_LINE_BYTES = 64 * 1024

#: verbs whose first key records per-shard request latency
_KEYED_VERBS = ("GET", "SET", "DEL", "MGET", "MSET", "MDEL")

#: default span-id prefixes for servers not given one (cluster nodes pass
#: their node name); a plain counter keeps ids deterministic per process
_SERVER_SEQ = itertools.count(1)


class ProtocolError(Exception):
    """Client spoke a malformed request; reported as ``ERR <reason>``."""


class _Quit(Exception):
    """Internal: client sent QUIT; close the connection cleanly."""


class CacheServer:
    """Serve a :class:`ShardedStore` over TCP with asyncio."""

    def __init__(
        self,
        store: ShardedStore,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 256,
        request_timeout: float = 5.0,
        obs: Observability | None = None,
        trace_ids: SpanIds | None = None,
    ):
        self.store = store
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.max_connections = max_connections
        self.request_timeout = request_timeout
        self.obs = obs if obs is not None else Observability.disabled()
        self._trace_ids = (trace_ids if trace_ids is not None
                           else SpanIds(f"srv{next(_SERVER_SEQ)}"))
        #: most recent event-loop lag sample (0.0 until measured); CSTATUS
        #: surfaces it so ``repro top --cluster`` can show saturation
        self.eventloop_lag = 0.0
        #: clock() at bind time (None before start()); STATS reports uptime
        self.started_at = None
        #: connections accepted per framing, so the v1/v2 negotiation mix
        #: is observable from outside (STATS/CSTATUS and ``repro top``)
        self.connections_v1 = 0
        self.connections_v2 = 0
        if (self.obs.tracer.enabled
                and hasattr(store, "set_decision_listener")):
            store.set_decision_listener(self._on_store_decision)
        self._server = None
        self._writers = set()
        self._inflight = 0
        self._stopping = False
        self._next_conn_id = 0
        self._lag_task = None
        registry = self.obs.registry
        if registry.enabled:
            registry.gauge_callback(
                "repro_service_connections",
                lambda: float(len(self._writers)),
                help="currently open client connections",
            )
            registry.gauge_callback(
                "repro_service_inflight",
                lambda: float(self._inflight),
                help="requests currently being processed",
            )
            registry.gauge(
                "repro_service_max_connections",
                help="connection cap (further clients get ERR busy)",
            ).set(float(max_connections))

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the real port."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = clock()
        if self.obs.registry.enabled:
            self._lag_task = asyncio.ensure_future(self._measure_eventloop_lag())
        log.info("serving on %s:%d (%d shards, admission=%s)",
                 self.host, self.port, self.store.num_shards, self.store.admission)

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled or :meth:`stop` is called."""
        if self._server is None:
            # repro: atomic=lifecycle is driven by one owner task; a racing second start() raises rather than double-binding
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self, drain_timeout: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, close idle.

        Requests already being processed (including a SET whose body is still
        arriving) are given ``drain_timeout`` seconds to complete and be
        answered; connections sitting idle between requests are then closed.
        """
        self._stopping = True
        log.info("stopping: draining %d in-flight request(s)", self._inflight)
        if self._lag_task is not None:
            self._lag_task.cancel()
            self._lag_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_timeout
        while self._inflight and loop.time() < deadline:
            await asyncio.sleep(0.005)
        for writer in list(self._writers):
            writer.close()
        while self._writers and loop.time() < deadline:
            await asyncio.sleep(0.005)
        log.info("stopped")

    async def _measure_eventloop_lag(self, interval: float = 0.25) -> None:
        """Sample how late ``asyncio.sleep`` wakes: a saturation signal.

        A healthy loop wakes within a millisecond or two of the deadline;
        lag grows when request handlers monopolise the loop.
        """
        gauge = self.obs.registry.gauge(
            "repro_service_eventloop_lag_seconds",
            help="how late the event loop wakes from a timed sleep",
        )
        loop = asyncio.get_running_loop()
        try:
            while True:
                before = loop.time()
                await asyncio.sleep(interval)
                self.eventloop_lag = max(0.0, loop.time() - before - interval)
                gauge.set(self.eventloop_lag)
        except asyncio.CancelledError:
            pass

    @property
    def connections(self) -> int:
        """Number of currently open client connections."""
        return len(self._writers)

    @property
    def draining(self) -> bool:
        """True once :meth:`stop` began: rejecting new work, draining old.

        ``/healthz`` and ``/readyz`` (:mod:`repro.obs.http`) read this so
        a load balancer stops routing to a node the moment it drains.
        """
        return self._stopping

    @property
    def uptime_s(self) -> float:
        """Seconds since the listener bound (0.0 before :meth:`start`)."""
        if self.started_at is None:
            return 0.0
        return max(0.0, clock() - self.started_at)

    @property
    def inflight(self) -> int:
        """Number of requests currently being processed."""
        return self._inflight

    # -- connection handling --------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        if self._stopping or len(self._writers) >= self.max_connections:
            log.warning(
                "rejecting connection: %s",
                "shutting down" if self._stopping else "connection cap reached",
            )
            writer.write(b"ERR busy\n")
            try:
                await writer.drain()
            except (ConnectionError, asyncio.CancelledError):
                pass
            writer.close()
            return
        self._next_conn_id += 1
        conn_id = self._next_conn_id
        log.debug("connection %d opened", conn_id)
        self._writers.add(writer)
        try:
            # protocol sniff: v2 frames open with the magic byte, which is
            # an invalid UTF-8 start byte no v1 request line can begin with
            first = await reader.read(1)
            if first and first[0] == MAGIC:
                self.connections_v2 += 1
                self._count_framing("v2")
                await self._serve_v2_connection(reader, writer, conn_id, first)
            elif first:
                self.connections_v1 += 1
                self._count_framing("v1")
                await self._serve_v1_connection(reader, writer, conn_id, first)
        except FrameError as exc:
            log.warning("connection %d: unframeable stream (%s), dropping",
                        conn_id, exc)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client vanished mid-request
        finally:
            self._writers.discard(writer)
            log.debug("connection %d closed", conn_id)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_v1_connection(self, reader, writer, conn_id: int,
                                   first: bytes = b"") -> None:
        """The v1 text request loop: one line-framed request at a time.

        ``first`` is the byte the protocol sniffer consumed; it belongs
        to the first request line.
        """
        while not self._stopping:
            line = await reader.readline()
            if first:
                line, first = first + line, b""
            if not line:
                break
            if len(line) > MAX_LINE_BYTES:
                writer.write(b"ERR line too long\n")
                await writer.drain()
                break
            self._inflight += 1
            try:
                await asyncio.wait_for(
                    self._handle_request(line, reader, writer, conn_id),
                    self.request_timeout,
                )
            except asyncio.TimeoutError:
                log.warning("connection %d: request timed out, dropping", conn_id)
                writer.write(b"ERR timeout\n")
                await writer.drain()
                break
            except ProtocolError as exc:
                writer.write(f"ERR {exc}\n".encode("utf-8"))
                await writer.drain()
            except _Quit:
                break
            finally:
                self._inflight -= 1

    async def _serve_v2_connection(self, reader, writer, conn_id: int,
                                   first: bytes = b"") -> None:
        """The v2 frame loop: frames are handled as fast as they arrive.

        Pipelining falls out of the framing: every request is fully read
        before dispatch, so the loop never waits on the client mid-request
        and many frames can be in flight per connection.  For the same
        reason errors are gentler than v1 — a malformed payload or a
        timed-out handler answers with an ERR frame and the connection
        stays usable (the stream framing is still trusted); only an
        unframeable byte stream (:class:`FrameError`) drops it.
        """
        enc = FrameEncoder()
        frame = await read_frame(reader, MAX_FRAME_PAYLOAD, first)
        while frame is not None and not self._stopping:
            self._inflight += 1
            try:
                await asyncio.wait_for(
                    self._handle_frame(frame, enc, writer, conn_id),
                    self.request_timeout,
                )
            except asyncio.TimeoutError:
                log.warning("connection %d: request timed out", conn_id)
                writer.write(enc.simple(STATUS_IDS["ERR"], frame.seq,
                                        b"timeout"))
                await writer.drain()
            except (ProtocolError, FieldError) as exc:
                writer.write(enc.simple(STATUS_IDS["ERR"], frame.seq,
                                        str(exc).encode("utf-8")))
                await writer.drain()
            except _Quit:
                break
            finally:
                self._inflight -= 1
            frame = await read_frame(reader)

    async def _handle_request(self, line: bytes, reader, writer,
                              conn_id: int = 0) -> None:
        """Frame one request: decode, pop the trace field, dispatch, record.

        The trace field is stripped *before* arity checks so every verb
        accepts it; with tracing enabled the dispatch runs under the
        request's span context (:func:`use_context`), which is how
        fan-outs deep inside the cluster layer find their parent.
        """
        try:
            parts = line.decode("utf-8").split()
        except UnicodeDecodeError:
            raise ProtocolError("request not utf-8") from None
        parts, wire_ctx = pop_trace_token(parts)
        if not parts:
            raise ProtocolError("empty request")
        cmd = parts[0].upper()
        start = clock()
        tr = self.obs.tracer
        if tr.enabled:
            ctx = self._trace_ids.begin(wire_ctx)
            with use_context(ctx):
                outcome = await self._serve_request(
                    cmd, parts, reader, writer, conn_id
                )
        else:
            ctx = None
            outcome = await self._serve_request(
                cmd, parts, reader, writer, conn_id
            )
        await writer.drain()
        self._record_request(
            cmd, parts, start, clock() - start, conn_id, ctx, outcome
        )

    async def _serve_request(self, cmd: str, parts: list, reader, writer,
                             conn_id: int = 0):
        """Dispatch one decoded request; returns the outcome label (or None).

        ``cmd`` is ``parts[0].upper()``; responses are written but not yet
        drained (the caller drains once).  FLOW003 extracts the served
        verbs from the ``cmd`` comparisons in this method — a new verb
        needs its arm here, a spec entry, and a client sender.
        """
        if cmd == "GET":
            key = self._one_key(parts)
            value = self.store.get(key)
            if value is None:
                writer.write(b"MISS\n")
                return "miss"
            writer.write(b"VALUE %d\n" % len(value))
            writer.write(value)
            writer.write(b"\n")
            return "hit"
        elif cmd == "SET":
            if len(parts) != 3:
                raise ProtocolError("usage: SET <key> <len>")
            key = parts[1]
            try:
                length = int(parts[2])
            except ValueError:
                raise ProtocolError(f"bad length {parts[2]!r}") from None
            if not 0 <= length <= MAX_VALUE_BYTES:
                raise ProtocolError(f"length {length} out of range")
            try:
                body = await reader.readexactly(length + 1)  # value + '\n'
            except asyncio.IncompleteReadError:
                raise ProtocolError("value body truncated") from None
            if body[-1:] != b"\n":
                raise ProtocolError("value not newline-terminated")
            stored = self.store.set(key, body[:-1])
            writer.write(b"STORED\n" if stored else b"TAGGED\n")
            return "stored" if stored else "tagged"
        elif cmd == "DEL":
            key = self._one_key(parts)
            removed = self.store.delete(key)
            writer.write(b"DELETED\n" if removed else b"NOTFOUND\n")
            return "deleted" if removed else "notfound"
        elif cmd == "STATS":
            payload = self._stats_payload()
            writer.write(b"STATS %d\n" % len(payload))
            writer.write(payload)
            writer.write(b"\n")
        elif cmd == "METRICS":
            payload = self.obs.registry.to_prometheus().encode("utf-8")
            writer.write(b"METRICS %d\n" % len(payload))
            writer.write(payload)
            writer.write(b"\n")
        elif cmd == "TRACE":
            payload = self.obs.tracer.drain().encode("utf-8")
            writer.write(b"TRACE %d\n" % len(payload))
            writer.write(payload)
            writer.write(b"\n")
        elif cmd == "PING":
            writer.write(b"PONG\n")
        elif cmd == "QUIT":
            writer.write(b"BYE\n")
            await writer.drain()
            raise _Quit
        else:
            raise ProtocolError(f"unknown command {cmd!r}")
        return None

    async def _handle_frame(self, frame, enc, writer, conn_id: int = 0) -> None:
        """Frame one v2 request: decode, pop the trace field, dispatch, record.

        The v2 analogue of :meth:`_handle_request`: the typed trace frame
        field replaces the trailing ``T=`` text token, and the decoded
        positional fields replace the split request line.  ``HELLO`` (the
        negotiation probe) is answered here and deliberately left out of
        tracing and request accounting, so trace topology and counters
        are identical whether or not clients negotiated.
        """
        verb = VERB_NAMES.get(frame.verb_id)
        if verb is None:
            raise ProtocolError(f"unknown verb id {frame.verb_id}")
        token, rd = decode_trace(frame)
        fields = decode_request_fields(verb, rd)
        if verb == "HELLO":
            writer.write(enc.simple(STATUS_IDS["HELLO"], frame.seq, b"v2"))
            await writer.drain()
            return
        wire_ctx = parse_token(token) if token is not None else None
        start = clock()
        tr = self.obs.tracer
        if tr.enabled:
            ctx = self._trace_ids.begin(wire_ctx)
            with use_context(ctx):
                outcome = await self._serve_frame(
                    verb, fields, frame.seq, enc, writer, conn_id
                )
        else:
            ctx = None
            outcome = await self._serve_frame(
                verb, fields, frame.seq, enc, writer, conn_id
            )
        await writer.drain()
        parts = [verb]
        first_key = _first_key(fields)
        if first_key is not None:
            parts.append(first_key)
        self._record_request(
            verb, parts, start, clock() - start, conn_id, ctx, outcome
        )

    async def _serve_frame(self, cmd: str, fields: list, seq: int, enc,
                           writer, conn_id: int = 0):
        """Dispatch one decoded v2 frame; returns the outcome label (or None).

        ``cmd`` is the verb name resolved from the frame's verb id and
        ``fields`` its typed payload fields (``REQUEST_FIELDS`` order).
        FLOW003 extracts the v2-served verbs from the ``cmd`` comparisons
        in this method, exactly as it reads :meth:`_serve_request` for v1
        — a verb served in one framing but not the other is a finding.
        """
        if cmd == "GET":
            value = self.store.get(fields[0])
            if value is None:
                writer.write(enc.simple(STATUS_IDS["MISS"], seq))
                return "miss"
            writer.write(enc.simple(STATUS_IDS["VALUE"], seq, value))
            return "hit"
        elif cmd == "SET":
            stored = await self._apply_set(fields[0], fields[1])
            writer.write(enc.simple(
                STATUS_IDS["STORED" if stored else "TAGGED"], seq
            ))
            return "stored" if stored else "tagged"
        elif cmd == "DEL":
            removed = await self._apply_delete(fields[0])
            writer.write(enc.simple(
                STATUS_IDS["DELETED" if removed else "NOTFOUND"], seq
            ))
            return "deleted" if removed else "notfound"
        elif cmd == "MGET":
            keys = fields[0]
            enc.begin(STATUS_IDS["VALUES"], seq)
            enc.put_u32(len(keys))
            for key in keys:
                value = self.store.get(key)
                if value is None:
                    enc.put_u8(0)
                else:
                    enc.put_u8(1)
                    enc.put_bytes(value)
            writer.write(enc.finish())
        elif cmd == "MSET":
            items = fields[0]
            flags = []
            for key, value in items:
                flags.append(await self._apply_set(key, value))
            enc.begin(STATUS_IDS["STATUSES"], seq)
            enc.put_u32(len(flags))
            for flag in flags:
                enc.put_u8(1 if flag else 0)
            writer.write(enc.finish())
        elif cmd == "MDEL":
            keys = fields[0]
            flags = []
            for key in keys:
                flags.append(await self._apply_delete(key))
            enc.begin(STATUS_IDS["STATUSES"], seq)
            enc.put_u32(len(flags))
            for flag in flags:
                enc.put_u8(1 if flag else 0)
            writer.write(enc.finish())
        elif cmd == "STATS":
            writer.write(enc.simple(STATUS_IDS["STATS"], seq,
                                    self._stats_payload()))
        elif cmd == "METRICS":
            writer.write(enc.simple(
                STATUS_IDS["METRICS"], seq,
                self.obs.registry.to_prometheus().encode("utf-8"),
            ))
        elif cmd == "TRACE":
            writer.write(enc.simple(STATUS_IDS["TRACE"], seq,
                                    self.obs.tracer.drain().encode("utf-8")))
        elif cmd == "PING":
            writer.write(enc.simple(STATUS_IDS["PONG"], seq))
        elif cmd == "QUIT":
            writer.write(enc.simple(STATUS_IDS["BYE"], seq))
            await writer.drain()
            raise _Quit
        else:
            raise ProtocolError(f"unknown command {cmd!r}")
        return None

    # -- write hooks (the cluster layer overrides these for coherence) --------

    async def _apply_set(self, key: str, value: bytes) -> bool:
        """Apply one SET; subclasses add cross-node invalidation."""
        return self.store.set(key, value)

    async def _apply_delete(self, key: str) -> bool:
        """Apply one DEL; subclasses add cross-node invalidation."""
        return self.store.delete(key)

    def _count_framing(self, framing: str) -> None:
        if self.obs.registry.enabled:
            self.obs.registry.counter(
                "repro_service_connections_framing_total",
                help="connections accepted, by negotiated wire framing",
                framing=framing,
            ).inc()

    def server_info(self) -> dict:
        """The ``"server"`` block of STATS: uptime and connection mix."""
        return {
            "uptime_s": self.uptime_s,
            "connections_open": len(self._writers),
            "connections_v1": self.connections_v1,
            "connections_v2": self.connections_v2,
            "draining": self._stopping,
            "eventloop_lag_s": self.eventloop_lag,
        }

    def _stats_payload(self) -> bytes:
        """The STATS JSON document, shared by both wire framings."""
        snapshot = self.store.stats_snapshot()
        snapshot["process"] = {"pid": os.getpid(), **process_resources()}
        snapshot["server"] = self.server_info()
        if self.obs.registry.enabled:
            snapshot["obs"] = self.obs.registry.snapshot()
        return json.dumps(snapshot).encode("utf-8")

    def _record_request(self, cmd: str, parts: list, start: float,
                        elapsed: float, conn_id: int, ctx, outcome) -> None:
        """Latency, counters and the request span for one answered request."""
        shard_idx = 0
        key = None
        if cmd in _KEYED_VERBS and len(parts) > 1:
            key = parts[1]
            shard_idx = self.store.shard_of(key)
            self.store.shards[shard_idx].stats.record_latency(elapsed)
        registry = self.obs.registry
        if registry.enabled:
            registry.counter(
                "repro_service_requests_total",
                help="requests answered, by command",
                cmd=cmd,
            ).inc()
            registry.histogram(
                "repro_service_request_latency_seconds",
                help="request service time, by command",
                cmd=cmd,
            ).observe(elapsed)
        tr = self.obs.tracer
        # the TRACE verb's own span would pollute the batch after a drain
        if tr.enabled and cmd != "TRACE":
            extra = {}
            if key is not None:
                extra["key"] = key
            if outcome is not None:
                extra["outcome"] = outcome
            tr.emit(
                cmd, cat=CAT_REQUEST, ts=start, pid=shard_idx, tid=conn_id,
                dur=elapsed, args=span_args(ctx, **extra),
            )

    def _on_store_decision(self, key: str, decision: str) -> None:
        """Store decision hook -> audit instant on the active request span.

        Installed only when tracing is on (the obs-off store keeps a bare
        ``None`` listener); runs under the store lock, so it only appends
        to the ring.
        """
        name = DECISION_EVENTS.get(decision)
        if name is None:
            return
        self.obs.tracer.emit(
            name, cat=CAT_AUDIT, ts=clock(), pid=self.store.shard_of(key),
            tid=0, args=leaf_args(current_context(), key=key),
        )

    @staticmethod
    def _one_key(parts: list) -> str:
        if len(parts) != 2:
            raise ProtocolError(f"usage: {parts[0].upper()} <key>")
        return parts[1]


def _first_key(fields: list):
    """The first key named by a frame's fields, for latency attribution.

    Batch payloads attribute the whole frame to their first key's shard —
    the same approximation STATS already makes for per-shard latency.
    """
    if not fields:
        return None
    first = fields[0]
    if isinstance(first, str):
        return first
    if isinstance(first, list) and first:
        item = first[0]
        if isinstance(item, tuple):
            return item[0]
        if isinstance(item, str):
            return item
    return None


async def run_server(server: CacheServer) -> None:
    """Start ``server`` and serve until cancelled, then stop gracefully."""
    await server.start()
    try:
        await server.serve_forever()
    finally:
        await server.stop()
