"""Asyncio TCP front end for a :class:`~repro.service.sharding.ShardedStore`.

The wire protocol is line-framed with length-prefixed values (one request,
one response; see ``docs/service.md``):

======================================  =========================================
request                                 response
======================================  =========================================
``GET <key>\\n``                         ``VALUE <len>\\n<bytes>\\n`` or ``MISS\\n``
``SET <key> <len>\\n<bytes>\\n``          ``STORED\\n`` or ``TAGGED\\n``
``DEL <key>\\n``                         ``DELETED\\n`` or ``NOTFOUND\\n``
``STATS\\n``                             ``STATS <len>\\n<json>\\n``
``PING\\n``                              ``PONG\\n``
``QUIT\\n``                              ``BYE\\n`` and the connection closes
======================================  =========================================

``TAGGED`` is the protocol-visible face of selective allocation: the server
*declined* to store the value but recorded the key in the tag directory, so
a client re-offering after the next miss will see ``STORED``.  Malformed
requests get ``ERR <reason>\\n`` and keep the connection open; a request
that exceeds ``request_timeout`` gets ``ERR timeout`` and the connection is
dropped (its framing can no longer be trusted).

Operational guards:

* ``max_connections`` — further clients are turned away with ``ERR busy``;
* per-request timeouts via :func:`asyncio.wait_for`;
* graceful shutdown — :meth:`CacheServer.stop` stops accepting, waits for
  in-flight requests to drain (bounded by ``drain_timeout``), then closes
  idle connections.

Request latency is recorded into the owning shard's stats, so STATS reports
per-shard p50/p99 alongside hit and admission counters.
"""

from __future__ import annotations

import asyncio
import json
import time

from .sharding import ShardedStore

#: hard cap on value size accepted over the wire (16 MiB)
MAX_VALUE_BYTES = 16 * 1024 * 1024
#: hard cap on request-line length (fits any sane key)
MAX_LINE_BYTES = 64 * 1024


class ProtocolError(Exception):
    """Client spoke a malformed request; reported as ``ERR <reason>``."""


class _Quit(Exception):
    """Internal: client sent QUIT; close the connection cleanly."""


class CacheServer:
    """Serve a :class:`ShardedStore` over TCP with asyncio."""

    def __init__(
        self,
        store: ShardedStore,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 256,
        request_timeout: float = 5.0,
    ):
        self.store = store
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.max_connections = max_connections
        self.request_timeout = request_timeout
        self._server = None
        self._writers = set()
        self._inflight = 0
        self._stopping = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the real port."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled or :meth:`stop` is called."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self, drain_timeout: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, close idle.

        Requests already being processed (including a SET whose body is still
        arriving) are given ``drain_timeout`` seconds to complete and be
        answered; connections sitting idle between requests are then closed.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_timeout
        while self._inflight and loop.time() < deadline:
            await asyncio.sleep(0.005)
        for writer in list(self._writers):
            writer.close()
        while self._writers and loop.time() < deadline:
            await asyncio.sleep(0.005)

    @property
    def connections(self) -> int:
        """Number of currently open client connections."""
        return len(self._writers)

    @property
    def inflight(self) -> int:
        """Number of requests currently being processed."""
        return self._inflight

    # -- connection handling --------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        if self._stopping or len(self._writers) >= self.max_connections:
            writer.write(b"ERR busy\n")
            try:
                await writer.drain()
            except (ConnectionError, asyncio.CancelledError):
                pass
            writer.close()
            return
        self._writers.add(writer)
        try:
            while not self._stopping:
                line = await reader.readline()
                if not line:
                    break
                if len(line) > MAX_LINE_BYTES:
                    writer.write(b"ERR line too long\n")
                    await writer.drain()
                    break
                self._inflight += 1
                try:
                    await asyncio.wait_for(
                        self._serve_request(line, reader, writer),
                        self.request_timeout,
                    )
                except asyncio.TimeoutError:
                    writer.write(b"ERR timeout\n")
                    await writer.drain()
                    break
                except ProtocolError as exc:
                    writer.write(f"ERR {exc}\n".encode("utf-8"))
                    await writer.drain()
                except _Quit:
                    break
                finally:
                    self._inflight -= 1
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client vanished mid-request
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_request(self, line: bytes, reader, writer) -> None:
        try:
            parts = line.decode("utf-8").split()
        except UnicodeDecodeError:
            raise ProtocolError("request not utf-8") from None
        if not parts:
            raise ProtocolError("empty request")
        cmd = parts[0].upper()
        start = time.perf_counter()

        if cmd == "GET":
            key = self._one_key(parts)
            value = self.store.get(key)
            if value is None:
                writer.write(b"MISS\n")
            else:
                writer.write(b"VALUE %d\n" % len(value))
                writer.write(value)
                writer.write(b"\n")
        elif cmd == "SET":
            if len(parts) != 3:
                raise ProtocolError("usage: SET <key> <len>")
            key = parts[1]
            try:
                length = int(parts[2])
            except ValueError:
                raise ProtocolError(f"bad length {parts[2]!r}") from None
            if not 0 <= length <= MAX_VALUE_BYTES:
                raise ProtocolError(f"length {length} out of range")
            try:
                body = await reader.readexactly(length + 1)  # value + '\n'
            except asyncio.IncompleteReadError:
                raise ProtocolError("value body truncated") from None
            if body[-1:] != b"\n":
                raise ProtocolError("value not newline-terminated")
            stored = self.store.set(key, body[:-1])
            writer.write(b"STORED\n" if stored else b"TAGGED\n")
        elif cmd == "DEL":
            key = self._one_key(parts)
            removed = self.store.delete(key)
            writer.write(b"DELETED\n" if removed else b"NOTFOUND\n")
        elif cmd == "STATS":
            payload = json.dumps(self.store.stats_snapshot()).encode("utf-8")
            writer.write(b"STATS %d\n" % len(payload))
            writer.write(payload)
            writer.write(b"\n")
        elif cmd == "PING":
            writer.write(b"PONG\n")
        elif cmd == "QUIT":
            writer.write(b"BYE\n")
            await writer.drain()
            raise _Quit
        else:
            raise ProtocolError(f"unknown command {cmd!r}")

        await writer.drain()
        if cmd in ("GET", "SET", "DEL"):
            shard = self.store.shard_for(parts[1])
            shard.stats.record_latency(time.perf_counter() - start)

    @staticmethod
    def _one_key(parts: list) -> str:
        if len(parts) != 2:
            raise ProtocolError(f"usage: {parts[0].upper()} <key>")
        return parts[1]


async def run_server(server: CacheServer) -> None:
    """Start ``server`` and serve until cancelled, then stop gracefully."""
    await server.start()
    try:
        await server.serve_forever()
    finally:
        await server.stop()
